"""The TCSC server substrate.

This package implements everything the paper assumes a crowdsourcing
platform already has: a registry of worker availability with per-slot
spatial indexes (:mod:`repro.engine.registry`), the travel-cost model
with rank-aware nearest-worker lookups (:mod:`repro.engine.costs`), the
server loop that takes tasks in and hands assignments back
(:mod:`repro.engine.server`), and a synthetic spatiotemporal value
field plus inverse-distance interpolation for end-to-end demos
(:mod:`repro.engine.field`, :mod:`repro.engine.interpolation`).
"""

from repro.engine.batches import BatchReport, BatchTCSCServer
from repro.engine.costs import DynamicCostProvider, SingleTaskCostTable, SlotOffer
from repro.engine.field import SpatioTemporalField
from repro.engine.interpolation import idw_series, reconstruction_rmse
from repro.engine.realization import (
    RealizationOutcome,
    expected_realized_quality,
    simulate_execution,
)
from repro.engine.registry import WorkerRegistry
from repro.engine.server import ServerReport, TCSCServer

__all__ = [
    "BatchReport",
    "BatchTCSCServer",
    "DynamicCostProvider",
    "SingleTaskCostTable",
    "SlotOffer",
    "SpatioTemporalField",
    "RealizationOutcome",
    "ServerReport",
    "TCSCServer",
    "WorkerRegistry",
    "expected_realized_quality",
    "idw_series",
    "reconstruction_rmse",
    "simulate_execution",
]
