"""Worker registry with per-slot spatial indexes.

The registry answers the question at the bottom of every TCSC cost
lookup: *which is the rank-th nearest worker still available at global
slot t?*  Workers are indexed per slot in a
:class:`~repro.geo.grid.GridIndex`; the multi-task solvers *consume* a
worker at a slot once assigned (a worker serves one subtask per slot —
the source of the paper's worker conflicts), and the registry supports
releasing them again for what-if exploration.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, WorkerUnavailableError
from repro.geo.bbox import BoundingBox
from repro.geo.grid import GridIndex
from repro.geo.kdtree import KDTree
from repro.geo.point import Point
from repro.model.worker import Worker, WorkerPool

__all__ = ["WorkerRegistry"]

_BACKENDS = ("grid", "kdtree")


class WorkerRegistry:
    """Per-slot spatial indexes over a worker pool.

    ``backend`` selects the spatial index: ``"grid"`` (the default
    uniform grid — O(1) removal, density-proportional searches) or
    ``"kdtree"`` (median-split 2-d tree with tombstone deletion); the
    two are interchangeable and compared by the ablation benchmarks.
    """

    def __init__(self, pool: WorkerPool, bbox: BoundingBox, *, backend: str = "grid"):
        if backend not in _BACKENDS:
            raise ConfigurationError(
                f"unknown backend {backend!r}; choose one of {_BACKENDS}"
            )
        self.pool = pool
        self.bbox = bbox
        self.backend = backend
        self._by_id: dict[int, Worker] = {w.worker_id: w for w in pool}
        # Lazily-built index per global slot, over *remaining* workers.
        self._slot_index: dict[int, GridIndex | KDTree] = {}
        self._consumed: dict[int, set[int]] = {}  # slot -> worker ids
        self._departed: set[int] = set()  # churned-out worker ids

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    def _index_for(self, global_slot: int) -> GridIndex | KDTree:
        index = self._slot_index.get(global_slot)
        if index is None:
            items = [
                (w.worker_id, w.availability[global_slot])
                for w in self._by_id.values()
                if global_slot in w.availability
                and w.worker_id not in self._departed
            ]
            if self.backend == "grid":
                index = GridIndex.from_items(self.bbox, items)
            else:
                index = KDTree(items)
            self._slot_index[global_slot] = index
        return index

    def worker(self, worker_id: int) -> Worker:
        """Look up a worker by id."""
        return self._by_id[worker_id]

    # ------------------------------------------------------------------
    # Churn (streaming mode)
    # ------------------------------------------------------------------
    def add_worker(self, worker: Worker) -> None:
        """Register a worker that joined after construction.

        The worker becomes visible to every slot index covering its
        availability — indexes already built are patched in place,
        unbuilt ones pick it up on their lazy construction.
        """
        if worker.worker_id in self._by_id:
            raise ConfigurationError(
                f"worker {worker.worker_id} is already registered"
            )
        self._by_id[worker.worker_id] = worker
        for global_slot, location in worker.availability.items():
            index = self._slot_index.get(global_slot)
            if index is not None:
                index.add(worker.worker_id, location)

    def remove_worker(self, worker_id: int) -> Worker:
        """Deregister a worker that left (churn).

        The worker disappears from every slot it was still available
        at; slots where it was already consumed keep their committed
        assignments (the work was promised before the departure).
        Returns the departed worker for the caller's bookkeeping.
        """
        worker = self._by_id.get(worker_id)
        if worker is None or worker_id in self._departed:
            raise WorkerUnavailableError(
                f"worker {worker_id} is not registered (or already departed)"
            )
        self._departed.add(worker_id)
        for global_slot in worker.availability:
            index = self._slot_index.get(global_slot)
            if index is not None and worker_id in index:
                index.remove(worker_id)
        return worker

    def is_departed(self, worker_id: int) -> bool:
        """True iff the worker has churned out of the registry."""
        return worker_id in self._departed

    def available_count(self, global_slot: int) -> int:
        """Workers still available (not consumed) at ``global_slot``."""
        return len(self._index_for(global_slot))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def nearest_available(
        self, query: Point, global_slot: int, *, rank: int = 1
    ) -> tuple[Worker, float] | None:
        """The ``rank``-th nearest remaining worker at ``global_slot``.

        ``rank=1`` is "the worker with the lowest cost", ``rank=2`` the
        second lowest, and so on — the ladder tasks climb when they
        conflict (Section IV).  Returns ``(worker, distance)`` or
        ``None`` when fewer than ``rank`` workers remain.
        """
        index = self._index_for(global_slot)
        hits = index.k_nearest(query, rank)
        if len(hits) < rank:
            return None
        worker_id, dist = hits[rank - 1]
        return self._by_id[worker_id], dist

    def k_nearest_available(
        self, query: Point, global_slot: int, k: int
    ) -> list[tuple[Worker, float]]:
        """Up to ``k`` nearest remaining workers at ``global_slot``."""
        index = self._index_for(global_slot)
        return [(self._by_id[wid], dist) for wid, dist in index.k_nearest(query, k)]

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def consume(self, worker_id: int, global_slot: int) -> None:
        """Mark a worker as assigned at ``global_slot``."""
        index = self._index_for(global_slot)
        if worker_id not in index:
            raise WorkerUnavailableError(
                f"worker {worker_id} not available (or already consumed) at slot {global_slot}"
            )
        index.remove(worker_id)
        self._consumed.setdefault(global_slot, set()).add(worker_id)

    def release(self, worker_id: int, global_slot: int) -> None:
        """Undo a :meth:`consume` (used by what-if exploration)."""
        consumed = self._consumed.get(global_slot, set())
        if worker_id not in consumed:
            raise WorkerUnavailableError(
                f"worker {worker_id} was not consumed at slot {global_slot}"
            )
        consumed.discard(worker_id)
        if worker_id in self._departed:
            # A departed worker's release frees the bookkeeping slot but
            # must not resurrect the worker for new assignments.
            return
        worker = self._by_id[worker_id]
        self._index_for(global_slot).add(worker_id, worker.availability[global_slot])

    def is_consumed(self, worker_id: int, global_slot: int) -> bool:
        """True iff the worker has been assigned at that slot."""
        return worker_id in self._consumed.get(global_slot, set())

    def consumed_at(self, global_slot: int) -> set[int]:
        """Ids of workers consumed at ``global_slot`` (copy)."""
        return set(self._consumed.get(global_slot, set()))

    def reset(self) -> None:
        """Release all consumed workers (fresh solver run)."""
        for slot, workers in list(self._consumed.items()):
            for worker_id in list(workers):
                self.release(worker_id, slot)
        self._consumed.clear()
