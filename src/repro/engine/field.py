"""Synthetic spatiotemporal value fields.

The paper's motivating applications probe a physical quantity (water
microbial content, air pollution, traffic load) that varies smoothly in
space and time.  :class:`SpatioTemporalField` simulates such a ground
truth as a sum of drifting Gaussian plumes, so the examples and the
end-to-end tests can measure how well an assignment's probed-plus-
interpolated series reconstructs reality — the physical counterpart of
the entropy quality metric.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.util.rng import make_rng

__all__ = ["SpatioTemporalField"]


class SpatioTemporalField:
    """Smooth synthetic field: sum of Gaussian plumes drifting in time."""

    def __init__(
        self,
        bbox: BoundingBox,
        *,
        num_plumes: int = 5,
        amplitude: float = 100.0,
        drift: float = 0.01,
        seed: int | np.random.Generator | None = 0,
    ):
        if num_plumes < 1:
            raise ConfigurationError(f"num_plumes must be >= 1, got {num_plumes}")
        rng = make_rng(seed)
        self.bbox = bbox
        self.amplitude = amplitude
        self.drift = drift * max(bbox.width, bbox.height)
        scale = max(bbox.width, bbox.height)
        self._centers = np.column_stack(
            [
                rng.uniform(bbox.min_x, bbox.max_x, num_plumes),
                rng.uniform(bbox.min_y, bbox.max_y, num_plumes),
            ]
        )
        self._sigmas = rng.uniform(0.1 * scale, 0.3 * scale, num_plumes)
        self._weights = rng.uniform(0.3, 1.0, num_plumes)
        self._velocities = rng.uniform(-1.0, 1.0, (num_plumes, 2))
        # Slow sinusoidal modulation in time, one phase per plume.
        self._phases = rng.uniform(0.0, 2 * math.pi, num_plumes)
        self._periods = rng.uniform(40.0, 120.0, num_plumes)

    def value(self, point: Point, slot: int) -> float:
        """Field value at ``point`` during global time slot ``slot``."""
        total = 0.0
        for i in range(len(self._weights)):
            cx = self._centers[i, 0] + self.drift * self._velocities[i, 0] * slot
            cy = self._centers[i, 1] + self.drift * self._velocities[i, 1] * slot
            d2 = (point.x - cx) ** 2 + (point.y - cy) ** 2
            spatial = math.exp(-d2 / (2.0 * self._sigmas[i] ** 2))
            temporal = 0.5 * (1.0 + math.sin(2 * math.pi * slot / self._periods[i] + self._phases[i]))
            total += self._weights[i] * spatial * temporal
        return self.amplitude * total

    def series(self, point: Point, slots: range | list[int]) -> list[float]:
        """Field values at ``point`` over a slot range."""
        return [self.value(point, slot) for slot in slots]
