"""Travel-cost model: the bridge between tasks, workers, and solvers.

Following the paper's common setting, the cost of a subtask is the
Euclidean distance from the task's location to the assigned worker
(Section II-A).  Two providers are offered:

* :class:`SingleTaskCostTable` — static per-slot offers for one task;
  the single-task case never competes for workers, so every slot can
  precompute its nearest worker once.
* :class:`DynamicCostProvider` — live offers for multi-task scenarios;
  workers are consumed as they are assigned, so a task's cheapest
  worker may disappear and the provider transparently falls back to
  the next-nearest, which is exactly how the paper's worker conflicts
  surface as increased costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instrumentation import OpCounters
from repro.engine.registry import WorkerRegistry
from repro.model.task import Task

__all__ = ["SlotOffer", "SingleTaskCostTable", "DynamicCostProvider"]


@dataclass(frozen=True, slots=True)
class SlotOffer:
    """The current best worker offer for one (task, slot) pair."""

    worker_id: int
    cost: float
    reliability: float


class SingleTaskCostTable:
    """Precomputed nearest-worker offers for every slot of one task.

    Exposes the ``cost(slot)`` / ``reliability(slot)`` interface the
    solvers and the tree index consume.  Slots with no available worker
    return ``None`` (unassignable).
    """

    #: Offers never change after construction — the capability the
    #: lazy (CELF) search requires to cache costs in its heap.
    #: Dynamic providers must not declare this.
    static_costs = True

    def __init__(
        self,
        task: Task,
        registry: WorkerRegistry,
        *,
        counters: OpCounters | None = None,
    ):
        self.task = task
        self.counters = counters if counters is not None else OpCounters()
        self._offers: list[SlotOffer | None] = [None] * (task.num_slots + 1)
        for slot in task.slots:
            hit = registry.nearest_available(task.loc, task.global_slot(slot))
            self.counters.worker_cost_lookups += 1
            if hit is not None:
                worker, dist = hit
                self._offers[slot] = SlotOffer(worker.worker_id, dist, worker.reliability)

    def offer(self, slot: int) -> SlotOffer | None:
        """The full offer for ``slot`` (or None when unassignable)."""
        return self._offers[slot]

    def cost(self, slot: int) -> float | None:
        """Travel cost of executing ``slot``, or None when unassignable."""
        offer = self._offers[slot]
        return None if offer is None else offer.cost

    def reliability(self, slot: int) -> float:
        """Reliability of the offered worker (1.0 when unassignable —
        the value is never used in that case)."""
        offer = self._offers[slot]
        return 1.0 if offer is None else offer.reliability

    @property
    def assignable_slots(self) -> list[int]:
        """Slots with at least one available worker."""
        return [s for s in self.task.slots if self._offers[s] is not None]

    @property
    def min_cost(self) -> float | None:
        """Cheapest single-slot cost, or None when nothing assignable."""
        costs = [o.cost for o in self._offers if o is not None]
        return min(costs) if costs else None

    @property
    def total_cost(self) -> float:
        """Cost of executing every assignable slot (used to scale budgets)."""
        return sum(o.cost for o in self._offers if o is not None)


class DynamicCostProvider:
    """Live nearest-remaining-worker offers for one task in a multi-task run.

    Offers are cached per slot and invalidated when the offered worker
    is consumed (by this task or any competitor).  The owning
    coordinator must call :meth:`invalidate_worker` whenever a worker
    is consumed at a global slot.
    """

    def __init__(
        self,
        task: Task,
        registry: WorkerRegistry,
        *,
        counters: OpCounters | None = None,
    ):
        self.task = task
        self.registry = registry
        self.counters = counters if counters is not None else OpCounters()
        self._cache: dict[int, SlotOffer | None] = {}

    def offer(self, slot: int) -> SlotOffer | None:
        """Current cheapest remaining worker for local ``slot``."""
        if slot in self._cache:
            return self._cache[slot]
        hit = self.registry.nearest_available(self.task.loc, self.task.global_slot(slot))
        self.counters.worker_cost_lookups += 1
        offer = None
        if hit is not None:
            worker, dist = hit
            offer = SlotOffer(worker.worker_id, dist, worker.reliability)
        self._cache[slot] = offer
        return offer

    def cost(self, slot: int) -> float | None:
        """Travel cost for ``slot`` under current worker availability."""
        offer = self.offer(slot)
        return None if offer is None else offer.cost

    def reliability(self, slot: int) -> float:
        """Reliability of the current offer (1.0 when unassignable)."""
        offer = self.offer(slot)
        return 1.0 if offer is None else offer.reliability

    def invalidate_worker(self, worker_id: int, global_slot: int) -> list[int]:
        """Drop cached offers that referenced a just-consumed worker.

        Returns the local slots whose offers were invalidated, so the
        caller can refresh dependent index state.
        """
        task = self.task
        if not task.start_slot <= global_slot <= task.start_slot + task.num_slots - 1:
            return []
        local = global_slot - task.start_slot + 1
        cached = self._cache.get(local)
        if cached is not None and cached.worker_id == worker_id:
            del self._cache[local]
            return [local]
        return []

    def invalidate_slots(self, slots) -> None:
        """Drop cached offers for specific local slots.

        The streaming churn path: a worker join/leave perturbs only the
        slots it overlaps, so only those offers need re-deriving.
        """
        for slot in slots:
            self._cache.pop(slot, None)

    def invalidate_all(self) -> None:
        """Flush the entire offer cache."""
        self._cache.clear()
