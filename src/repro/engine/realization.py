"""Execution realization: what actually happens after assignment.

The reliability extension (Eq. 4-5) treats a worker's lambda as the
probability that an assigned subtask really gets finished.  This
module closes the loop: it *samples* that Bernoulli process over a
committed assignment, producing the set of subtasks that actually
executed, and scores the realized outcome with the same entropy
metric — so tests and studies can check that planning with lambdas
(rather than assuming perfect workers) pays off under the model's own
semantics, and inject failures into end-to-end pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.quality import task_quality
from repro.model.assignment import Assignment
from repro.model.task import TaskSet
from repro.model.worker import WorkerPool
from repro.util.rng import make_rng

__all__ = ["RealizationOutcome", "simulate_execution", "expected_realized_quality"]


@dataclass(frozen=True, slots=True)
class RealizationOutcome:
    """One sampled execution of an assignment."""

    #: (task_id, slot) pairs whose workers showed up.
    completed: frozenset[tuple[int, int]]
    #: (task_id, slot) pairs whose workers failed.
    failed: frozenset[tuple[int, int]]
    #: task_id -> realized quality (completed slots at reliability 1 —
    #: once a probe happened, its value is known with certainty).
    qualities: dict[int, float]

    @property
    def completion_rate(self) -> float:
        """Fraction of assigned subtasks actually executed."""
        total = len(self.completed) + len(self.failed)
        return len(self.completed) / total if total else 1.0

    @property
    def sum_quality(self) -> float:
        """Realized qsum."""
        return sum(self.qualities.values())


def simulate_execution(
    tasks: TaskSet,
    pool: WorkerPool,
    assignment: Assignment,
    *,
    k: int = 3,
    seed: int | np.random.Generator | None = 0,
) -> RealizationOutcome:
    """Sample one Bernoulli realization of an assignment.

    Each record succeeds independently with its worker's reliability;
    failed subtasks contribute nothing (their slots fall back to
    interpolation from the successful ones).
    """
    rng = make_rng(seed)
    completed: set[tuple[int, int]] = set()
    failed: set[tuple[int, int]] = set()
    for record in assignment:
        lam = pool.by_id(record.worker_id).reliability
        if rng.uniform() < lam:
            completed.add((record.task_id, record.slot))
        else:
            failed.add((record.task_id, record.slot))
    qualities: dict[int, float] = {}
    for task in tasks:
        slots = {slot for tid, slot in completed if tid == task.task_id}
        qualities[task.task_id] = task_quality(
            task.num_slots, k, {s: 1.0 for s in slots}
        )
    return RealizationOutcome(
        completed=frozenset(completed),
        failed=frozenset(failed),
        qualities=qualities,
    )


def expected_realized_quality(
    tasks: TaskSet,
    pool: WorkerPool,
    assignment: Assignment,
    *,
    k: int = 3,
    trials: int = 50,
    seed: int = 0,
) -> dict[int, float]:
    """Monte-Carlo estimate of the expected realized quality per task."""
    totals = {task.task_id: 0.0 for task in tasks}
    for trial in range(trials):
        outcome = simulate_execution(
            tasks, pool, assignment, k=k, seed=seed * 1_000_003 + trial
        )
        for task_id, quality in outcome.qualities.items():
            totals[task_id] += quality
    return {task_id: total / trials for task_id, total in totals.items()}
