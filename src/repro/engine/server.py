"""The TCSC server: the end-to-end orchestration loop of Figure 1.

The server accepts tasks, looks up registered worker availability,
decomposes tasks into subtasks, runs the selected assignment policy,
and aggregates the crowdsourced results.  It is the public entry point
the examples use; benchmarks drive the solvers directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.baselines import RandomAssignmentSolver
from repro.core.greedy import IndexedSingleTaskGreedy, SingleTaskGreedy, SolverResult
from repro.core.instrumentation import OpCounters
from repro.engine.costs import SingleTaskCostTable
from repro.engine.field import SpatioTemporalField
from repro.engine.interpolation import idw_series, reconstruction_rmse
from repro.engine.registry import WorkerRegistry
from repro.errors import ConfigurationError
from repro.model.assignment import Assignment
from repro.model.task import Task, TaskSet
from repro.model.worker import WorkerPool

__all__ = ["ServerReport", "TCSCServer"]

_SINGLE_POLICIES = ("approx", "approx_star", "random")
_MULTI_OBJECTIVES = ("sum", "min")


@dataclass(slots=True)
class ServerReport:
    """Aggregated outcome of one server round."""

    assignment: Assignment
    qualities: dict[int, float]       # task_id -> q(tau)
    total_cost: float
    counters: OpCounters
    #: Physical reconstruction error per task, when a value field was
    #: attached (probed + interpolated series vs ground truth).
    rmse: dict[int, float] = field(default_factory=dict)

    @property
    def sum_quality(self) -> float:
        """qsum over the round's tasks (Eq. 7)."""
        return sum(self.qualities.values())

    @property
    def min_quality(self) -> float:
        """qmin over the round's tasks (Eq. 9)."""
        return min(self.qualities.values()) if self.qualities else 0.0


class TCSCServer:
    """Quality-aware TCSC assignment server.

    Parameters mirror the paper's defaults: ``k=3`` interpolation
    neighbours, ``ts=4`` tree fanout.  Attach a
    :class:`~repro.engine.field.SpatioTemporalField` to have workers
    "probe" values so reports include physical reconstruction error.
    ``backend`` selects the quality-kernel implementation
    (``"python"`` scalar oracle or ``"numpy"`` vectorized); plans are
    identical on either.
    """

    def __init__(
        self,
        pool: WorkerPool,
        bbox,
        *,
        k: int = 3,
        ts: int = 4,
        backend: str = "python",
        field_model: SpatioTemporalField | None = None,
    ):
        self.pool = pool
        self.bbox = bbox
        self.k = k
        self.ts = ts
        self.backend = backend
        self.field_model = field_model

    # ------------------------------------------------------------------
    # Single task
    # ------------------------------------------------------------------
    def assign_single(
        self,
        task: Task,
        budget: float,
        *,
        policy: str = "approx_star",
        seed: int = 0,
    ) -> ServerReport:
        """Assign one task under ``budget`` with the chosen policy."""
        if policy not in _SINGLE_POLICIES:
            raise ConfigurationError(
                f"unknown policy {policy!r}; choose one of {_SINGLE_POLICIES}"
            )
        registry = WorkerRegistry(self.pool, self.bbox)
        counters = OpCounters()
        costs = SingleTaskCostTable(task, registry, counters=counters)
        if policy == "approx":
            result = SingleTaskGreedy(
                task, costs, k=self.k, budget=budget,
                backend=self.backend, counters=counters,
            ).solve()
        elif policy == "approx_star":
            result = IndexedSingleTaskGreedy(
                task, costs, k=self.k, budget=budget, ts=self.ts,
                backend=self.backend, counters=counters,
            ).solve()
        else:
            quality, assignment = RandomAssignmentSolver(
                task, costs, k=self.k, budget=budget, seed=seed
            ).run_once()
            result = SolverResult(
                assignment=assignment,
                quality=quality,
                spent=assignment.total_cost,
                counters=counters,
            )
        return self._report(TaskSet([task]), result.assignment, {task.task_id: result.quality}, counters)

    # ------------------------------------------------------------------
    # Multiple tasks
    # ------------------------------------------------------------------
    def assign_multi(
        self,
        tasks: TaskSet,
        budget: float,
        *,
        objective: str = "sum",
        use_index: bool = True,
        cores: int | None = None,
    ) -> ServerReport:
        """Assign a task set under a shared budget.

        ``objective="sum"`` solves MSQM (Problem 2), ``"min"`` solves
        MMQM (Problem 3).  ``cores`` enables the task-level parallel
        framework on the virtual-clock simulator; ``None`` runs the
        serial solver.
        """
        if objective not in _MULTI_OBJECTIVES:
            raise ConfigurationError(
                f"unknown objective {objective!r}; choose one of {_MULTI_OBJECTIVES}"
            )
        # Imported here: repro.multi depends on repro.engine.
        from repro.multi.mmqm import MinQualityGreedy
        from repro.multi.msqm import SumQualityGreedy
        from repro.multi.scheduler import TaskLevelParallelSolver

        registry = WorkerRegistry(self.pool, self.bbox)
        if objective == "sum":
            if cores is not None:
                solver = TaskLevelParallelSolver(
                    tasks, registry, k=self.k, budget=budget, ts=self.ts, cores=cores
                )
            else:
                solver = SumQualityGreedy(
                    tasks, registry, k=self.k, budget=budget, ts=self.ts,
                    use_index=use_index, backend=self.backend,
                )
        else:
            solver = MinQualityGreedy(
                tasks, registry, k=self.k, budget=budget, ts=self.ts,
                use_index=use_index, backend=self.backend,
            )
        result = solver.solve()
        return self._report(tasks, result.assignment, result.qualities, result.counters)

    # ------------------------------------------------------------------
    # Result aggregation
    # ------------------------------------------------------------------
    def _report(
        self,
        tasks: TaskSet,
        assignment: Assignment,
        qualities: dict[int, float],
        counters: OpCounters,
    ) -> ServerReport:
        report = ServerReport(
            assignment=assignment,
            qualities=qualities,
            total_cost=assignment.total_cost,
            counters=counters,
        )
        if self.field_model is not None:
            for task in tasks:
                probed = {
                    record.slot: self.field_model.value(task.loc, task.global_slot(record.slot))
                    for record in assignment.records_for(task.task_id)
                }
                truth = [
                    self.field_model.value(task.loc, task.global_slot(slot))
                    for slot in task.slots
                ]
                reconstructed = idw_series(task.num_slots, probed, k=self.k)
                report.rmse[task.task_id] = reconstruction_rmse(truth, reconstructed)
        return report
