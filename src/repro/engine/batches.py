"""Batch-arrival processing: the TCSC server loop over time.

Section II-A: "According to the batch size that tasks arrive in, the
duration consists of at most m equal-sized time slots."  Real
platforms receive task batches continuously; this module runs the
multi-task solvers round by round over one *persistent* worker
registry, so workers committed in earlier rounds are unavailable to
later ones — the long-term operational view the one-shot solvers
abstract away.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.registry import WorkerRegistry
from repro.errors import ConfigurationError
from repro.geo.bbox import BoundingBox
from repro.model.task import TaskSet
from repro.model.worker import WorkerPool
from repro.multi.mmqm import MinQualityGreedy
from repro.multi.msqm import SumQualityGreedy
from repro.multi.result import MultiSolverResult

__all__ = ["BatchReport", "BatchTCSCServer"]


@dataclass(frozen=True, slots=True)
class BatchReport:
    """Outcome of one arrival round."""

    round_id: int
    result: MultiSolverResult
    cumulative_spent: float
    workers_committed: int


class BatchTCSCServer:
    """Multi-round TCSC assignment over a shared worker pool.

    Each call to :meth:`process_batch` assigns one arriving task batch
    under its own budget; the worker registry persists, so earlier
    commitments constrain later rounds (later batches pay higher costs
    or find slots uncoverable).

    ``backend="numpy"`` routes every round's evaluators through the
    vectorized quality kernels; because kernels are cached per task
    shape (:func:`repro.core.kernels.get_kernel`), the entropy tables
    are built once and amortized across all rounds and tasks.
    """

    def __init__(
        self,
        pool: WorkerPool,
        bbox: BoundingBox,
        *,
        k: int = 3,
        ts: int = 4,
        backend: str = "python",
    ):
        self.registry = WorkerRegistry(pool, bbox)
        self.k = k
        self.ts = ts
        self.backend = backend
        self.history: list[BatchReport] = []
        self._seen_task_ids: set[int] = set()

    @property
    def rounds(self) -> int:
        """Number of batches processed so far."""
        return len(self.history)

    @property
    def total_spent(self) -> float:
        """Budget spent across all rounds."""
        return sum(report.result.spent for report in self.history)

    def process_batch(
        self,
        tasks: TaskSet,
        budget: float,
        *,
        objective: str = "sum",
    ) -> BatchReport:
        """Assign one arriving batch; returns its report.

        Task ids must be globally unique across rounds so that the
        combined history forms one consistent assignment.
        """
        clash = {t.task_id for t in tasks} & self._seen_task_ids
        if clash:
            raise ConfigurationError(
                f"task ids {sorted(clash)} were already assigned in an earlier batch"
            )
        if objective == "sum":
            solver = SumQualityGreedy(
                tasks, self.registry, k=self.k, budget=budget, ts=self.ts,
                backend=self.backend,
            )
        elif objective == "min":
            solver = MinQualityGreedy(
                tasks, self.registry, k=self.k, budget=budget, ts=self.ts,
                backend=self.backend,
            )
        else:
            raise ConfigurationError(f"unknown objective {objective!r}")
        result = solver.solve()
        self._seen_task_ids.update(t.task_id for t in tasks)
        committed = sum(
            len(self.registry.consumed_at(slot))
            for slot in range(1, max((t.start_slot + t.num_slots for t in tasks), default=1))
        )
        report = BatchReport(
            round_id=len(self.history),
            result=result,
            cumulative_spent=self.total_spent + result.spent,
            workers_committed=committed,
        )
        self.history.append(report)
        return report
