"""Inverse-distance temporal interpolation of probed series.

The quality metric of Section II models interpolation error *a priori*
(by temporal distances); this module performs the *actual* inverse-
distance interpolation [17]-[19] so that examples and tests can verify
the physical claim behind the metric: assignments with higher entropy
quality reconstruct the ground-truth series with lower error.
"""

from __future__ import annotations

import math

from repro.core.quality import interpolation_neighbors
from repro.errors import ConfigurationError

__all__ = ["idw_series", "reconstruction_rmse"]


def idw_series(
    m: int,
    probed: dict[int, float],
    *,
    k: int = 3,
    power: float = 1.0,
) -> list[float]:
    """Reconstruct a full series of ``m`` slots from probed values.

    ``probed`` maps executed slot -> measured value.  Unexecuted slots
    are filled by inverse-distance weighting over their ``k`` temporal
    nearest probed slots; with no probes at all, the series is all
    zeros (zero knowledge).  Returns a list indexed ``0..m-1`` for slot
    ``1..m``.
    """
    if m < 1:
        raise ConfigurationError(f"m must be >= 1, got {m}")
    for slot in probed:
        if not 1 <= slot <= m:
            raise ConfigurationError(f"probed slot {slot} outside 1..{m}")
    out = [0.0] * m
    executed = sorted(probed)
    for slot in range(1, m + 1):
        if slot in probed:
            out[slot - 1] = probed[slot]
            continue
        neighbors = interpolation_neighbors(slot, executed, k)
        if not neighbors:
            out[slot - 1] = 0.0
            continue
        num = 0.0
        den = 0.0
        for e in neighbors:
            w = 1.0 / (abs(e - slot) ** power)
            num += w * probed[e]
            den += w
        out[slot - 1] = num / den
    return out


def reconstruction_rmse(truth: list[float], reconstructed: list[float]) -> float:
    """Root-mean-square error between two equal-length series."""
    if len(truth) != len(reconstructed):
        raise ConfigurationError(
            f"length mismatch: {len(truth)} vs {len(reconstructed)}"
        )
    if not truth:
        return 0.0
    total = sum((a - b) ** 2 for a, b in zip(truth, reconstructed))
    return math.sqrt(total / len(truth))
