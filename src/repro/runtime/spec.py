"""`RunSpec`: one declarative description of a full serving run.

A :class:`RunSpec` names everything the serving lattice used to
hand-thread through eight constructors: the workload shape
(:class:`WorkloadSpec`), the solver variant (``backend`` / ``search``
/ ``use_index``), the serving mode (``plain | batch | stream``),
sharding (``shards`` / ``halo``), and durability (``journal`` /
``snapshot_every`` / crash injection).  Specs are plain data:
``to_dict``/``from_dict`` round-trip exactly (a seeded property
test), JSON files load via :meth:`RunSpec.from_json`, and invalid
capability combinations fail *at validation time* with a typed
:class:`~repro.errors.SpecError` instead of deep inside a
constructor.

The companion factory, :func:`repro.runtime.build_runtime`, turns a
validated spec into a composed serving stack.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path

from repro.errors import SpecError
from repro.par.executor import EXECUTOR_KINDS

__all__ = [
    "SERVING_MODES",
    "SEARCH_MODES",
    "APPROX_MODES",
    "ELASTIC_MODES",
    "EXECUTOR_KINDS",
    "SolverVariant",
    "WorkloadSpec",
    "RunSpec",
]

SERVING_MODES = ("plain", "batch", "stream")
ELASTIC_MODES = ("off", "auto", "fixed")
SEARCH_MODES = ("enumerate", "lazy")
APPROX_MODES = ("off", "top_c", "floor", "auto")
_BACKENDS = ("python", "numpy")
_INDEX_MODES = ("incremental", "rebuild")
_CRASH_PHASES = ("apply", "append")
_DISTRIBUTIONS = ("uniform", "gaussian", "zipfian")


def _check_dict_keys(cls, data: dict) -> None:
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise SpecError(
            f"{cls.__name__} does not accept field(s) {unknown}; "
            f"known fields: {sorted(known)}"
        )


@dataclass(frozen=True, slots=True)
class SolverVariant:
    """The PR-2 solver-variant triple, as one value.

    Every place that used to hand-thread ``backend`` / ``search`` /
    ``use_index`` (serving solvers, the perf suite's variant table,
    the CLI) now passes one of these to
    :func:`repro.runtime.factory.build_single_task_solver`.
    """

    backend: str = "python"
    search: str = "enumerate"
    use_index: bool = False
    #: Bounded-candidate search: consider only the top-``top_c`` offers
    #: per task, ranked by the cached single-slot quality table
    #: (``None`` = exact).  The solver reports a certified quality
    #: ratio derived from the final gain envelope (``repro.degrade``).
    top_c: int | None = None
    #: Quality-floor early termination: stop the greedy loop once the
    #: marginal gain drops below ``floor`` times the first committed
    #: gain (``None`` = run to budget exhaustion).
    floor: float | None = None


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """The scenario generator's knobs, one namespace for every mode.

    ``plain``/``batch`` runs read the one-shot fields (``tasks`` /
    ``slots`` / ``workers``); ``stream`` runs read the trace fields
    (``horizon`` onward).  ``seed`` and ``distribution`` apply to
    both.  Defaults mirror the paper-pinned defaults of
    :class:`~repro.workloads.scenario.ScenarioConfig` and
    :class:`~repro.workloads.streaming.StreamScenarioConfig`.
    """

    seed: int = 7
    distribution: str = "uniform"
    # One-shot scenarios (plain / batch).
    tasks: int = 1
    slots: int = 100
    workers: int = 500
    #: Arrival rounds for ``batch`` mode (tasks split canonically).
    rounds: int = 1
    # Event traces (stream).
    horizon: int = 100
    task_rate: float = 0.15
    burstiness: float = 0.0
    task_slots: int = 24
    initial_workers: int = 40
    join_rate: float = 1.0
    mean_lifetime: float = 25.0
    early_leave_prob: float = 0.3
    #: Hotspot-drift arrival preset (stream mode): arrivals relocate
    #: onto one POI hotspot with probability growing linearly to this
    #: value over the horizon — the deterministic skew input the
    #: elastic suite rebalances against.  0 disables the preset.
    hotspot_drift: float = 0.0

    def validate(self) -> None:
        if self.distribution not in _DISTRIBUTIONS:
            raise SpecError(
                f"unknown distribution {self.distribution!r}; "
                f"choose one of {_DISTRIBUTIONS}"
            )
        for name, minimum in (
            ("tasks", 1), ("slots", 3), ("workers", 1), ("rounds", 1),
            ("horizon", 1), ("task_slots", 3), ("initial_workers", 0),
        ):
            if getattr(self, name) < minimum:
                raise SpecError(f"workload.{name} must be >= {minimum}, "
                                f"got {getattr(self, name)}")
        if self.rounds > self.tasks:
            raise SpecError(
                f"workload.rounds ({self.rounds}) exceeds workload.tasks "
                f"({self.tasks}); every batch round needs at least one task"
            )
        if not 0.0 <= self.hotspot_drift <= 1.0:
            raise SpecError(
                f"workload.hotspot_drift must be in [0, 1], "
                f"got {self.hotspot_drift}"
            )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        _check_dict_keys(cls, data)
        return cls(**data)


@dataclass(frozen=True, slots=True)
class RunSpec:
    """One declarative serving run; see the module docstring."""

    mode: str = "plain"
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    # Solver variant (the PR-2 knobs).
    backend: str = "python"
    search: str = "lazy"
    use_index: bool = False
    k: int = 3
    ts: int = 4
    budget_fraction: float = 0.25
    # Sharding (the PR-3 knobs).
    shards: int = 1
    halo: str | float = "auto"
    cells_per_side: int | None = None
    # Stream serving (the PR-1 knobs; stream mode only).
    epoch_length: float = 5.0
    index_mode: str = "incremental"
    max_active_tasks: int = 8
    max_queue_depth: int = 16
    pool_budget: float | None = None
    # Durability (the PR-4 knobs; require a journal, which requires
    # stream mode).
    journal: str | None = None
    snapshot_every: int = 4
    sync: bool = False
    crash_after_events: int | None = None
    crash_phase: str = "apply"
    # Observability (the PR-6 knobs): span tracing, metrics, and phase
    # profiling composed as layers (``repro.obs``).
    telemetry: bool = False
    trace_out: str | None = None
    # Graceful degradation (the PR-7 knobs; ``repro.degrade``):
    # ``approx`` selects the degradation mode — ``"off"`` (exact,
    # byte-identical to the seed solvers), ``"top_c"`` (bounded-
    # candidate search over the ``approx_top_c`` best-ranked slots),
    # ``"floor"`` (quality-floor early termination at ``approx_floor``
    # of the first committed gain), or ``"auto"`` (SLO-aware mode
    # ladder exact -> top-c -> floor -> shed driven by queue depth /
    # p99 latency with deterministic hysteresis; stream + telemetry
    # only).  Every approximate plan carries a certified quality ratio.
    approx: str = "off"
    approx_top_c: int | None = None
    approx_floor: float | None = None
    #: Hysteresis thresholds for ``approx="auto"``: escalate one level
    #: when the pending queue reaches ``degrade_queue_high`` (or p99
    #: assignment latency exceeds ``slo_p99`` virtual slots, when set);
    #: de-escalate once it falls back to ``degrade_queue_low``.
    degrade_queue_high: int = 6
    degrade_queue_low: int = 2
    slo_p99: float | None = None
    # Elastic sharding (the PR-8 knobs; ``repro.elastic``): live shard
    # migration over the snapshot codec.  ``elastic`` selects the
    # placement policy — ``"off"`` (static placement, byte-identical
    # to the plain sharded server), ``"auto"`` (hysteresis controller
    # over deterministic queue-depth and op-cost signals), or
    # ``"fixed"`` (one scripted migration at epoch boundary
    # ``migrate_at`` — the exactness-sweep and ``--migrate-at``
    # spelling).  Requires stream mode with shards >= 2.
    elastic: str = "off"
    migrate_at: int | None = None
    #: Hysteresis thresholds for ``elastic="auto"``: shed a shard off
    #: an executor whose settled queue reaches ``migrate_queue_high``
    #: onto one at or below ``migrate_queue_low``.
    migrate_queue_high: int = 8
    migrate_queue_low: int = 2
    # Real parallelism (the PR-10 knobs; ``repro.par``): where per-shard
    # work runs.  ``executor`` selects the kind — ``"serial"`` (inline,
    # the byte-identical reference), ``"thread"`` (GIL-bound threads,
    # concurrency-correctness proof), or ``"process"`` (a process pool;
    # work units cross the boundary via the exact JSON snapshot codec).
    # ``max_workers`` caps the pool width (default: one worker per
    # shard for threads, the host CPU count for processes).
    executor: str = "serial"
    max_workers: int | None = None

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> "RunSpec":
        """Raise :class:`~repro.errors.SpecError` on any bad field or
        uncomposable capability pairing; returns ``self`` for chaining."""
        if self.mode not in SERVING_MODES:
            raise SpecError(
                f"unknown mode {self.mode!r}; choose one of {SERVING_MODES}"
            )
        if self.backend not in _BACKENDS:
            raise SpecError(
                f"unknown backend {self.backend!r}; choose one of {_BACKENDS}"
            )
        if self.search not in SEARCH_MODES:
            raise SpecError(
                f"unknown search {self.search!r}; choose one of {SEARCH_MODES}"
            )
        if self.index_mode not in _INDEX_MODES:
            raise SpecError(
                f"unknown index_mode {self.index_mode!r}; "
                f"choose one of {_INDEX_MODES}"
            )
        if self.crash_phase not in _CRASH_PHASES:
            raise SpecError(
                f"unknown crash_phase {self.crash_phase!r}; "
                f"choose one of {_CRASH_PHASES}"
            )
        if self.use_index and self.search != "enumerate":
            raise SpecError(
                "use_index=True selects the tree-indexed solver, which has "
                f"no candidate-search knob; leave search='enumerate' "
                f"(got search={self.search!r})"
            )
        if self.k < 1:
            raise SpecError(f"k must be >= 1, got {self.k}")
        if self.ts < 2:
            raise SpecError(f"ts must be >= 2, got {self.ts}")
        if not 0.0 < self.budget_fraction <= 1.0:
            raise SpecError(
                f"budget_fraction must be in (0, 1], got {self.budget_fraction}"
            )
        if self.shards < 1:
            raise SpecError(f"shards must be >= 1, got {self.shards}")
        if isinstance(self.halo, str):
            if self.halo != "auto":
                raise SpecError(
                    f"halo must be 'auto' or a radius >= 0, got {self.halo!r}"
                )
        elif self.halo < 0:
            raise SpecError(f"halo radius must be >= 0, got {self.halo}")
        if self.epoch_length <= 0:
            raise SpecError(f"epoch_length must be > 0, got {self.epoch_length}")
        if self.max_active_tasks < 1:
            raise SpecError(
                f"max_active_tasks must be >= 1, got {self.max_active_tasks}"
            )
        if self.max_queue_depth < 0:
            raise SpecError(
                f"max_queue_depth must be >= 0, got {self.max_queue_depth}"
            )
        if self.snapshot_every < 0:
            raise SpecError(
                f"snapshot_every must be >= 0, got {self.snapshot_every}"
            )
        # Capability pairings the runtime cannot compose (yet): these
        # are *spec* errors so the matrix runner and the --spec CLI can
        # report them as typed rejections rather than crashes.
        if self.mode == "batch" and self.shards > 1:
            raise SpecError(
                "sharding composes with plain and stream serving only; "
                "batch x shard is not a supported pairing yet (got "
                f"mode='batch', shards={self.shards})"
            )
        if self.journal is not None and self.mode != "stream":
            raise SpecError(
                "journal durability wraps the streaming core; it requires "
                f"mode='stream' (got mode={self.mode!r})"
            )
        if self.journal is None:
            if self.crash_after_events is not None:
                raise SpecError(
                    "crash_after_events injects faults into the journal "
                    "layer; it requires a journal path"
                )
            if self.sync:
                raise SpecError(
                    "sync fsyncs the write-ahead log; it requires a "
                    "journal path"
                )
        if self.crash_after_events is not None and self.crash_after_events < 0:
            raise SpecError(
                f"crash_after_events must be >= 0, got {self.crash_after_events}"
            )
        if self.trace_out is not None and not self.telemetry:
            raise SpecError(
                "trace_out names the telemetry trace file; it requires "
                "telemetry=True"
            )
        if self.telemetry and self.mode == "batch":
            raise SpecError(
                "telemetry observes the plain serving round or the "
                "streaming layer seam; batch x telemetry is not a "
                "supported pairing yet (got mode='batch')"
            )
        # Degradation (the PR-7 knobs).
        if self.approx not in APPROX_MODES:
            raise SpecError(
                f"unknown approx {self.approx!r}; choose one of {APPROX_MODES}"
            )
        if self.approx != "off":
            if self.mode == "batch":
                raise SpecError(
                    "approximate modes degrade the single-task greedy "
                    "solvers; approx x batch is not a supported pairing "
                    f"yet (got mode='batch', approx={self.approx!r})"
                )
            if self.shards > 1:
                raise SpecError(
                    "per-request certificates are tracked by the "
                    "single-shard runtime; approx x shard is not a "
                    f"supported pairing yet (got shards={self.shards}, "
                    f"approx={self.approx!r})"
                )
            if self.journal is not None:
                raise SpecError(
                    "journal replay verifies exact plans; approx x journal "
                    f"is not a supported pairing yet (got approx="
                    f"{self.approx!r})"
                )
            if self.use_index:
                raise SpecError(
                    "the tree-indexed solver has no bounded-candidate or "
                    "floor knob; approx x use_index is not a supported "
                    f"pairing yet (got approx={self.approx!r})"
                )
        if self.approx in ("top_c", "auto") and self.approx_top_c is None:
            raise SpecError(
                f"approx={self.approx!r} needs approx_top_c (the number of "
                "top-ranked candidate slots to keep)"
            )
        if self.approx in ("floor", "auto") and self.approx_floor is None:
            raise SpecError(
                f"approx={self.approx!r} needs approx_floor (the marginal-"
                "gain floor as a fraction of the first committed gain)"
            )
        if self.approx_top_c is not None:
            if self.approx not in ("top_c", "auto"):
                raise SpecError(
                    "approx_top_c configures the bounded-candidate search; "
                    f"it requires approx='top_c' or 'auto' (got approx="
                    f"{self.approx!r})"
                )
            if self.approx_top_c < 1:
                raise SpecError(
                    f"approx_top_c must be >= 1, got {self.approx_top_c}"
                )
        if self.approx_floor is not None:
            if self.approx not in ("floor", "auto"):
                raise SpecError(
                    "approx_floor configures quality-floor early "
                    "termination; it requires approx='floor' or 'auto' "
                    f"(got approx={self.approx!r})"
                )
            if not 0.0 < self.approx_floor <= 1.0:
                raise SpecError(
                    f"approx_floor must be in (0, 1], got {self.approx_floor}"
                )
        if self.approx == "auto":
            if self.mode != "stream":
                raise SpecError(
                    "approx='auto' switches modes from streaming load "
                    f"signals; it requires mode='stream' (got mode="
                    f"{self.mode!r})"
                )
            if not self.telemetry:
                raise SpecError(
                    "approx='auto' reads queue depth and p99 latency from "
                    "the telemetry MetricsRegistry; it requires "
                    "telemetry=True"
                )
        if self.degrade_queue_high < 1:
            raise SpecError(
                f"degrade_queue_high must be >= 1, got {self.degrade_queue_high}"
            )
        if self.degrade_queue_low < 0:
            raise SpecError(
                f"degrade_queue_low must be >= 0, got {self.degrade_queue_low}"
            )
        if self.degrade_queue_low >= self.degrade_queue_high:
            raise SpecError(
                "hysteresis needs degrade_queue_low < degrade_queue_high, "
                f"got low={self.degrade_queue_low} high="
                f"{self.degrade_queue_high}"
            )
        if self.slo_p99 is not None:
            if self.approx != "auto":
                raise SpecError(
                    "slo_p99 drives the SLO-aware mode ladder; it requires "
                    f"approx='auto' (got approx={self.approx!r})"
                )
            if self.slo_p99 <= 0:
                raise SpecError(f"slo_p99 must be > 0, got {self.slo_p99}")
        # Elastic sharding (the PR-8 knobs).
        if self.elastic not in ELASTIC_MODES:
            raise SpecError(
                f"unknown elastic {self.elastic!r}; "
                f"choose one of {ELASTIC_MODES}"
            )
        if self.elastic != "off":
            if self.mode != "stream":
                raise SpecError(
                    "elastic sharding rebalances the streaming router; "
                    "elastic x plain/batch is not a supported pairing yet "
                    f"(got mode={self.mode!r}, elastic={self.elastic!r})"
                )
            if self.shards < 2:
                raise SpecError(
                    "elastic sharding migrates shards between executors; "
                    f"it requires shards >= 2 (got shards={self.shards}, "
                    f"elastic={self.elastic!r})"
                )
            if self.journal is not None:
                raise SpecError(
                    "the migration log and the write-ahead journal both "
                    "claim the layer seam's record stream; elastic x "
                    f"journal is not a supported pairing yet (got elastic="
                    f"{self.elastic!r})"
                )
        if self.elastic == "fixed" and self.migrate_at is None:
            raise SpecError(
                "elastic='fixed' needs migrate_at (the epoch boundary of "
                "the scripted migration)"
            )
        if self.migrate_at is not None:
            if self.elastic != "fixed":
                raise SpecError(
                    "migrate_at schedules the scripted migration; it "
                    f"requires elastic='fixed' (got elastic={self.elastic!r})"
                )
            if self.migrate_at < 0:
                raise SpecError(
                    f"migrate_at must be >= 0, got {self.migrate_at}"
                )
        if self.migrate_queue_high < 1:
            raise SpecError(
                f"migrate_queue_high must be >= 1, got {self.migrate_queue_high}"
            )
        if self.migrate_queue_low < 0:
            raise SpecError(
                f"migrate_queue_low must be >= 0, got {self.migrate_queue_low}"
            )
        if self.migrate_queue_low >= self.migrate_queue_high:
            raise SpecError(
                "hysteresis needs migrate_queue_low < migrate_queue_high, "
                f"got low={self.migrate_queue_low} high="
                f"{self.migrate_queue_high}"
            )
        # Real parallelism (the PR-10 knobs).
        if self.executor not in EXECUTOR_KINDS:
            raise SpecError(
                f"unknown executor {self.executor!r}; "
                f"choose one of {EXECUTOR_KINDS}"
            )
        if self.max_workers is not None:
            if self.max_workers < 1:
                raise SpecError(
                    f"max_workers must be >= 1, got {self.max_workers}"
                )
            if self.executor == "serial":
                raise SpecError(
                    "max_workers sizes the executor's worker pool; it "
                    "requires executor='thread' or 'process' (got "
                    "executor='serial')"
                )
        if self.executor != "serial":
            if self.mode == "batch":
                raise SpecError(
                    "executors run per-shard work; batch x executor is "
                    "not a supported pairing yet (got mode='batch', "
                    f"executor={self.executor!r})"
                )
            if self.journal is not None:
                raise SpecError(
                    "the write-ahead journal holds the parent's file "
                    "handle, which cannot cross an executor boundary; "
                    "executor x journal is not a supported pairing yet "
                    f"(got executor={self.executor!r})"
                )
            if self.approx != "off":
                raise SpecError(
                    "per-request certificates are tracked by the serial "
                    "runtime; executor x approx is not a supported "
                    f"pairing yet (got executor={self.executor!r}, "
                    f"approx={self.approx!r})"
                )
            if self.elastic != "off":
                raise SpecError(
                    "elastic migration rebalances mid-run, which the "
                    "shard-per-unit executor drain does not replay; "
                    "executor x elastic is not a supported pairing yet "
                    f"(got executor={self.executor!r}, "
                    f"elastic={self.elastic!r})"
                )
            if self.telemetry and self.mode != "stream":
                raise SpecError(
                    "executor x telemetry trace interleaving is defined "
                    "for the sharded streaming drain only (per-shard "
                    "scopes merged in shard-id order); plain x telemetry "
                    "x executor is rejected rather than left undefined "
                    f"(got mode={self.mode!r}, executor={self.executor!r})"
                )
        self.workload.validate()
        return self

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON dict (``workload`` nested); exactly inverted by
        :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Build and validate a spec from :meth:`to_dict` output.

        Unknown fields raise :class:`~repro.errors.SpecError` — a
        typo'd spec file must not silently run with defaults.
        """
        if not isinstance(data, dict):
            raise SpecError(f"a RunSpec must be a JSON object, got {type(data).__name__}")
        _check_dict_keys(cls, data)
        data = dict(data)
        workload = data.pop("workload", None)
        if workload is not None:
            if isinstance(workload, dict):
                workload = WorkloadSpec.from_dict(workload)
            elif not isinstance(workload, WorkloadSpec):
                raise SpecError(
                    f"workload must be an object, got {type(workload).__name__}"
                )
            data["workload"] = workload
        spec = cls(**data)
        return spec.validate()

    @classmethod
    def from_json(cls, path: str | Path) -> "RunSpec":
        """Load and validate a spec from a JSON file (``--spec``)."""
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except OSError as exc:
            raise SpecError(f"cannot read spec file {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise SpecError(f"{path} is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def to_json(self, path: str | Path) -> None:
        """Persist the spec as pretty-printed JSON."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    def replace(self, **changes) -> "RunSpec":
        """A copy with ``changes`` applied (sweep/grid convenience)."""
        return replace(self, **changes)

    @property
    def solver_variant(self) -> SolverVariant:
        """The spec's solver-variant triple.

        Static degradation modes project into the variant; ``auto``
        starts exact and switches at runtime, so it projects as exact.
        """
        return SolverVariant(
            backend=self.backend,
            search=self.search,
            use_index=self.use_index,
            top_c=self.approx_top_c if self.approx == "top_c" else None,
            floor=self.approx_floor if self.approx == "floor" else None,
        )
