"""`build_runtime`: from one :class:`RunSpec` to a composed stack.

The factory resolves a validated spec into the serving stack the
eight-class lattice used to enumerate by hand:

* ``mode="plain"`` — one canonical-order serving round:
  :class:`~repro.shard.server.SequentialServingSolver` (one shard) or
  the halo-partitioned
  :class:`~repro.shard.server.ShardedTCSCServer` (``shards > 1``),
  plan-identical by the PR-3 reconciliation proof.
* ``mode="batch"`` — multi-round arrival processing over one
  persistent registry (:class:`~repro.engine.batches.BatchTCSCServer`).
* ``mode="stream"`` — the event-driven online core
  (:class:`~repro.stream.online_server.StreamingTCSCServer`), wrapped
  by the sharded router for ``shards > 1`` and extended with a
  per-core :class:`~repro.journal.layer.JournalLayer` when a
  ``journal`` path is named — capability pairings are spec fields
  resolved here, not subclasses.

Every runtime handle exposes ``run() -> RunOutcome`` with the three
identity artifacts the equivalence matrix gates on:
``plan_signature``, ``metrics`` (stream modes), and ``counters``.
:func:`recover_runtime` is the durability entry point: it rebuilds a
crashed stack from its journal directory alone.

:func:`build_single_task_solver` is the shared solver-variant
constructor (backend x search x index) that the serving solvers and
the perf suite both build on — the PR-2 kwargs are threaded in
exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.greedy import IndexedSingleTaskGreedy, SingleTaskGreedy
from repro.core.instrumentation import OpCounters
from repro.errors import SpecError
from repro.runtime.spec import RunSpec, SolverVariant
from repro.workloads.scenario import ScenarioConfig, build_scenario
from repro.workloads.spatial import Distribution
from repro.workloads.streaming import StreamScenarioConfig, build_stream_events

__all__ = [
    "RunOutcome",
    "Runtime",
    "PlainRuntime",
    "BatchRuntime",
    "StreamRuntime",
    "RecoveredRuntime",
    "build_runtime",
    "build_serving_solver",
    "build_single_task_solver",
    "recover_runtime",
]


# ----------------------------------------------------------------------
# The shared solver-variant constructor (PR-2 kwargs, one copy)
# ----------------------------------------------------------------------
def build_single_task_solver(
    variant: SolverVariant,
    task,
    costs,
    *,
    budget: float,
    k: int = 3,
    ts: int = 4,
    counters: OpCounters | None = None,
):
    """One single-task solver from a :class:`SolverVariant`.

    ``use_index`` selects the tree-indexed ``Approx*`` solver
    (``search`` does not apply there — validation rejects the combo);
    otherwise the local-strategy greedy with the chosen candidate
    search.  Exact variants are plan-identical by construction; the
    degradation knobs (``top_c`` / ``floor``) trade quality for work
    and carry a certified quality ratio instead.
    """
    if variant.use_index:
        if variant.top_c is not None or variant.floor is not None:
            raise SpecError(
                "the tree-indexed solver has no bounded-candidate or "
                "floor knob; approx x use_index is not a supported "
                "pairing yet"
            )
        return IndexedSingleTaskGreedy(
            task, costs, k=k, budget=budget, ts=ts,
            backend=variant.backend, counters=counters,
        )
    return SingleTaskGreedy(
        task, costs, k=k, budget=budget, strategy="local",
        search=variant.search, backend=variant.backend, counters=counters,
        top_c=variant.top_c, gain_floor=variant.floor,
    )


# ----------------------------------------------------------------------
# Outcomes
# ----------------------------------------------------------------------
@dataclass(slots=True)
class RunOutcome:
    """What one spec-driven run produced.

    ``plan_signature`` / ``metrics`` / ``counters`` are the byte-
    identity artifacts the equivalence matrix gates on; ``counters``
    is one :class:`~repro.core.instrumentation.OpCounters` for
    single-core stacks and a tuple (one per shard) for sharded stream
    runs.  ``report_text`` is the operator-facing summary the CLI
    prints.
    """

    spec: RunSpec
    plan_signature: tuple
    counters: object
    metrics: object | None
    qualities: dict | None
    report_text: str
    server: object
    #: The run's :class:`~repro.obs.layer.Telemetry` bundle (``None``
    #: unless ``spec.telemetry``); its trace/metrics/phase state is
    #: finished and ready to report.
    telemetry: object | None = None
    #: task_id -> certified quality ratio (``None`` unless the spec
    #: named an approximate mode; exact runs carry no certificates so
    #: the outcome stays structurally identical with ``approx="off"``).
    certificates: dict | None = None


# ----------------------------------------------------------------------
# Runtime handles
# ----------------------------------------------------------------------
class Runtime:
    """Base handle: a validated spec plus a lazily built workload."""

    def __init__(self, spec: RunSpec):
        self.spec = spec.validate()

    def run(self) -> RunOutcome:
        raise NotImplementedError


def build_serving_solver(
    spec: RunSpec, pool, bbox, *, force_sharded=False, executor=None
):
    """The plain-mode serving solver a spec resolves to.

    ``shards == 1`` builds the sequential reference; more shards build
    the halo-partitioned coordinator.  ``force_sharded=True`` builds
    the coordinator even at one shard — the shard suite's degenerate-
    sharding row measures exactly that case.  Exposed so suites that
    sweep shard counts over one pre-built scenario share this
    resolution instead of re-threading the solver kwargs.

    ``executor`` overrides the spec-resolved
    :class:`~repro.par.executor.Executor` (suites pass one persistent
    pool across a sweep).  A non-serial executor always builds the
    coordinator: per-shard work units are the parallel unit, and the
    one-shard coordinator is plan-identical to the sequential
    reference by the PR-3 reconciliation proof.
    """
    # Imported here: repro.shard imports the runtime's shared solver
    # builder at module level.
    from repro.par.executor import executor_from_spec
    from repro.shard.server import SequentialServingSolver, ShardedTCSCServer

    if executor is None:
        executor = executor_from_spec(spec)
    variant = spec.solver_variant
    common = dict(
        k=spec.k, ts=spec.ts,
        engine="indexed" if spec.use_index else "greedy",
        search=spec.search, backend=spec.backend,
        top_c=variant.top_c, floor=variant.floor,
    )
    if spec.shards == 1 and not force_sharded and executor is None:
        return SequentialServingSolver(pool, bbox, **common)
    # The coordinator has no degradation knobs; validate() already
    # rejects approx x shards, so both are None here — drop them
    # rather than threading dead kwargs through the shard stack.
    common.pop("top_c")
    common.pop("floor")
    return ShardedTCSCServer(
        pool, bbox, num_shards=spec.shards, halo=spec.halo,
        cells_per_side=spec.cells_per_side, executor=executor, **common,
    )


class PlainRuntime(Runtime):
    """One canonical-order serving round (sequential or sharded)."""

    def _build_solver(self, scenario):
        return build_serving_solver(self.spec, scenario.pool, scenario.bbox)

    def run(self) -> RunOutcome:
        spec = self.spec
        w = spec.workload
        scenario = build_scenario(
            ScenarioConfig(
                num_tasks=w.tasks, num_slots=w.slots, num_workers=w.workers,
                distribution=Distribution(w.distribution), seed=w.seed,
                k=spec.k, budget_fraction=spec.budget_fraction,
            )
        )
        solver = self._build_solver(scenario)
        telemetry = None
        if spec.telemetry:
            from repro.obs.layer import Telemetry

            telemetry = Telemetry(trace_path=spec.trace_out, spec=spec.to_dict())
        try:
            report = solver.assign(
                scenario.tasks,
                budget_fraction=spec.budget_fraction,
                profiler=None if telemetry is None else telemetry.profiler(),
            )
        except BaseException:
            if telemetry is not None:
                telemetry.abort()
            raise
        if telemetry is not None:
            telemetry.finish()
        lines = [
            "serving report",
            "--------------",
            f"mode=plain shards={spec.shards} backend={spec.backend} "
            f"search={spec.search} use_index={spec.use_index}",
            f"tasks     {w.tasks} assigned={len(report.assignment)} subtasks "
            f"cost={report.total_cost:.3f}",
            f"quality   qsum={sum(report.qualities.values()):.4f}",
            f"op-cost   serial={report.serial_cost:.0f}",
        ]
        if spec.shards > 1:
            lines.append(
                f"scaling   makespan={report.makespan:.0f} "
                f"speedup={report.speedup:.2f}x conflicts={report.conflicts} "
                f"reconciled={len(report.reconciled_task_ids)}"
            )
        certificates = None
        if spec.approx != "off":
            certificates = dict(report.certificates)
            if certificates:
                values = certificates.values()
                lines.append(
                    f"certify   n={len(certificates)} "
                    f"min={min(values):.3f} "
                    f"mean={sum(values) / len(values):.3f}"
                )
        return RunOutcome(
            spec=spec,
            plan_signature=report.plan_signature(),
            counters=report.counters,
            metrics=None,
            qualities=dict(report.qualities),
            report_text="\n".join(lines),
            server=solver,
            telemetry=telemetry,
            certificates=certificates,
        )


class BatchRuntime(Runtime):
    """Arrival rounds over one persistent registry."""

    def run(self) -> RunOutcome:
        from repro.engine.batches import BatchTCSCServer
        from repro.model.assignment import Assignment
        from repro.model.task import TaskSet

        spec = self.spec
        w = spec.workload
        scenario = build_scenario(
            ScenarioConfig(
                num_tasks=w.tasks, num_slots=w.slots, num_workers=w.workers,
                distribution=Distribution(w.distribution), seed=w.seed,
                k=spec.k, budget_fraction=spec.budget_fraction,
            )
        )
        server = BatchTCSCServer(
            scenario.pool, scenario.bbox,
            k=spec.k, ts=spec.ts, backend=spec.backend,
        )
        ordered = sorted(scenario.tasks, key=lambda t: t.task_id)
        per_round = -(-len(ordered) // w.rounds)  # ceil
        combined = Assignment()
        counters = OpCounters()
        qualities: dict[int, float] = {}
        for start in range(0, len(ordered), per_round):
            batch = ordered[start:start + per_round]
            report = server.process_batch(
                TaskSet(batch), scenario.budget * len(batch)
            )
            qualities.update(report.result.qualities)
            counters.merge(report.result.counters)
            for record in report.result.assignment:
                combined.add(record)
        lines = [
            "batch report",
            "------------",
            f"mode=batch rounds={server.rounds} backend={spec.backend}",
            f"tasks     {w.tasks} assigned={len(combined)} subtasks "
            f"spent={server.total_spent:.3f}",
            f"quality   qsum={sum(qualities.values()):.4f}",
        ]
        return RunOutcome(
            spec=spec,
            plan_signature=combined.plan_signature(),
            counters=counters,
            metrics=None,
            qualities=qualities,
            report_text="\n".join(lines),
            server=server,
        )


class StreamRuntime(Runtime):
    """The event-driven online stack, composed per the spec.

    ``force_sharded=True`` builds the sharded router even at one
    shard (the degenerate-sharding rows of the bench suites measure
    exactly that coordinator); :func:`build_runtime` never forces it.
    ``scenario`` seeds a pre-built trace so a suite sweeping many
    runtimes over one workload skips the per-runtime regeneration —
    it must have been built from the spec's workload fields.
    ``chaos`` is the run's fault-injection plan (a sequence of
    :class:`~repro.degrade.chaos.InjectionSpec`): trace-level
    injections must already be applied to ``scenario`` by the caller
    (:func:`~repro.degrade.chaos.apply_injections`); ``slowdown``
    injections are resolved here into per-core
    :class:`~repro.degrade.chaos.ChaosLayer` op budgets.
    """

    def __init__(
        self,
        spec: RunSpec,
        *,
        force_sharded: bool = False,
        scenario=None,
        chaos=(),
        executor=None,
    ):
        super().__init__(spec)
        self._scenario = scenario
        self._server = None
        self._telemetry = None
        # A non-serial executor always drains through the sharded
        # router (its per-shard work units are the parallel unit);
        # the one-shard router replays the trace unchanged, so the
        # forced composition stays byte-identical to the plain core.
        self._sharded = (
            force_sharded or spec.shards > 1 or spec.executor != "serial"
        )
        self._chaos = tuple(chaos)
        self._executor = executor

    def _resolve_executor(self):
        """The run's executor: the injected one (suites share a warm
        pool across a sweep) or the spec's; ``None`` keeps the legacy
        serial drain byte-for-byte."""
        if self._executor is not None:
            return self._executor
        from repro.par.executor import executor_from_spec

        return executor_from_spec(self.spec)

    def scenario(self):
        """The built (seed-pinned, cached) event trace."""
        if self._scenario is None:
            w = self.spec.workload
            self._scenario = build_stream_events(
                StreamScenarioConfig(
                    horizon=w.horizon,
                    task_rate=w.task_rate,
                    burstiness=w.burstiness,
                    task_slots=w.task_slots,
                    initial_workers=w.initial_workers,
                    worker_join_rate=w.join_rate,
                    mean_worker_lifetime=w.mean_lifetime,
                    early_leave_prob=w.early_leave_prob,
                    distribution=Distribution(w.distribution),
                    hotspot_drift=w.hotspot_drift,
                    seed=w.seed,
                )
            )
        return self._scenario

    def _core_kwargs(self) -> dict:
        spec = self.spec
        return dict(
            k=spec.k,
            ts=spec.ts,
            epoch_length=spec.epoch_length,
            index_mode=spec.index_mode,
            budget_fraction=spec.budget_fraction,
            max_active_tasks=spec.max_active_tasks,
            max_queue_depth=spec.max_queue_depth,
            pool_budget=spec.pool_budget,
            realization_seed=spec.workload.seed,
            backend=spec.backend,
        )

    @property
    def server(self):
        """The composed serving stack (built once, lazily)."""
        if self._server is None:
            self._server = self._build_server()
        return self._server

    def _chaos_layers(self, shard: int) -> tuple:
        """Op-budget throttle layers targeting ``shard``.

        An injection with ``shard=None`` lands on shard 0 (the only
        core of an unsharded stack).
        """
        from repro.degrade.chaos import ChaosLayer

        return tuple(
            ChaosLayer(injection.op_budget)
            for injection in self._chaos
            if injection.kind == "slowdown"
            and (injection.shard if injection.shard is not None else 0) == shard
        )

    def _degrade_layers(self, telemetry) -> tuple:
        """The degradation controller layer the spec asks for.

        Static modes (``top_c`` / ``floor``) pin the ladder at a fixed
        directive; ``auto`` runs the hysteresis controller against the
        telemetry registry's latency histogram (validation guarantees
        telemetry is on for ``auto``).
        """
        from repro.degrade.policy import DegradationController, DegradationLayer

        spec = self.spec
        if spec.approx == "auto":
            controller = DegradationController(
                top_c=spec.approx_top_c,
                floor=spec.approx_floor,
                queue_high=spec.degrade_queue_high,
                queue_low=spec.degrade_queue_low,
                slo_p99=spec.slo_p99,
            )
        else:
            controller = DegradationController.fixed(
                top_c=spec.approx_top_c if spec.approx == "top_c" else None,
                floor=spec.approx_floor if spec.approx == "floor" else None,
            )
        return (
            DegradationLayer(
                controller,
                recorder=None if telemetry is None else telemetry.recorder,
                registry=None if telemetry is None else telemetry.registry,
            ),
        )

    def _build_server(self):
        from repro.shard.streaming import ShardedStreamingServer
        from repro.stream.online_server import StreamingTCSCServer

        spec = self.spec
        bbox = self.scenario().bbox
        kwargs = self._core_kwargs()
        has_slowdown = any(i.kind == "slowdown" for i in self._chaos)
        telemetry = None
        if spec.telemetry:
            from repro.obs.layer import Telemetry

            if spec.elastic != "off":
                from repro.elastic import DEFAULT_PARTITIONS

                # Elastic stacks run one core per *logical* shard;
                # telemetry scopes follow the cores, not the executors.
                scope_count = spec.shards * DEFAULT_PARTITIONS
            else:
                scope_count = spec.shards if self._sharded else 1
            telemetry = Telemetry(
                trace_path=spec.trace_out,
                shards=scope_count,
                spec=spec.to_dict(),
            )
            self._telemetry = telemetry
        executor = self._resolve_executor()
        if executor is not None:
            # Validation already rejected journal/approx/elastic x
            # executor; chaos plans are build-time arguments, so the
            # remaining uncomposable pairing is rejected here.
            if has_slowdown:
                raise SpecError(
                    "slowdown injection x executor is not a supported "
                    "pairing yet (per-core op budgets live in layers, "
                    "which work units do not carry)"
                )
            return ShardedStreamingServer(
                bbox,
                num_shards=spec.shards,
                cells_per_side=spec.cells_per_side,
                halo_margin=spec.halo,
                executor=executor,
                telemetry=telemetry,
                **kwargs,
            )
        if spec.journal is not None:
            from repro.journal.layer import journaled_server
            from repro.journal.sharded import sharded_journaled_server

            if has_slowdown:
                raise SpecError(
                    "slowdown injection x journal is not a supported "
                    "pairing yet (op-budget throttling would desync the "
                    "replayed plan from the journaled one)"
                )
            durability = dict(
                snapshot_every=spec.snapshot_every,
                sync=spec.sync,
                crash_after_events=spec.crash_after_events,
                crash_phase=spec.crash_phase,
            )
            if not self._sharded:
                return journaled_server(
                    bbox,
                    journal=spec.journal,
                    wrap_layer=(
                        None if telemetry is None else telemetry.journal_wrap(0)
                    ),
                    extra_layers=(
                        () if telemetry is None else telemetry.layers(0)
                    ),
                    **durability,
                    **kwargs,
                )
            return sharded_journaled_server(
                bbox,
                journal_root=spec.journal,
                num_shards=spec.shards,
                cells_per_side=spec.cells_per_side,
                halo_margin=spec.halo,
                telemetry=telemetry,
                **durability,
                **kwargs,
            )
        if not self._sharded:
            layers = () if telemetry is None else telemetry.layers(0)
            if spec.approx != "off":
                kwargs["certify"] = True
                layers = layers + self._degrade_layers(telemetry)
            return StreamingTCSCServer(
                bbox,
                layers=layers + self._chaos_layers(0),
                **kwargs,
            )
        if spec.approx != "off":
            raise SpecError(
                "approx x sharded streaming is not a supported pairing "
                "yet (the degradation ladder assumes one admission queue)"
            )
        if spec.elastic != "off":
            from repro.elastic import ElasticController, ElasticStreamingServer

            if has_slowdown:
                raise SpecError(
                    "slowdown injection x elastic is not a supported "
                    "pairing yet (an op-budget throttle pinned to one "
                    "core would break migration's state-identity gate)"
                )
            if spec.elastic == "fixed":
                # ``--migrate-at K`` scripts one migration at the K-th
                # epoch boundary; shard/dest resolve to hottest/coldest
                # at fire time.
                controller = ElasticController.fixed(
                    [(spec.migrate_at * spec.epoch_length, None, None)]
                )
            else:
                controller = ElasticController(
                    queue_high=spec.migrate_queue_high,
                    queue_low=spec.migrate_queue_low,
                )
            layer_factory = None
            if telemetry is not None:
                layer_factory = lambda shard: telemetry.layers(shard)
            return ElasticStreamingServer(
                bbox,
                num_executors=spec.shards,
                cells_per_side=spec.cells_per_side,
                halo_margin=spec.halo,
                controller=controller,
                layer_factory=layer_factory,
                recorder=None if telemetry is None else telemetry.recorder,
                **kwargs,
            )
        if telemetry is None and not has_slowdown:
            return ShardedStreamingServer(
                bbox,
                num_shards=spec.shards,
                cells_per_side=spec.cells_per_side,
                halo_margin=spec.halo,
                **kwargs,
            )

        def shard_server(shard, shard_bbox, shard_kwargs):
            layers = () if telemetry is None else telemetry.layers(shard)
            return StreamingTCSCServer(
                shard_bbox,
                layers=layers + self._chaos_layers(shard),
                **shard_kwargs,
            )

        return ShardedStreamingServer(
            bbox,
            num_shards=spec.shards,
            cells_per_side=spec.cells_per_side,
            halo_margin=spec.halo,
            server_factory=shard_server,
            **kwargs,
        )

    def _outcome(self, metrics) -> RunOutcome:
        server = self.server
        if self._sharded:
            counters = tuple(shard.counters for shard in server.servers)
        else:
            counters = server.counters
        return RunOutcome(
            spec=self.spec,
            plan_signature=server.assignment().plan_signature(),
            counters=counters,
            metrics=metrics,
            qualities=dict(metrics.promised_quality),
            report_text=metrics.report(),
            server=server,
            telemetry=self._telemetry,
            certificates=(
                dict(metrics.quality_certificates)
                if self.spec.approx != "off"
                else None
            ),
        )

    def run(self) -> RunOutcome:
        """Drain the trace; crash injection propagates
        :class:`~repro.journal.layer.InjectedCrash` (the write-through
        trace file keeps its flushed prefix and is closed by
        ``abort()`` — ``finish()`` only runs on completed drains)."""
        try:
            metrics = self.server.run(list(self.scenario().events))
        except BaseException:
            if self._telemetry is not None:
                self._telemetry.abort()
            raise
        if self._telemetry is not None:
            if hasattr(metrics, "shard_stats"):
                # Publish the partition shape (ownership counts, halo
                # replication factor) as shard/<i>/* gauges before the
                # trace closes.
                self._telemetry.record_shard_stats(metrics.shard_stats())
            self._telemetry.finish()
        return self._outcome(metrics)


_MODES = {
    "plain": PlainRuntime,
    "batch": BatchRuntime,
    "stream": StreamRuntime,
}


def build_runtime(spec: RunSpec) -> Runtime:
    """Validate ``spec`` and return its composed runtime handle."""
    if not isinstance(spec, RunSpec):
        raise SpecError(
            f"build_runtime expects a RunSpec, got {type(spec).__name__}"
        )
    spec.validate()
    return _MODES[spec.mode](spec)


# ----------------------------------------------------------------------
# Durability re-entry
# ----------------------------------------------------------------------
class RecoveredRuntime:
    """Handle over a journal-recovered serving stack.

    ``kind`` is ``"plain"`` or ``"sharded"``, read off the journal
    directory itself, so recovery never depends on the caller
    repeating the original sharding flags.
    """

    def __init__(self, server, kind: str):
        self.server = server
        self.kind = kind

    @property
    def recovery(self):
        """Per-core :class:`~repro.journal.layer.RecoveryInfo`
        (a list with one entry per shard for sharded deployments)."""
        from repro.journal.layer import journal_layer

        if self.kind == "sharded":
            return [journal_layer(s).recovery for s in self.server.servers]
        return journal_layer(self.server).recovery

    def resume(self, events):
        """Finish the interrupted run against the full original trace;
        returns the stream metrics (byte-identical to an uninterrupted
        run)."""
        from repro.journal.layer import journal_layer
        from repro.journal.sharded import resume_sharded

        if self.kind == "sharded":
            return resume_sharded(self.server, events)
        return journal_layer(self.server).resume_with_trace(events)

    def assignment(self):
        """The recovered deployment's merged plan."""
        return self.server.assignment()


def recover_runtime(
    journal: str | Path,
    *,
    sync: bool = False,
    snapshot_every: int | None = None,
    crash_after_events: int | None = None,
    crash_phase: str = "apply",
) -> RecoveredRuntime:
    """Rebuild a crashed stack from its journal directory alone.

    Whether the journal is sharded is read off the directory
    (``meta.json`` marks a sharded deployment).  Raises
    :class:`~repro.errors.SpecError` when no journal exists there.
    """
    from repro.journal.layer import recover_server
    from repro.journal.sharded import recover_sharded_server
    from repro.journal.wal import journal_kind

    kind = journal_kind(journal)
    if kind is None:
        raise SpecError(
            f"no journal found at {journal} (expected wal.log or a "
            "sharded meta.json)"
        )
    if kind == "sharded":
        server = recover_sharded_server(
            journal,
            sync=sync,
            snapshot_every=snapshot_every,
            crash_after_events=crash_after_events,
            crash_phase=crash_phase,
        )
        return RecoveredRuntime(server, "sharded")
    server = recover_server(
        journal,
        sync=sync,
        snapshot_every=snapshot_every,
        crash_after_events=crash_after_events,
        crash_phase=crash_phase,
    )
    return RecoveredRuntime(server, "plain")
