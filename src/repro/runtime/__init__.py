"""Composable serving runtime: spec-driven layer composition.

Four PRs grew the repo a serving *lattice* — plain, batch, streaming,
sharded, journaled, and their pairings — enumerated as eight server
classes wired by inheritance and hand-threaded kwargs.  This package
collapses the lattice into three orthogonal pieces:

* :class:`RunSpec` (:mod:`repro.runtime.spec`) — one declarative,
  JSON-round-trippable description of a run: workload, solver variant
  (``backend`` / ``search`` / ``use_index``), serving mode
  (``plain | batch | stream``), sharding (``shards`` / ``halo``), and
  durability (``journal`` / ``snapshot_every`` / crash injection).
  Uncomposable pairings fail validation with a typed
  :class:`~repro.errors.SpecError`.
* :class:`~repro.runtime.layers.ServingLayer`
  (:mod:`repro.runtime.layers`) — the seam: capabilities attach to
  the streaming core as ordered layer objects dispatched at the PR-4
  hook points (event consumption, commits, finalization, epoch end,
  run completion) instead of subclassing it.
* :func:`build_runtime` (:mod:`repro.runtime.factory`) — resolves a
  validated spec into the composed stack and returns a handle whose
  ``run()`` yields the three byte-identity artifacts
  (``plan_signature`` / ``metrics`` / ``counters``) the equivalence
  matrix (``python -m repro matrix``) gates on.

Quickstart::

    from repro.runtime import RunSpec, WorkloadSpec, build_runtime

    spec = RunSpec(mode="stream", shards=2,
                   workload=WorkloadSpec(horizon=40, seed=7))
    outcome = build_runtime(spec).run()
    print(outcome.report_text)

The legacy class spellings (``JournaledStreamingServer``,
``JournaledShardedStreamingServer``) keep working as thin deprecation
shims over the same composition.
"""

from repro.runtime.factory import (
    BatchRuntime,
    PlainRuntime,
    RecoveredRuntime,
    RunOutcome,
    Runtime,
    StreamRuntime,
    build_runtime,
    build_serving_solver,
    build_single_task_solver,
    recover_runtime,
)
from repro.runtime.layers import (
    ServingLayer,
    reset_deprecation_warnings,
    warn_deprecated,
)
from repro.runtime.spec import (
    SEARCH_MODES,
    SERVING_MODES,
    RunSpec,
    SolverVariant,
    WorkloadSpec,
)

__all__ = [
    "BatchRuntime",
    "PlainRuntime",
    "RecoveredRuntime",
    "RunOutcome",
    "RunSpec",
    "Runtime",
    "SEARCH_MODES",
    "SERVING_MODES",
    "ServingLayer",
    "SolverVariant",
    "StreamRuntime",
    "WorkloadSpec",
    "build_runtime",
    "build_serving_solver",
    "build_single_task_solver",
    "recover_runtime",
    "reset_deprecation_warnings",
    "warn_deprecated",
]
