"""The layer seam: how capabilities compose onto a serving core.

PR 4 taught :class:`~repro.stream.online_server.StreamingTCSCServer`
five hook points — event consumption, slot commits, session
finalization, epoch boundaries, and run completion.  This module
turns those hooks into a *seam*: a serving core owns an ordered tuple
of :class:`ServingLayer` objects and dispatches every hook through
them, so a capability (durability today; replication, admission
shaping, tracing tomorrow) is an object you *attach* rather than a
subclass you *write*.  The capability lattice that took one class per
pairing (journal x sharded needed its own class in PR 4) collapses to
spec fields resolved by :func:`repro.runtime.build_runtime`.

Hook contract (all optional; the base class is a no-op):

* ``bind(server)`` — called once when the core adopts the layer.
* ``before_event(event, metrics)`` — before an event is applied.  A
  layer may raise here (journal fault injection does) and the event is
  then neither applied nor counted.
* ``after_event(event, metrics)`` — after the event was applied.
* ``before_commit(session, worker_id, gslot, slot, cost)`` — before a
  committed subtask consumes its worker (log-before-apply seam).
* ``before_finalize(session, metrics)`` — before a session retires.
* ``on_epoch_end(metrics, now)`` — after an epoch's assignment rounds.
* ``on_run_complete(metrics)`` — once the trace is drained and
  realized.

Determinism: layers must not perturb solver state or op counters —
the equivalence matrix (``python -m repro matrix``) hard-asserts that
a layered run's ``plan_signature()``, ``StreamMetrics``, and
``OpCounters`` are byte-identical to the bare core's.
"""

from __future__ import annotations

import warnings

__all__ = ["ServingLayer", "warn_deprecated", "reset_deprecation_warnings"]


class ServingLayer:
    """Base class for composable serving capabilities (all no-ops)."""

    def bind(self, server) -> None:
        """Adopt the core server this layer is attached to."""

    def before_event(self, event, metrics) -> None:
        """Called before one drained event is applied."""

    def after_event(self, event, metrics) -> None:
        """Called after one drained event was applied."""

    def before_commit(self, session, worker_id, gslot, slot, cost) -> None:
        """Called before a committed subtask consumes its worker."""

    def before_finalize(self, session, metrics) -> None:
        """Called before a finished session retires."""

    def on_epoch_end(self, metrics, now) -> None:
        """Called after each epoch's assignment rounds."""

    def on_run_complete(self, metrics) -> None:
        """Called once the trace is drained and realized."""


#: Legacy class names already warned about this process (one warning
#: per name, however many shim instances a sweep constructs).
_warned: set[str] = set()


def warn_deprecated(name: str, replacement: str) -> None:
    """Emit one :class:`DeprecationWarning` per legacy name per process."""
    if name in _warned:
        return
    _warned.add(name)
    warnings.warn(
        f"{name} is deprecated; build the equivalent runtime with "
        f"{replacement} (see repro.runtime)",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_deprecation_warnings() -> None:
    """Forget which names warned (tests assert the once-semantics)."""
    _warned.clear()
