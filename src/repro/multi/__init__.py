"""Multi-task assignment (Section IV): MSQM, MMQM, and parallelization.

* :mod:`repro.multi.task_state` — per-task solver state shared by all
  multi-task algorithms (evaluator + live cost provider + optional
  tree index).
* :mod:`repro.multi.msqm` — Problem 2, maximizing the summation
  quality, serial greedy with CELF-style candidate caching.
* :mod:`repro.multi.mmqm` — Problem 3, maximizing the minimum quality.
* :mod:`repro.multi.conflicts` — worker-conflict detection and the
  NN-bound independence graph (Section IV-A.1).
* :mod:`repro.multi.grouping` — group-level parallelization.
* :mod:`repro.multi.scheduler` — task-level parallelization with the
  master thread's Heartbeat / Conflicting / Logging tables (Fig. 5),
  on the virtual-clock simulator and on real threads.
"""

from repro.multi.conflicts import ConflictRecord, build_independence_graph, detect_conflicts
from repro.multi.grouping import GroupLevelParallelSolver
from repro.multi.mmqm import MinQualityGreedy
from repro.multi.msqm import SumQualityGreedy
from repro.multi.result import MultiSolverResult, MultiStep
from repro.multi.scheduler import TaskLevelParallelSolver, ThreadedTaskLevelSolver
from repro.multi.task_state import TaskState

__all__ = [
    "ConflictRecord",
    "GroupLevelParallelSolver",
    "MinQualityGreedy",
    "MultiSolverResult",
    "MultiStep",
    "SumQualityGreedy",
    "TaskLevelParallelSolver",
    "TaskState",
    "ThreadedTaskLevelSolver",
    "build_independence_graph",
    "detect_conflicts",
]
