"""MSQM: multi-task summation-quality maximization (Problem 2).

The serial reference solver applies Algorithm 1's greedy rule across
the whole task set: at every iteration, execute the (task, slot) pair
maximizing ``delta qsum / cost`` under the shared budget.  Because
``qsum`` is submodular and non-decreasing (Lemma 4), the stream
inherits the ``(1 - 1/sqrt(e))`` guarantee.

Two facts make the implementation fast without changing the plan:

* Temporal interpolation never crosses tasks, so executing a subtask
  of task ``i`` leaves every other task's candidate *gains* untouched;
  only *costs* can change, and only for tasks whose cached cheapest
  worker was just consumed (a *worker conflict*).  Each task therefore
  caches its best candidate and recomputes only when (a) it executed
  something itself, (b) it lost its cached worker, or (c) its cached
  cost no longer fits the remaining budget.
* A cached candidate computed under a larger remaining budget is an
  upper bound on the task's current best (the affordable set only
  shrinks), so a lazy max-heap over tasks pops the true global best.

Worker conflicts are detected exactly as the paper describes: the
consuming task takes the contested worker, every other task whose
offer referenced that worker re-offers its next-nearest worker
(``conflict_count`` tallies these events for Fig. 9b/c).
"""

from __future__ import annotations

from repro.core.instrumentation import OpCounters
from repro.engine.registry import WorkerRegistry
from repro.model.assignment import Assignment, AssignmentRecord, Budget
from repro.model.task import TaskSet
from repro.multi.result import MultiSolverResult, MultiStep
from repro.multi.task_state import Candidate, TaskState
from repro.util.heaps import LazyMaxHeap

__all__ = ["SumQualityGreedy"]


class SumQualityGreedy:
    """Serial MSQM greedy over a shared worker registry and budget."""

    def __init__(
        self,
        tasks: TaskSet,
        registry: WorkerRegistry,
        *,
        k: int = 3,
        budget: float,
        ts: int = 4,
        use_index: bool = True,
        gain_strategy: str = "local",
        backend: str = "python",
        counters: OpCounters | None = None,
    ):
        self.tasks = tasks
        self.registry = registry
        self.budget_limit = float(budget)
        self.counters = counters if counters is not None else OpCounters()
        self.states = [
            TaskState(
                task,
                registry,
                k=k,
                ts=ts,
                use_index=use_index,
                gain_strategy=gain_strategy,
                backend=backend,
                counters=self.counters,
            )
            for task in tasks
        ]
        self._by_id = {state.task.task_id: state for state in self.states}

    def solve(self) -> MultiSolverResult:
        """Run the greedy stream to budget exhaustion."""
        budget = Budget(self.budget_limit)
        assignment = Assignment()
        steps: list[MultiStep] = []
        conflicts = 0

        heap = LazyMaxHeap()
        cached: dict[int, Candidate] = {}
        for state in self.states:
            candidate = state.best_candidate(budget.remaining)
            if candidate is not None:
                cached[state.task.task_id] = candidate
                heap.push(
                    candidate.heuristic, state.task.task_id, None
                )

        while heap:
            popped = heap.pop()
            if popped is None:
                break
            _, task_id, _ = popped
            state = self._by_id[task_id]
            candidate = cached.get(task_id)
            if candidate is None:
                continue
            # Stale checks: the cached candidate must still be affordable
            # and its worker still available; otherwise recompute.
            stale = candidate.cost > budget.remaining + 1e-12
            if not stale:
                offer = state.provider.offer(candidate.slot)
                stale = offer is None or offer.worker_id != candidate.worker_id
            if stale:
                candidate = state.best_candidate(budget.remaining)
                if candidate is None:
                    cached.pop(task_id, None)
                    continue
                cached[task_id] = candidate
                heap.push(candidate.heuristic, task_id, None)
                continue
            # The heap guarantees this is the global max (cached values
            # are upper bounds, and this one is exact).
            peek = heap.peek()
            if peek is not None and peek[0] > candidate.heuristic:
                # A fresher candidate overtook us; re-queue at the exact
                # value and let the heap re-decide.
                heap.push(candidate.heuristic, task_id, None)
                continue

            offer = state.execute(candidate.slot)
            budget.charge(candidate.cost)
            global_slot = state.task.global_slot(candidate.slot)
            self.registry.consume(offer.worker_id, global_slot)
            assignment.add(
                AssignmentRecord(task_id, candidate.slot, offer.worker_id, candidate.cost)
            )
            steps.append(
                MultiStep(
                    task_id,
                    candidate.slot,
                    candidate.gain,
                    candidate.cost,
                    candidate.heuristic,
                    offer.worker_id,
                )
            )
            self.counters.iterations += 1

            # Notify competitors: whoever cached this worker conflicts.
            for other in self.states:
                if other.task.task_id == task_id:
                    continue
                lost_slots = other.on_worker_consumed(offer.worker_id, global_slot)
                if lost_slots:
                    conflicts += 1
                    self.counters.conflicts_detected += 1
                    # Their cached candidate is stale only if it sat on a
                    # lost offer; other slots' costs are untouched and
                    # the lost slot's cost can only have increased.
                    prev = cached.get(other.task.task_id)
                    if prev is not None and prev.slot in lost_slots:
                        refreshed = other.best_candidate(budget.remaining)
                        if refreshed is None:
                            cached.pop(other.task.task_id, None)
                            heap.invalidate(other.task.task_id)
                        else:
                            cached[other.task.task_id] = refreshed
                            heap.push(refreshed.heuristic, other.task.task_id, None)

            # Recompute the executing task's next candidate.
            refreshed = state.best_candidate(budget.remaining)
            if refreshed is None:
                cached.pop(task_id, None)
            else:
                cached[task_id] = refreshed
                heap.push(refreshed.heuristic, task_id, None)

        return MultiSolverResult(
            assignment=assignment,
            qualities={state.task.task_id: state.quality for state in self.states},
            spent=budget.spent,
            counters=self.counters,
            steps=steps,
            conflict_count=conflicts,
        )
