"""Group-level parallelization of MSQM (Section IV-A.1).

Tasks are partitioned into independent groups (connected components of
the worker-conflict graph); each group runs the serial MSQM greedy as
one indivisible unit of work, and groups are spread over the cores of
a virtual-clock cluster.  As the paper observes, skewed task
distributions produce large connected groups, so the makespan is
dominated by the biggest group and the speedup saturates well below
the core count — the motivation for the finer-grained task-level
framework.

The shared budget is split across groups proportionally to their total
subtask count (groups are independent, so no global greedy order
exists to arbitrate budget between them).
"""

from __future__ import annotations

from repro.core.instrumentation import OpCounters
from repro.engine.registry import WorkerRegistry
from repro.model.assignment import Assignment
from repro.model.task import TaskSet
from repro.multi.conflicts import independent_groups
from repro.multi.msqm import SumQualityGreedy
from repro.multi.result import MultiSolverResult
from repro.parallel.simcluster import SimCluster, WorkItem

__all__ = ["GroupLevelParallelSolver"]


class GroupLevelParallelSolver:
    """MSQM via independent task groups on simulated cores."""

    def __init__(
        self,
        tasks: TaskSet,
        registry: WorkerRegistry,
        *,
        k: int = 3,
        budget: float,
        ts: int = 4,
        cores: int = 10,
        use_index: bool = True,
        max_graph_iterations: int = 20,
    ):
        self.tasks = tasks
        self.registry = registry
        self.k = k
        self.budget_limit = float(budget)
        self.ts = ts
        self.cores = cores
        self.use_index = use_index
        self.max_graph_iterations = max_graph_iterations

    def solve(self) -> MultiSolverResult:
        """Group, solve each group serially, account the makespan."""
        groups = independent_groups(
            self.tasks, self.registry, max_iterations=self.max_graph_iterations
        )
        total_slots = self.tasks.total_slots
        by_id = {task.task_id: task for task in self.tasks}

        assignment = Assignment()
        qualities: dict[int, float] = {}
        counters = OpCounters()
        steps = []
        conflicts = 0
        spent = 0.0
        group_items: list[list[WorkItem]] = []

        for group in groups:
            group_tasks = TaskSet([by_id[tid] for tid in group])
            share = sum(t.num_slots for t in group_tasks) / total_slots
            group_counters = OpCounters()
            solver = SumQualityGreedy(
                group_tasks,
                self.registry,
                k=self.k,
                budget=self.budget_limit * share,
                ts=self.ts,
                use_index=self.use_index,
                counters=group_counters,
            )
            result = solver.solve()
            for record in result.assignment:
                assignment.add(record)
            qualities.update(result.qualities)
            steps.extend(result.steps)
            conflicts += result.conflict_count
            spent += result.spent
            counters.merge(group_counters)
            group_items.append(
                [WorkItem(owner=tuple(group), cost=group_counters.virtual_cost())]
            )

        cluster = SimCluster(self.cores)
        cluster.run_partitions(group_items)
        return MultiSolverResult(
            assignment=assignment,
            qualities=qualities,
            spent=spent,
            counters=counters,
            steps=steps,
            virtual_time=cluster.clock,
            conflict_count=conflicts,
        )

    def group_sizes(self) -> list[int]:
        """Sizes of the independent groups (diagnostics for Fig. 9)."""
        return [
            len(group)
            for group in independent_groups(
                self.tasks, self.registry, max_iterations=self.max_graph_iterations
            )
        ]
