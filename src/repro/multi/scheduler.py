"""Task-level parallelization (Section IV-A.2, Figure 5).

Every task runs as a *worker thread* computing its own next-best
candidate; the *master thread* maintains the Heartbeat, Conflicting,
and Logging tables and grants executions.  The grant rule is the
paper's: the master keeps the heartbeat table sorted descendingly and
lets a ready thread execute only when no other live thread's last
reported heuristic exceeds it.

Because per-task heuristic values are **non-increasing over time**
(candidate gains are submodular in the task's own executed set, are
untouched by other tasks' executions, and worker costs only grow as
workers are consumed), a stale heartbeat is always an upper bound on
the thread's next value.  Granting against stale heartbeats is
therefore *exactly* the serial greedy order: the parallel plan
provably coincides with :class:`~repro.multi.msqm.SumQualityGreedy`'s
plan — the determinism the paper claims.  (With heterogeneous worker
reliabilities a conflict can swap in a more reliable worker and raise
a heuristic; the plan may then deviate slightly, as the paper's
"hard to strictly control" caveat admits.)

Timing runs on a deterministic discrete-event simulation: candidate
computations are quanta whose durations come from the per-task
operation counters, quanta are multiplexed onto ``cores`` simulated
cores, and every master interaction (heartbeat report, grant,
conflict notification) charges a serial message cost.  The ``priority``
flag reproduces Fig. 9(f): when cores are contended, pending quanta
are scheduled by last-known heuristic value (descending, with fresh
threads at infinity "to avoid thread starvation") instead of FIFO, so
the thread whose recompute blocks the next grant runs first.

:class:`ThreadedTaskLevelSolver` is the real-``threading`` counterpart
used by the functional tests: stale threads recompute concurrently on
a thread pool, the master grants serially; same plan, real threads.
"""

from __future__ import annotations

import heapq
import itertools

from repro.core.instrumentation import OpCounters
from repro.engine.registry import WorkerRegistry
from repro.errors import SchedulingError
from repro.model.assignment import Assignment, AssignmentRecord, Budget
from repro.model.task import TaskSet
from repro.multi.result import MultiSolverResult, MultiStep
from repro.multi.tables import ConflictingTable, HeartbeatTable, LoggingTable
from repro.multi.task_state import Candidate, TaskState
from repro.par.executor import Executor

__all__ = ["TaskLevelParallelSolver", "ThreadedTaskLevelSolver"]

_INF = float("inf")

# Thread lifecycle states.
_PENDING = "pending"      # needs a core to (re)compute its candidate
_COMPUTING = "computing"  # quantum in flight on a core
_READY = "ready"          # candidate reported, waiting for a grant
_DONE = "done"            # no executable candidate remains


class _Thread:
    """Simulation-side view of one task's worker thread."""

    __slots__ = ("state", "status", "candidate", "dirty", "pending_since")

    def __init__(self, state: TaskState):
        self.state = state
        self.status = _PENDING
        self.candidate: Candidate | None = None
        self.dirty = False          # invalidated while computing
        self.pending_since = 0.0


class TaskLevelParallelSolver:
    """Figure 5's framework on the virtual-clock simulator."""

    def __init__(
        self,
        tasks: TaskSet,
        registry: WorkerRegistry,
        *,
        k: int = 3,
        budget: float,
        ts: int = 4,
        cores: int = 10,
        priority: bool = True,
        grant_mode: str = "pipelined",
        use_index: bool = True,
        per_message_cost: float = 1.0,
        quantum_overhead: float = 1.0,
        scheduling_slice: float = 25.0,
    ):
        """``grant_mode`` selects the master's admission policy:

        * ``"serial-equivalent"`` — a ready thread executes only when
          no live thread's last heartbeat exceeds its heuristic.  The
          plan provably equals the serial greedy's, at the price of a
          per-iteration synchronization (speedup comes from the initial
          fan-out and from conflicted recomputes overlapping).
        * ``"pipelined"`` (default) — ready threads execute as soon as
          the master clears their worker; the global greedy order is
          approximated by the priority scheduling of recompute quanta
          (the paper's admission: "it is unavoidable that threads with
          lower heuristic values are executed earlier than those with
          higher values ... mostly alleviated with our priority
          settings").  Near-linear scaling with cores, quality within a
          hair of serial.
        """
        self.tasks = tasks
        self.registry = registry
        self.budget_limit = float(budget)
        self.cores = cores
        self.priority = priority
        self.per_message_cost = per_message_cost
        self.quantum_overhead = quantum_overhead
        #: Models the OS dispatch latency a woken thread pays before it
        #: reaches a core.  With dynamic priorities (the paper's step 4)
        #: a thread only waits behind *higher-priority* live threads;
        #: without them it waits a full round-robin cycle over all live
        #: threads — the mechanism behind Fig. 9(f)'s gap.
        self.scheduling_slice = scheduling_slice
        if grant_mode not in ("pipelined", "serial-equivalent"):
            raise SchedulingError(f"unknown grant_mode {grant_mode!r}")
        self.grant_mode = grant_mode
        if cores < 1:
            raise SchedulingError(f"cores must be >= 1, got {cores}")
        self.states = [
            TaskState(task, registry, k=k, ts=ts, use_index=use_index, counters=OpCounters())
            for task in tasks
        ]
        self.heartbeats = HeartbeatTable()
        self.log = LoggingTable()
        self.conflicting = ConflictingTable()

    # ------------------------------------------------------------------
    # Simulation driver
    # ------------------------------------------------------------------
    def solve(self) -> MultiSolverResult:
        """Run the simulated parallel assignment.

        In serial-equivalent mode all threads draw from the shared
        budget and the plan equals the serial greedy's.  In pipelined
        mode the budget is pre-split equally across tasks (the only
        way a concurrent system can enforce Problem 2's knapsack
        constraint without serializing every grant), so each thread's
        plan is its own deterministic greedy and quality is
        essentially core-count independent.
        """
        budget = Budget(self.budget_limit)
        per_task_budgets: dict[int, Budget] | None = None
        if self.grant_mode == "pipelined":
            share = self.budget_limit / max(len(self.states), 1)
            per_task_budgets = {
                state.task.task_id: Budget(share) for state in self.states
            }

        def remaining_for(task_id: int) -> float:
            if per_task_budgets is not None:
                return per_task_budgets[task_id].remaining
            return budget.remaining

        def charge(task_id: int, cost: float) -> None:
            budget.charge(cost)
            if per_task_budgets is not None:
                per_task_budgets[task_id].charge(cost)

        assignment = Assignment()
        steps: list[MultiStep] = []
        conflicts = 0
        messages = 0

        threads = {state.task.task_id: _Thread(state) for state in self.states}
        core_free = [0.0] * self.cores
        heapq.heapify(core_free)
        events: list[tuple[float, int, int]] = []  # (time, seq, task_id)
        seq = itertools.count()
        now = 0.0

        def schedule_pending(current: float) -> None:
            """Place all PENDING threads onto cores (priority order)."""
            pending = [t for t in threads.values() if t.status == _PENDING]
            if self.priority:
                # Last-known heuristic descending; never-reported = inf.
                def key(thread: _Thread):
                    beat = self.heartbeats.value(thread.state.task.task_id)
                    return (-(beat if beat is not None else _INF), thread.state.task.task_id)
            else:
                def key(thread: _Thread):
                    return (thread.pending_since, thread.state.task.task_id)
            live = sum(1 for t in threads.values() if t.status != _DONE)
            for thread in sorted(pending, key=key):
                task_id = thread.state.task.task_id
                before = thread.state.counters.snapshot()
                thread.candidate = thread.state.best_candidate(remaining_for(task_id))
                work = thread.state.counters.delta_since(before).virtual_cost()
                duration = work + self.quantum_overhead
                # OS dispatch latency: with priorities, wait only behind
                # strictly higher-priority live threads; without them,
                # wait a round-robin cycle over every live thread.
                if self.priority:
                    my_beat = self.heartbeats.value(task_id)
                    mine = _INF if my_beat is None else my_beat
                    ahead = 0
                    for t in threads.values():
                        if t.status == _DONE or t.state.task.task_id == task_id:
                            continue
                        beat = self.heartbeats.value(t.state.task.task_id)
                        if (_INF if beat is None else beat) > mine:
                            ahead += 1
                else:
                    ahead = live
                dispatch_delay = self.scheduling_slice * ahead / self.cores
                free = heapq.heappop(core_free)
                start = max(free, max(current, thread.pending_since) + dispatch_delay)
                end = start + duration
                heapq.heappush(core_free, end)
                heapq.heappush(events, (end, next(seq), task_id))
                thread.status = _COMPUTING
                thread.dirty = False

        def blockers_above(value: float) -> bool:
            """Any live non-ready thread whose last heartbeat (or inf if
            never reported) exceeds `value`?  Only consulted in
            serial-equivalent mode; the pipelined master admits ready
            threads straight away."""
            if self.grant_mode == "pipelined":
                return False
            for thread in threads.values():
                if thread.status in (_PENDING, _COMPUTING):
                    beat = self.heartbeats.value(thread.state.task.task_id)
                    if beat is None or beat > value:
                        return True
            return False

        def try_grants(current: float) -> None:
            nonlocal conflicts, messages
            while True:
                ready = [t for t in threads.values() if t.status == _READY]
                if not ready:
                    return
                best = min(
                    ready,
                    key=lambda t: (-t.candidate.heuristic, t.state.task.task_id),
                )
                if blockers_above(best.candidate.heuristic):
                    return
                candidate = best.candidate
                state = best.state
                task_id = state.task.task_id
                if candidate.cost > remaining_for(task_id) + 1e-12:
                    # Budget shrank since the candidate was computed:
                    # recompute under the current remaining budget.  The
                    # stale heartbeat stays as an upper bound, blocking
                    # other grants exactly as the serial order requires.
                    best.status = _PENDING
                    best.pending_since = current
                    best.candidate = None
                    schedule_pending(current)
                    return
                offer = state.execute(candidate.slot)
                charge(task_id, candidate.cost)
                global_slot = state.task.global_slot(candidate.slot)
                self.registry.consume(offer.worker_id, global_slot)
                messages += 1  # the grant
                assignment.add(
                    AssignmentRecord(task_id, candidate.slot, offer.worker_id, candidate.cost)
                )
                steps.append(
                    MultiStep(
                        task_id,
                        candidate.slot,
                        candidate.gain,
                        candidate.cost,
                        candidate.heuristic,
                        offer.worker_id,
                    )
                )
                # Conflict propagation.
                contenders = [task_id]
                for other in threads.values():
                    other_state = other.state
                    if other_state.task.task_id == task_id:
                        continue
                    lost = other_state.on_worker_consumed(offer.worker_id, global_slot)
                    if not lost:
                        continue
                    conflicts += 1
                    messages += 1  # conflict report to the master
                    contenders.append(other_state.task.task_id)
                    if other.status == _READY and other.candidate.slot in lost:
                        # Recompute with the next-nearest worker.  The
                        # stale heartbeat is kept: heuristics only ever
                        # decrease, so it remains a sound upper bound.
                        other.status = _PENDING
                        other.pending_since = current
                        other.candidate = None
                    elif other.status == _COMPUTING:
                        other.dirty = True
                if len(contenders) > 1:
                    self.conflicting.record(
                        tuple(sorted(contenders)),
                        global_slot,
                        offer.worker_id,
                        self.conflicting.bump_rank(global_slot) + 1,
                        current,
                    )
                # The executor computes its next candidate; its stale
                # heartbeat (the just-consumed maximum) keeps blocking
                # grants until the new value arrives — which is exactly
                # the serial greedy's information flow.
                best.status = _PENDING
                best.pending_since = current
                best.candidate = None
                schedule_pending(current)

        schedule_pending(now)
        while events:
            now, _, task_id = heapq.heappop(events)
            thread = threads[task_id]
            if thread.status != _COMPUTING:
                raise SchedulingError(
                    f"completion event for thread in state {thread.status}"
                )
            if thread.dirty:
                thread.status = _PENDING
                thread.pending_since = now
                thread.candidate = None
                schedule_pending(now)
                continue
            if thread.candidate is None:
                thread.status = _DONE
                self.heartbeats.remove(task_id)
            else:
                thread.status = _READY
                messages += 1  # heartbeat report
                self.heartbeats.report(task_id, thread.candidate.heuristic, now)
                self.log.log(now, task_id, thread.candidate.heuristic)
            try_grants(now)

        if any(t.status not in (_DONE,) for t in threads.values()):
            raise SchedulingError("simulation ended with live threads")

        counters = OpCounters()
        for state in self.states:
            counters.merge(state.counters)
        counters.iterations = len(steps)
        counters.conflicts_detected = conflicts
        virtual_time = now + messages * self.per_message_cost
        return MultiSolverResult(
            assignment=assignment,
            qualities={state.task.task_id: state.quality for state in self.states},
            spent=budget.spent,
            counters=counters,
            steps=steps,
            virtual_time=virtual_time,
            conflict_count=conflicts,
        )


class ThreadedTaskLevelSolver:
    """The same master/worker protocol on real ``threading`` threads.

    Each round, every stale task recomputes its candidate concurrently
    on a thread :class:`~repro.par.executor.Executor`; the master then
    grants the globally best candidate, consumes the worker, and marks
    the executor plus conflicted tasks stale.  The produced plan
    equals the serial plan (same argument as above).
    """

    def __init__(
        self,
        tasks: TaskSet,
        registry: WorkerRegistry,
        *,
        k: int = 3,
        budget: float,
        ts: int = 4,
        threads: int = 4,
        use_index: bool = True,
    ):
        self.tasks = tasks
        self.registry = registry
        self.budget_limit = float(budget)
        if threads < 1:
            raise SchedulingError(f"threads must be >= 1, got {threads}")
        self.pool = Executor("thread", max_workers=threads)
        self.states = [
            TaskState(task, registry, k=k, ts=ts, use_index=use_index, counters=OpCounters())
            for task in tasks
        ]

    def solve(self) -> MultiSolverResult:
        """Run rounds of parallel recompute + serial grant."""
        budget = Budget(self.budget_limit)
        assignment = Assignment()
        steps: list[MultiStep] = []
        conflicts = 0
        candidates: dict[int, Candidate | None] = {}
        stale = {state.task.task_id: state for state in self.states}

        while True:
            if stale:
                remaining = budget.remaining
                jobs = {
                    task_id: (lambda s=state, r=remaining: s.best_candidate(r))
                    for task_id, state in stale.items()
                }
                results = self.pool.run_jobs(jobs)
                candidates.update(results)
                stale = {}
            live = [
                (candidate, task_id)
                for task_id, candidate in candidates.items()
                if candidate is not None
            ]
            if not live:
                break
            candidate, task_id = min(live, key=lambda it: (-it[0].heuristic, it[1]))
            state = next(s for s in self.states if s.task.task_id == task_id)
            if candidate.cost > budget.remaining + 1e-12:
                stale[task_id] = state
                candidates[task_id] = None
                continue
            offer = state.execute(candidate.slot)
            budget.charge(candidate.cost)
            global_slot = state.task.global_slot(candidate.slot)
            self.registry.consume(offer.worker_id, global_slot)
            assignment.add(
                AssignmentRecord(task_id, candidate.slot, offer.worker_id, candidate.cost)
            )
            steps.append(
                MultiStep(
                    task_id, candidate.slot, candidate.gain, candidate.cost,
                    candidate.heuristic, offer.worker_id,
                )
            )
            stale[task_id] = state
            candidates[task_id] = None
            for other in self.states:
                if other.task.task_id == task_id:
                    continue
                lost = other.on_worker_consumed(offer.worker_id, global_slot)
                if lost:
                    conflicts += 1
                    prev = candidates.get(other.task.task_id)
                    if prev is not None and prev.slot in lost:
                        stale[other.task.task_id] = other
                        candidates[other.task.task_id] = None

        counters = OpCounters()
        for state in self.states:
            counters.merge(state.counters)
        counters.iterations = len(steps)
        counters.conflicts_detected = conflicts
        return MultiSolverResult(
            assignment=assignment,
            qualities={state.task.task_id: state.quality for state in self.states},
            spent=budget.spent,
            counters=counters,
            steps=steps,
            conflict_count=conflicts,
        )
