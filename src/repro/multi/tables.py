"""The master thread's bookkeeping tables (Figure 5).

* :class:`HeartbeatTable` — the latest heuristic value each worker
  thread reported, with its report time.
* :class:`LoggingTable` — the append-only history of heartbeats (the
  paper's trace of the Heartbeat table).
* :class:`ConflictingTable` — records of contested workers: the
  competing task set, the time slot, and the NN rank currently at
  stake ("so that [the losers] would compete for the worker with the
  2nd lowest cost next time").
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["HeartbeatTable", "LoggingTable", "ConflictingTable", "ConflictEntry"]


@dataclass(frozen=True, slots=True)
class ConflictEntry:
    """One row of the Conflicting Table."""

    task_ids: tuple[int, ...]
    global_slot: int
    worker_id: int
    rank: int
    time: float


class HeartbeatTable:
    """task_id -> (last reported heuristic, report time)."""

    def __init__(self):
        self._beats: dict[int, tuple[float, float]] = {}

    def report(self, task_id: int, heuristic: float, time: float) -> None:
        """Record a heartbeat."""
        self._beats[task_id] = (heuristic, time)

    def remove(self, task_id: int) -> None:
        """Forget a finished thread."""
        self._beats.pop(task_id, None)

    def value(self, task_id: int) -> float | None:
        """Last reported heuristic, or None if never reported."""
        beat = self._beats.get(task_id)
        return None if beat is None else beat[0]

    def descending(self) -> list[tuple[int, float]]:
        """(task_id, heuristic) sorted by heuristic descending —
        the master's sorted view driving grant decisions."""
        return sorted(
            ((tid, beat[0]) for tid, beat in self._beats.items()),
            key=lambda item: (-item[1], item[0]),
        )

    def __len__(self) -> int:
        return len(self._beats)


class LoggingTable:
    """Historical trace of heartbeat reports."""

    def __init__(self):
        self.entries: list[tuple[float, int, float]] = []  # (time, task, heuristic)

    def log(self, time: float, task_id: int, heuristic: float) -> None:
        """Append one heartbeat to the trace."""
        self.entries.append((time, task_id, heuristic))

    def for_task(self, task_id: int) -> list[tuple[float, float]]:
        """(time, heuristic) history of one task."""
        return [(t, h) for t, tid, h in self.entries if tid == task_id]

    def __len__(self) -> int:
        return len(self.entries)


@dataclass(slots=True)
class ConflictingTable:
    """Rows describing contested workers and the current rank at stake."""

    entries: list[ConflictEntry] = field(default_factory=list)

    def record(
        self,
        task_ids: tuple[int, ...],
        global_slot: int,
        worker_id: int,
        rank: int,
        time: float,
    ) -> None:
        """Store one conflict event."""
        self.entries.append(ConflictEntry(task_ids, global_slot, worker_id, rank, time))

    def __len__(self) -> int:
        return len(self.entries)

    def bump_rank(self, global_slot: int) -> int:
        """Next NN rank to compete for at a slot (1 + times contested)."""
        return 1 + sum(1 for e in self.entries if e.global_slot == global_slot)
