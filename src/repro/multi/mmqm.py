"""MMQM: multi-task minimum-quality maximization (Problem 3).

``qmin`` is submodular and non-decreasing (Lemma 5), so the paper's
solver "iteratively execut[es] the selected subtask from the task
yielding the minimum quality", with the subtask selection inside that
task following Algorithm 1's heuristic rule.  A min-heap over task
qualities retrieves the weakest task in ``O(log |T|)``.

Subtasks execute strictly sequentially, so — as the paper notes —
there are no worker-conflict races; workers are still consumed from
the shared registry, so a later task may pay a higher cost for a slot
whose nearest worker an earlier execution took.

Tasks that cannot improve any further (no affordable candidate) are
parked: improving anyone else cannot raise ``qmin`` past a parked
task, but the remaining budget is still spent greedily on the weakest
improvable task, which is the sensible (and deterministic) completion
of the paper's loop.
"""

from __future__ import annotations

import heapq

from repro.core.instrumentation import OpCounters
from repro.engine.registry import WorkerRegistry
from repro.model.assignment import Assignment, AssignmentRecord, Budget
from repro.model.task import TaskSet
from repro.multi.result import MultiSolverResult, MultiStep
from repro.multi.task_state import TaskState

__all__ = ["MinQualityGreedy"]


class MinQualityGreedy:
    """MMQM greedy: always strengthen the currently weakest task."""

    def __init__(
        self,
        tasks: TaskSet,
        registry: WorkerRegistry,
        *,
        k: int = 3,
        budget: float,
        ts: int = 4,
        use_index: bool = True,
        gain_strategy: str = "local",
        backend: str = "python",
        counters: OpCounters | None = None,
    ):
        self.tasks = tasks
        self.registry = registry
        self.budget_limit = float(budget)
        self.counters = counters if counters is not None else OpCounters()
        self.states = [
            TaskState(
                task,
                registry,
                k=k,
                ts=ts,
                use_index=use_index,
                gain_strategy=gain_strategy,
                backend=backend,
                counters=self.counters,
            )
            for task in tasks
        ]
        self._by_id = {state.task.task_id: state for state in self.states}

    def solve(self) -> MultiSolverResult:
        """Run the min-quality greedy to budget exhaustion."""
        budget = Budget(self.budget_limit)
        assignment = Assignment()
        steps: list[MultiStep] = []
        conflicts = 0

        # Min-heap of (quality, task_id); qualities only grow, so stale
        # entries are skipped by comparing against the live value.
        heap = [(state.quality, state.task.task_id) for state in self.states]
        heapq.heapify(heap)
        parked: set[int] = set()

        while heap:
            quality, task_id = heapq.heappop(heap)
            state = self._by_id[task_id]
            if task_id in parked:
                continue
            if quality != state.quality:
                # Stale entry; reinsert at the live quality.
                heapq.heappush(heap, (state.quality, task_id))
                continue
            candidate = state.best_candidate(budget.remaining)
            if candidate is None:
                parked.add(task_id)
                continue
            offer = state.execute(candidate.slot)
            budget.charge(candidate.cost)
            global_slot = state.task.global_slot(candidate.slot)
            self.registry.consume(offer.worker_id, global_slot)
            assignment.add(
                AssignmentRecord(task_id, candidate.slot, offer.worker_id, candidate.cost)
            )
            steps.append(
                MultiStep(
                    task_id,
                    candidate.slot,
                    candidate.gain,
                    candidate.cost,
                    candidate.heuristic,
                    offer.worker_id,
                )
            )
            self.counters.iterations += 1
            # Sequential execution: competitors simply observe the
            # consumption next time they query an offer.
            for other in self.states:
                if other.task.task_id != task_id and other.on_worker_consumed(
                    offer.worker_id, global_slot
                ):
                    conflicts += 1
                    self.counters.conflicts_detected += 1
            heapq.heappush(heap, (state.quality, task_id))

        return MultiSolverResult(
            assignment=assignment,
            qualities={state.task.task_id: state.quality for state in self.states},
            spent=budget.spent,
            counters=self.counters,
            steps=steps,
            conflict_count=conflicts,
        )
