"""Worker-conflict detection and the independence graph (Section IV-A.1).

Two tasks *conflict* when they compete for the same worker at the same
time slot — both would pick that worker as their cheapest option.  The
paper resolves multi-task parallelization around this relation:

* :func:`detect_conflicts` finds rank-1 conflicts (shared nearest
  workers), the Figure 4(a) situation.
* :func:`build_independence_graph` runs the *gradual NN-bound
  expansion* of Figure 4(c-e): a task of degree ``d`` in the evolving
  graph must consider its ``(d+1)`` nearest workers (the ladder it may
  be pushed down by conflicts), which can reveal further conflicts;
  the process repeats until the edge set is stable.

Connected components of the resulting graph are *independent groups*:
tasks in different groups can never compete for a worker, so their
optimizations may run on different cores with no coordination.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.registry import WorkerRegistry
from repro.errors import ConfigurationError
from repro.model.task import TaskSet
from repro.util.dsu import DisjointSetUnion

__all__ = ["ConflictRecord", "detect_conflicts", "build_independence_graph", "independent_groups"]


@dataclass(frozen=True, slots=True)
class ConflictRecord:
    """One contested (worker, slot) pair, as stored in the Conflicting
    Table: the competing tasks, the slot, and the NN rank at stake."""

    task_ids: tuple[int, ...]
    global_slot: int
    worker_id: int
    rank: int


def detect_conflicts(tasks: TaskSet, registry: WorkerRegistry) -> list[ConflictRecord]:
    """Rank-1 conflicts: tasks sharing a cheapest worker at a slot."""
    claims: dict[tuple[int, int], list[int]] = {}
    for task in tasks:
        for local in task.slots:
            global_slot = task.global_slot(local)
            hit = registry.nearest_available(task.loc, global_slot)
            if hit is None:
                continue
            worker, _ = hit
            claims.setdefault((global_slot, worker.worker_id), []).append(task.task_id)
    records = []
    for (global_slot, worker_id), claimants in sorted(claims.items()):
        unique = tuple(sorted(set(claimants)))
        if len(unique) > 1:
            records.append(ConflictRecord(unique, global_slot, worker_id, rank=1))
    return records


def build_independence_graph(
    tasks: TaskSet,
    registry: WorkerRegistry,
    *,
    max_iterations: int = 20,
) -> tuple[set[tuple[int, int]], dict[int, int]]:
    """Gradual NN-bound expansion; returns ``(edges, final ranks)``.

    ``edges`` holds unordered task-id pairs ``(a, b)`` with ``a < b``;
    ``ranks[t]`` is the NN depth task ``t`` ended up needing (its
    degree plus one, per the paper's rule).  ``max_iterations`` caps
    pathological cascades; stopping early only *under*-connects the
    graph, which is safe because the group-level solver still executes
    against the shared registry (grouping affects the timing model,
    never correctness).
    """
    if max_iterations < 1:
        raise ConfigurationError(f"max_iterations must be >= 1, got {max_iterations}")
    task_ids = [task.task_id for task in tasks]
    ranks: dict[int, int] = {tid: 1 for tid in task_ids}
    edges: set[tuple[int, int]] = set()
    # Cache: (task_id, global_slot) -> list of worker ids by rank.
    nn_cache: dict[tuple[int, int], list[int]] = {}

    def workers_within_rank(task, rank: int) -> list[tuple[int, int]]:
        """(global_slot, worker_id) pairs within the task's rank bound."""
        out = []
        for local in task.slots:
            global_slot = task.global_slot(local)
            key = (task.task_id, global_slot)
            cached = nn_cache.get(key)
            if cached is None or len(cached) < rank:
                hits = registry.k_nearest_available(task.loc, global_slot, rank)
                cached = [worker.worker_id for worker, _ in hits]
                nn_cache[key] = cached
            for worker_id in cached[:rank]:
                out.append((global_slot, worker_id))
        return out

    for _ in range(max_iterations):
        claims: dict[tuple[int, int], set[int]] = {}
        for task in tasks:
            for claim in workers_within_rank(task, ranks[task.task_id]):
                claims.setdefault(claim, set()).add(task.task_id)
        new_edges: set[tuple[int, int]] = set()
        for claimants in claims.values():
            if len(claimants) < 2:
                continue
            ordered = sorted(claimants)
            for i, a in enumerate(ordered):
                for b in ordered[i + 1 :]:
                    new_edges.add((a, b))
        if new_edges <= edges:
            break
        edges |= new_edges
        degree: dict[int, int] = {tid: 0 for tid in task_ids}
        for a, b in edges:
            degree[a] += 1
            degree[b] += 1
        ranks = {tid: degree[tid] + 1 for tid in task_ids}
    return edges, ranks


def independent_groups(
    tasks: TaskSet,
    registry: WorkerRegistry,
    *,
    max_iterations: int = 20,
) -> list[list[int]]:
    """Connected components of the independence graph (sorted task ids)."""
    edges, _ = build_independence_graph(tasks, registry, max_iterations=max_iterations)
    dsu = DisjointSetUnion(task.task_id for task in tasks)
    for a, b in edges:
        dsu.union(a, b)
    groups = [sorted(group) for group in dsu.groups()]
    groups.sort(key=lambda g: g[0])
    return groups
