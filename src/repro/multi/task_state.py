"""Per-task solver state for the multi-task algorithms.

A :class:`TaskState` bundles one task's quality evaluator, its live
cost provider (offers over *remaining* workers), and — in the indexed
configuration — its tree index.  All multi-task solvers operate on a
list of these, differing only in which task they let move next.
"""

from __future__ import annotations

from repro.core.evaluator import TemporalQualityEvaluator
from repro.core.instrumentation import OpCounters
from repro.core.tree_index import COST_EPSILON, TreeIndex
from repro.engine.costs import DynamicCostProvider, SlotOffer
from repro.engine.registry import WorkerRegistry
from repro.errors import ConfigurationError
from repro.model.task import Task

__all__ = ["Candidate", "TaskState"]


class Candidate:
    """A task's current best executable subtask."""

    __slots__ = ("task_id", "slot", "gain", "cost", "heuristic", "worker_id")

    def __init__(self, task_id, slot, gain, cost, heuristic, worker_id):
        self.task_id = task_id
        self.slot = slot
        self.gain = gain
        self.cost = cost
        self.heuristic = heuristic
        self.worker_id = worker_id

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"Candidate(task={self.task_id}, slot={self.slot}, "
            f"h={self.heuristic:.4g}, cost={self.cost:.4g}, worker={self.worker_id})"
        )


class TaskState:
    """Evaluator + cost provider (+ index) for one task in a multi-task run."""

    def __init__(
        self,
        task: Task,
        registry: WorkerRegistry,
        *,
        k: int = 3,
        ts: int = 4,
        use_index: bool = True,
        gain_strategy: str = "local",
        backend: str = "python",
        counters: OpCounters | None = None,
    ):
        if gain_strategy not in ("full", "local"):
            raise ConfigurationError(f"unknown gain_strategy {gain_strategy!r}")
        self.task = task
        self.counters = counters if counters is not None else OpCounters()
        self.provider = DynamicCostProvider(task, registry, counters=self.counters)
        self.ev = TemporalQualityEvaluator(
            task.num_slots, k, counters=self.counters, backend=backend
        )
        self.gain_strategy = gain_strategy
        self.index: TreeIndex | None = None
        if use_index:
            self.index = TreeIndex(self.ev, self.provider, ts=ts, counters=self.counters)

    @property
    def quality(self) -> float:
        """Current q(tau) of this task."""
        return self.ev.quality

    # ------------------------------------------------------------------
    # Candidate search
    # ------------------------------------------------------------------
    def best_candidate(self, remaining: float) -> Candidate | None:
        """This task's best executable subtask under the remaining budget."""
        if self.index is not None:
            best = self.index.find_best(remaining)
            if best is None:
                return None
            offer = self.provider.offer(best.slot)
            return Candidate(
                self.task.task_id, best.slot, best.gain, best.cost, best.heuristic, offer.worker_id
            )
        return self._best_by_enumeration(remaining)

    def _best_by_enumeration(self, remaining: float) -> Candidate | None:
        ev = self.ev
        best: Candidate | None = None
        candidates = 0
        for slot in self.task.slots:
            if ev.is_executed(slot):
                continue
            offer = self.provider.offer(slot)
            if offer is None:
                continue
            candidates += 1
            if offer.cost > remaining + 1e-12:
                continue
            if self.gain_strategy == "full":
                gain = ev.gain_full_rescan(slot, offer.reliability)
            else:
                gain = ev.gain_if_executed(slot, offer.reliability)
            if gain <= 0.0:
                continue
            heuristic = gain / max(offer.cost, COST_EPSILON)
            if (
                best is None
                or heuristic > best.heuristic
                or (heuristic == best.heuristic and slot < best.slot)
            ):
                best = Candidate(
                    self.task.task_id, slot, gain, offer.cost, heuristic, offer.worker_id
                )
        self.counters.candidates_total += candidates
        return best

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def execute(self, slot: int) -> SlotOffer:
        """Commit the execution of ``slot`` with its current offer.

        Returns the offer consumed; the caller is responsible for
        consuming the worker in the shared registry (so competing
        tasks observe the conflict) and for charging the budget.
        """
        offer = self.provider.offer(slot)
        if offer is None:
            raise ConfigurationError(
                f"task {self.task.task_id}: slot {slot} has no available worker"
            )
        window = self.ev.affected_window(slot)
        self.ev.execute(slot, offer.reliability)
        if self.index is not None:
            self.index.refresh_range(*window)
        return offer

    def on_worker_consumed(self, worker_id: int, global_slot: int) -> list[int]:
        """React to a worker being consumed anywhere in the system.

        Returns the local slots whose cached offers were invalidated —
        non-empty means this task *conflicted* with the consumer and
        now sees its next-nearest worker for those slots.
        """
        invalidated = self.provider.invalidate_worker(worker_id, global_slot)
        if invalidated and self.index is not None:
            for local in invalidated:
                self.index.refresh_range(local, local)
        return invalidated
