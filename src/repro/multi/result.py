"""Result types shared by the multi-task solvers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.instrumentation import OpCounters
from repro.model.assignment import Assignment

__all__ = ["MultiStep", "MultiSolverResult"]


@dataclass(frozen=True, slots=True)
class MultiStep:
    """One committed greedy iteration of a multi-task solver."""

    task_id: int
    slot: int
    gain: float
    cost: float
    heuristic: float
    worker_id: int


@dataclass(slots=True)
class MultiSolverResult:
    """Outcome of a multi-task solver run."""

    assignment: Assignment
    qualities: dict[int, float]
    spent: float
    counters: OpCounters
    steps: list[MultiStep] = field(default_factory=list)
    #: Virtual-clock duration for parallel solvers (None when serial).
    virtual_time: float | None = None
    #: Worker conflicts observed during the run (Fig. 9b/c).
    conflict_count: int = 0

    @property
    def sum_quality(self) -> float:
        """qsum (Eq. 7) over the solved tasks."""
        return sum(self.qualities.values())

    @property
    def min_quality(self) -> float:
        """qmin (Eq. 9) over the solved tasks."""
        return min(self.qualities.values()) if self.qualities else 0.0

    def plan_signature(self) -> tuple[tuple[int, int, int], ...]:
        """(task, slot, worker) sequence for determinism checks."""
        return self.assignment.plan_signature()
