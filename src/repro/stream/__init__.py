"""Streaming TCSC: event-driven online assignment.

The paper's problem is *time-continuous*, but its algorithms solve
one-shot instances.  This package supplies the missing operational
layer: a virtual clock and deterministic event queue
(:mod:`~repro.stream.clock`, :mod:`~repro.stream.events`), per-task
live assignment sessions with incrementally-maintained tree indexes
(:mod:`~repro.stream.session`), the epoch-driven
:class:`~repro.stream.online_server.StreamingTCSCServer`, and the
operator metrics (:mod:`~repro.stream.metrics`).

Quickstart::

    from repro import StreamScenarioConfig, build_stream_events
    from repro.stream import StreamingTCSCServer

    scenario = build_stream_events(StreamScenarioConfig(seed=7))
    server = StreamingTCSCServer(scenario.bbox, index_mode="incremental")
    print(server.run(scenario.events).report())

Event traces come from
:func:`repro.workloads.streaming.build_stream_events` (Poisson or
bursty task arrivals, Poisson worker joins with exponential
lifetimes) or can be hand-built from the event dataclasses.
"""

from repro.stream.clock import VirtualClock
from repro.stream.events import (
    BudgetRefresh,
    Event,
    EventQueue,
    TaskArrival,
    WorkerJoin,
    WorkerLeave,
)
from repro.stream.metrics import StreamMetrics, percentile
from repro.stream.online_server import BudgetPool, StreamingTCSCServer
from repro.stream.session import INDEX_MODES, TaskSession, WindowedCosts

__all__ = [
    "BudgetPool",
    "BudgetRefresh",
    "Event",
    "EventQueue",
    "INDEX_MODES",
    "StreamMetrics",
    "StreamingTCSCServer",
    "TaskArrival",
    "TaskSession",
    "VirtualClock",
    "WindowedCosts",
    "WorkerJoin",
    "WorkerLeave",
    "percentile",
]
