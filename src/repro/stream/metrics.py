"""Live metrics for the streaming server.

The batch benchmarks measure solver throughput; a streaming deployment
is judged on different axes: how deep the admission queue gets, how
long a task waits (in virtual time) before its first subtask executes,
and whether the quality *promised* at planning time survives worker
unreliability when the plan is realized.  :class:`StreamMetrics`
accumulates all three during a run and renders the operator report the
``simulate`` CLI prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.instrumentation import OpCounters

__all__ = ["percentile", "StreamMetrics"]


def percentile(values, q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of a value list.

    Returns 0.0 for an empty list — streaming reports must render even
    when nothing was assigned.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if q <= 0:
        return float(ordered[0])
    if q >= 100:
        return float(ordered[-1])
    rank = max(1, -(-int(q * len(ordered)) // 100))  # ceil(q/100 * n), >= 1
    return float(ordered[rank - 1])


@dataclass(slots=True)
class StreamMetrics:
    """Everything observed during one streaming run."""

    counters: OpCounters = field(default_factory=OpCounters)
    #: Event counts by class name (WorkerJoin, TaskArrival, ...).
    events_processed: dict[str, int] = field(default_factory=dict)
    epochs: int = 0
    tasks_arrived: int = 0
    tasks_admitted: int = 0
    tasks_rejected: int = 0
    tasks_completed: int = 0
    #: Tasks that finished their window without a single execution.
    tasks_starved: int = 0
    #: Arrivals rejected by the degradation ladder's shed level
    #: (``repro.degrade``; always 0 with ``approx="off"``, keeping the
    #: report byte-identical to the exact runtime).
    tasks_shed: int = 0
    #: task_id -> certified quality ratio of a degraded session's plan
    #: (empty unless an approximate mode ran).
    quality_certificates: dict[int, float] = field(default_factory=dict)
    workers_joined: int = 0
    workers_left: int = 0
    budget_spent: float = 0.0
    #: (virtual time, pending-queue depth) sampled at every epoch.
    queue_depth_samples: list[tuple[float, int]] = field(default_factory=list)
    #: Virtual-time lag from task arrival to its first executed subtask.
    assignment_latencies: list[float] = field(default_factory=list)
    #: task_id -> quality the planner committed to (entropy metric).
    promised_quality: dict[int, float] = field(default_factory=dict)
    #: task_id -> quality after sampling worker reliability (Eq. 4-5).
    realized_quality: dict[int, float] = field(default_factory=dict)
    #: task_id -> Voronoi cell count of the final executed-slot diagram
    #: (coverage fragmentation: fewer cells = sparser probing).
    coverage_cells: dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def count_event(self, event) -> None:
        """Tally one processed event by its class name."""
        name = type(event).__name__
        self.events_processed[name] = self.events_processed.get(name, 0) + 1

    @property
    def total_events(self) -> int:
        """All events processed, any kind."""
        return sum(self.events_processed.values())

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------
    @property
    def p50_latency(self) -> float:
        """Median assignment latency in virtual slots."""
        return percentile(self.assignment_latencies, 50)

    @property
    def p99_latency(self) -> float:
        """99th-percentile assignment latency in virtual slots."""
        return percentile(self.assignment_latencies, 99)

    @property
    def max_queue_depth(self) -> int:
        """Deepest pending queue observed."""
        return max((depth for _, depth in self.queue_depth_samples), default=0)

    @property
    def mean_promised_quality(self) -> float:
        """Average planned quality over completed tasks."""
        if not self.promised_quality:
            return 0.0
        return sum(self.promised_quality.values()) / len(self.promised_quality)

    @property
    def mean_realized_quality(self) -> float:
        """Average realized quality over completed tasks."""
        if not self.realized_quality:
            return 0.0
        return sum(self.realized_quality.values()) / len(self.realized_quality)

    @property
    def realization_ratio(self) -> float:
        """Realized / promised quality (1.0 = promises kept exactly)."""
        promised = self.mean_promised_quality
        if promised <= 0.0:
            return 1.0
        return self.mean_realized_quality / promised

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def report(self) -> str:
        """The operator-facing multi-line report."""
        lines = [
            "streaming report",
            "----------------",
            f"events    {self.total_events} "
            + " ".join(
                f"{name}={count}"
                for name, count in sorted(self.events_processed.items())
            ),
            f"epochs    {self.epochs}",
            f"workers   joined={self.workers_joined} left={self.workers_left}",
            f"tasks     arrived={self.tasks_arrived} admitted={self.tasks_admitted} "
            f"rejected={self.tasks_rejected} completed={self.tasks_completed} "
            f"starved={self.tasks_starved}",
            f"queue     max_depth={self.max_queue_depth}",
            f"latency   p50={self.p50_latency:.3g} p99={self.p99_latency:.3g} "
            "(virtual slots, arrival -> first execution)",
            f"quality   promised={self.mean_promised_quality:.4f} "
            f"realized={self.mean_realized_quality:.4f} "
            f"ratio={self.realization_ratio:.3f}",
            f"budget    spent={self.budget_spent:.3f}",
            f"index     full_builds={self.counters.index_full_builds} "
            f"incremental_refreshes={self.counters.index_incremental_refreshes} "
            f"tree_node_updates={self.counters.tree_node_updates}",
        ]
        # Degradation lines render only when degradation actually
        # happened, so an approx="off" report stays byte-identical.
        if self.tasks_shed:
            lines.append(f"degrade   shed={self.tasks_shed}")
        if self.quality_certificates:
            certificates = self.quality_certificates.values()
            lines.append(
                f"certify   n={len(self.quality_certificates)} "
                f"min={min(certificates):.3f} "
                f"mean={sum(certificates) / len(certificates):.3f}"
            )
        return "\n".join(lines)
