"""The event-driven streaming TCSC server.

Where :class:`~repro.engine.server.TCSCServer` solves one fully-known
instance and :class:`~repro.engine.batches.BatchTCSCServer` replays
pre-cut rounds, :class:`StreamingTCSCServer` runs an *online* loop over
a virtual clock: worker-join / worker-leave / task-arrival /
budget-refresh events drain from an :class:`~repro.stream.events.EventQueue`,
admitted tasks hold live :class:`~repro.stream.session.TaskSession`
state, and every epoch the server extends each session's assignment on
the sliding window of still-executable slots.

The loop per epoch:

1. drain events stamped before the epoch boundary (registry churn,
   admission control, budget top-ups);
2. advance the clock and every session's sliding window;
3. finalize sessions whose window closed or budget drained, freeing
   admission capacity;
4. admit pending tasks FIFO up to ``max_active_tasks``;
5. run one greedy assignment round per active session, oldest first —
   worker consumption is broadcast so competing sessions drop stale
   offers (the paper's worker conflicts, online).

Index maintenance is the subsystem's measured trade-off: with
``index_mode="incremental"`` each session repairs its tree index over
exactly the churn-dirtied slots; ``"rebuild"`` reconstructs it every
round.  Both must produce identical assignments on the same trace.
"""

from __future__ import annotations

import math

from repro.core.instrumentation import OpCounters
from repro.engine.realization import simulate_execution
from repro.engine.registry import WorkerRegistry
from repro.errors import ConfigurationError, SchedulingError
from repro.geo.bbox import BoundingBox
from repro.model.assignment import Assignment, Budget
from repro.model.task import TaskSet
from repro.model.worker import Worker, WorkerPool
from repro.stream.clock import VirtualClock
from repro.stream.events import (
    BudgetRefresh,
    Event,
    EventQueue,
    TaskArrival,
    WorkerJoin,
    WorkerLeave,
)
from repro.stream.metrics import StreamMetrics
from repro.stream.session import INDEX_MODES, TaskSession

__all__ = ["BudgetPool", "StreamingTCSCServer"]

_MAX_EPOCHS = 1_000_000


class BudgetPool:
    """Shared spending pool topped up by budget-refresh events."""

    __slots__ = ("_remaining", "refreshed")

    def __init__(self, initial: float):
        if initial < 0:
            raise ConfigurationError(f"pool must start >= 0, got {initial}")
        self._remaining = float(initial)
        self.refreshed = 0.0

    @property
    def remaining(self) -> float:
        """Budget currently available to all sessions."""
        return self._remaining

    def add(self, amount: float) -> None:
        """Top up the pool (a budget-refresh event)."""
        if amount < 0:
            raise ConfigurationError(f"refresh amount must be >= 0, got {amount}")
        self._remaining += amount
        self.refreshed += amount

    def charge(self, cost: float) -> None:
        """Draw from the pool."""
        if cost > self._remaining + 1e-9:
            raise SchedulingError(
                f"pool charge {cost:.6g} exceeds remaining {self._remaining:.6g}"
            )
        self._remaining = max(0.0, self._remaining - cost)


class StreamingTCSCServer:
    """Online TCSC assignment over an event stream.

    Parameters:
        bbox: spatial domain shared by tasks and workers.
        epoch_length: assignment-round period in virtual slots.
        index_mode: ``"incremental"`` (repair per-session tree indexes
            over churn-dirtied slots) or ``"rebuild"`` (reconstruct
            every round).
        rebuild_threshold: dirty-slot fraction above which incremental
            mode falls back to a full rebuild.
        budget_fraction: per-task budget as a fraction of the task's
            full execution cost at admission (used when the arrival
            event carries no explicit budget).
        pool_budget: initial shared pool; ``None`` disables pooling so
            only per-task budgets bind.  Budget-refresh events top up
            the pool when enabled.
        max_active_tasks: admission-window size.
        max_queue_depth: pending tasks beyond this are rejected.
        backend: quality-kernel implementation for every session's
            evaluator (``"python"`` scalar oracle or ``"numpy"``
            vectorized); identical assignments on either.
        layers: ordered :class:`~repro.runtime.layers.ServingLayer`
            capabilities dispatched at every hook point (the journal
            layer rides here); layers observe and persist but never
            perturb solver state, so a layered run is byte-identical
            to a bare one.
    """

    def __init__(
        self,
        bbox: BoundingBox,
        *,
        k: int = 3,
        ts: int = 4,
        epoch_length: float = 5.0,
        index_mode: str = "incremental",
        rebuild_threshold: float = 0.8,
        budget_fraction: float = 0.25,
        pool_budget: float | None = None,
        max_active_tasks: int = 8,
        max_queue_depth: int = 16,
        realization_seed: int = 0,
        backend: str = "python",
        counters: OpCounters | None = None,
        layers=(),
        certify: bool = False,
    ):
        if index_mode not in INDEX_MODES:
            raise ConfigurationError(
                f"unknown index_mode {index_mode!r}; choose one of {INDEX_MODES}"
            )
        if epoch_length <= 0:
            raise ConfigurationError(f"epoch_length must be > 0, got {epoch_length}")
        if max_active_tasks < 1:
            raise ConfigurationError(
                f"max_active_tasks must be >= 1, got {max_active_tasks}"
            )
        if max_queue_depth < 0:
            raise ConfigurationError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}"
            )
        if not 0.0 < budget_fraction <= 1.0:
            raise ConfigurationError(
                f"budget_fraction must be in (0, 1], got {budget_fraction}"
            )
        self.bbox = bbox
        self.k = k
        self.ts = ts
        self.epoch_length = float(epoch_length)
        self.index_mode = index_mode
        self.rebuild_threshold = rebuild_threshold
        self.budget_fraction = budget_fraction
        self.max_active_tasks = max_active_tasks
        self.max_queue_depth = max_queue_depth
        self.realization_seed = realization_seed
        self.backend = backend
        self.counters = counters if counters is not None else OpCounters()
        self.clock = VirtualClock()
        self.registry = WorkerRegistry(WorkerPool([]), bbox)
        self.pool = None if pool_budget is None else BudgetPool(pool_budget)
        self._workers_seen: dict[int, Worker] = {}
        self._pending: list[TaskArrival] = []
        self._active: list[TaskSession] = []
        self._finished: list[TaskSession] = []
        #: Metrics survive across :meth:`run` re-entry so a recovered
        #: server (``repro.journal``) resumes the interrupted record
        #: instead of starting a fresh one.
        self._metrics: StreamMetrics | None = None
        self._ran = False
        #: The live trace between :meth:`begin` and :meth:`finish`;
        #: drained epoch by epoch via :meth:`step_epoch`.
        self._queue: EventQueue | None = None
        self._epochs_stepped = 0
        #: A :class:`~repro.obs.profile.PhaseProfiler` attached by a
        #: telemetry layer at bind time; when set, the step loop
        #: attributes index repair and the greedy solve to phases.
        self.profiler = None
        #: Certificate tracking (``repro.degrade``): sessions probe and
        #: report certified quality ratios.  Only set when an
        #: approximate mode is configured — tracking perturbs
        #: OpCounters, which ``approx="off"`` identity forbids.
        self.certify = certify
        #: A :class:`~repro.degrade.policy.DegradationController`
        #: attached by a DegradationLayer at bind time (or directly);
        #: admission and the step loop read its directives.
        self.degradation = None
        #: Per-epoch op-count cap in ``OpCounters.virtual_cost`` units,
        #: set by an injected slowdown (``repro.degrade.chaos``);
        #: ``None`` = unthrottled.
        self.op_epoch_budget = None
        self.layers = tuple(layers)
        for layer in self.layers:
            layer.bind(self)

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------
    def _handle(self, event: Event, metrics: StreamMetrics) -> None:
        metrics.count_event(event)
        if isinstance(event, WorkerJoin):
            worker = event.worker
            self.registry.add_worker(worker)
            self._workers_seen[worker.worker_id] = worker
            metrics.workers_joined += 1
            for session in self._active:
                session.note_worker_join(worker)
        elif isinstance(event, WorkerLeave):
            worker = self.registry.remove_worker(event.worker_id)
            metrics.workers_left += 1
            for session in self._active:
                session.note_worker_leave(worker)
        elif isinstance(event, TaskArrival):
            metrics.tasks_arrived += 1
            degradation = self.degradation
            if degradation is not None and degradation.shedding:
                # Shed level: the ladder's last resort still rejects
                # new arrivals; active sessions keep being served.
                metrics.tasks_rejected += 1
                metrics.tasks_shed += 1
            elif len(self._pending) >= self.max_queue_depth:
                metrics.tasks_rejected += 1
            else:
                self._pending.append(event)
        elif isinstance(event, BudgetRefresh):
            if self.pool is not None:
                self.pool.add(event.amount)
        else:
            raise ConfigurationError(f"unknown event type {type(event).__name__}")

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def _admit(self, arrival: TaskArrival, metrics: StreamMetrics) -> TaskSession:
        session = TaskSession(
            arrival.task,
            self.registry,
            k=self.k,
            ts=self.ts,
            budget=0.0,
            arrival_time=arrival.time,
            index_mode=self.index_mode,
            rebuild_threshold=self.rebuild_threshold,
            backend=self.backend,
            counters=self.counters,
            certify=self.certify,
        )
        session.on_epoch(self.clock.now)
        amount = arrival.budget
        if amount is None:
            amount = self.budget_fraction * session.estimate_full_cost()
        session.budget = Budget(amount)
        metrics.tasks_admitted += 1
        self._active.append(session)
        return session

    def _finalize(self, session: TaskSession, metrics: StreamMetrics) -> None:
        for layer in self.layers:
            layer.before_finalize(session, metrics)
        task_id = session.task.task_id
        metrics.tasks_completed += 1
        metrics.promised_quality[task_id] = session.quality
        if self.certify:
            metrics.quality_certificates[task_id] = session.certificate()
        metrics.coverage_cells[task_id] = len(session.voronoi.cells)
        metrics.budget_spent += session.budget.spent
        if session.first_assign_time is None:
            metrics.tasks_starved += 1
        else:
            metrics.assignment_latencies.append(
                session.first_assign_time - session.arrival_time
            )
        self._finished.append(session)

    def _commit(
        self,
        consuming: TaskSession,
        worker_id: int,
        global_slot: int,
        local_slot: int,
        cost: float,
    ) -> None:
        """Consume a worker and broadcast the conflict to competitors.

        ``local_slot`` and ``cost`` identify the committed subtask; the
        base server only needs the worker/slot pair, but the journal
        layer logs the full typed commit record before it is applied.
        """
        for layer in self.layers:
            layer.before_commit(consuming, worker_id, global_slot, local_slot, cost)
        self.registry.consume(worker_id, global_slot)
        for other in self._active:
            if other is consuming:
                continue
            if other.note_worker_consumed(worker_id, global_slot):
                self.counters.conflicts_detected += 1

    # ------------------------------------------------------------------
    # The layer seam (repro.runtime.layers; the journal layer lives in
    # repro.journal.layer)
    # ------------------------------------------------------------------
    def _consume_event(self, event: Event, metrics: StreamMetrics) -> None:
        """Apply one drained event through the layer seam.

        ``before_event`` runs first (log-before-apply; fault injection
        may raise here, leaving the event unapplied), then the event is
        applied, then ``after_event`` observes the applied state.
        """
        for layer in self.layers:
            layer.before_event(event, metrics)
        self._handle(event, metrics)
        for layer in self.layers:
            layer.after_event(event, metrics)

    def _on_epoch_end(self, metrics: StreamMetrics, now: float) -> None:
        """Called after each epoch's assignment rounds (snapshot seam)."""
        for layer in self.layers:
            layer.on_epoch_end(metrics, now)

    def _on_run_complete(self, metrics: StreamMetrics) -> None:
        """Called once the trace is drained and realized (final
        snapshot seam)."""
        for layer in self.layers:
            layer.on_run_complete(metrics)

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def run(self, events) -> StreamMetrics:
        """Drain an event trace to completion and return the metrics.

        One-shot: the server accumulates registry, clock, and session
        state; create a fresh server per trace.  Recomposed from the
        stepping API (:meth:`begin` / :meth:`pending_work` /
        :meth:`step_epoch` / :meth:`finish`) so external drivers — the
        elastic lockstep loop in :mod:`repro.elastic` — can interleave
        epochs across many cores without changing what any single core
        computes.
        """
        self.begin(events)
        while self.pending_work():
            self.step_epoch()
        return self.finish()

    def begin(self, events) -> StreamMetrics:
        """Arm the server with a trace; epochs then advance via
        :meth:`step_epoch`.

        One-shot like :meth:`run` (they share the ``_ran`` latch).
        Returns the live metrics object.
        """
        if self._ran:
            raise SchedulingError(
                "StreamingTCSCServer.run is one-shot; create a new server per trace"
            )
        self._ran = True
        self._queue = events if isinstance(events, EventQueue) else EventQueue(events)
        if self._metrics is None:
            self._metrics = StreamMetrics(counters=self.counters)
        self._epochs_stepped = 0
        return self._metrics

    def pending_work(self) -> bool:
        """True while the trace, admission queue, or active sessions
        still have work — the :meth:`run` loop condition."""
        return bool(self._queue or self._pending or self._active)

    def next_boundary(self) -> float:
        """The virtual time the next :meth:`step_epoch` will settle at.

        Side-effect free.  Replicates the idle fast-forward: with no
        active or pending sessions the next boundary jumps to the epoch
        containing the next queued event instead of spinning through
        empty rounds.  All boundaries lie on the ``epoch_length`` grid,
        which is what lets the elastic driver run many cores in
        lockstep on a shared grid.
        """
        next_epoch = self.clock.now + self.epoch_length
        if not self._active and not self._pending:
            upcoming = self._queue.peek_time() if self._queue is not None else None
            if upcoming is not None and upcoming >= next_epoch:
                skip = math.floor(upcoming / self.epoch_length) + 1
                next_epoch = skip * self.epoch_length
        return next_epoch

    def step_epoch(self) -> float:
        """Advance exactly one epoch: drain events due by the boundary,
        age sessions, admit, and run the assignment rounds.

        Returns the settled boundary time (``clock.now`` after the
        step).  Byte-for-byte the former :meth:`run` loop body.
        """
        metrics = self._metrics
        queue = self._queue
        self._epochs_stepped += 1
        if self._epochs_stepped > _MAX_EPOCHS:
            raise SchedulingError("streaming run exceeded the epoch safety cap")
        next_epoch = self.next_boundary()
        for event in queue.pop_until(next_epoch):
            self._consume_event(event, metrics)
        now = self.clock.advance_to(next_epoch)
        metrics.epochs += 1

        for session in self._active:
            session.on_epoch(now)
        still_active: list[TaskSession] = []
        for session in self._active:
            if session.expired or session.exhausted:
                self._finalize(session, metrics)
            else:
                still_active.append(session)
        self._active = still_active

        while self._pending and len(self._active) < self.max_active_tasks:
            self._admit(self._pending.pop(0), metrics)

        degradation = self.degradation
        directive = None if degradation is None else degradation.directive()
        if directive is not None and directive.level == 0:
            directive = None
        op_budget = self.op_epoch_budget
        op_start = (
            self.counters.virtual_cost() if op_budget is not None else 0.0
        )
        prof = self.profiler
        for session in list(self._active):
            if (
                op_budget is not None
                and self.counters.virtual_cost() - op_start > op_budget
            ):
                # Injected slowdown: this epoch's op budget is
                # spent; remaining sessions wait for the next
                # epoch.  Op counts, never wall clock, so the
                # throttled run stays deterministic.
                break
            callback = (
                lambda wid, gslot, slot, cost, s=session: self._commit(
                    s, wid, gslot, slot, cost
                )
            )
            if prof is None:
                session.step(now, self.pool, callback, directive=directive)
            else:
                # Same work, phase-attributed: index repair happens
                # in prepare_index (exactly where step would run
                # it), the greedy solve in step itself.  A top-c
                # directive bypasses the index entirely, so nothing
                # is repaired for it.
                skip_index = directive is not None and directive.top_c is not None
                with prof.phase(
                    "index-repair", emit=False,
                ):
                    index = None if skip_index else session.prepare_index()
                with prof.phase(
                    "solve", task_id=session.task.task_id, now=now
                ) as span:
                    span["executed"] = session.step(
                        now, self.pool, callback, index=index,
                        directive=directive,
                    )
        metrics.queue_depth_samples.append((now, len(self._pending)))
        self._on_epoch_end(metrics, now)
        return now

    def finish(self) -> StreamMetrics:
        """Realize the committed plan and fire the final layer seam.

        The tail of :meth:`run`, split out so external drivers call it
        once every core's :meth:`pending_work` is drained.
        """
        metrics = self._metrics
        self._realize(metrics)
        self._on_run_complete(metrics)
        return metrics

    # ------------------------------------------------------------------
    # Realization
    # ------------------------------------------------------------------
    def assignment(self) -> Assignment:
        """The combined plan of every finished session."""
        combined = Assignment()
        for session in self._finished:
            for record in session.records:
                combined.add(record)
        return combined

    def _realize(self, metrics: StreamMetrics) -> None:
        """Close the loop: sample execution of the committed plan."""
        if not self._finished:
            return
        tasks = TaskSet([session.task for session in self._finished])
        pool = WorkerPool(list(self._workers_seen.values()))
        outcome = simulate_execution(
            tasks,
            pool,
            self.assignment(),
            k=self.k,
            seed=self.realization_seed,
        )
        metrics.realized_quality.update(outcome.qualities)
