"""Streaming events and the deterministic event queue.

The online TCSC mode is event-driven: workers join and leave, tasks
arrive, and the operator tops up the budget pool, all stamped with a
*virtual time* measured in global slots.  Four event kinds cover the
scenarios the paper's one-shot formulation cannot express:

* :class:`WorkerJoin` — a worker registers, carrying its availability
  (location per active global slot) for its lifetime.
* :class:`WorkerLeave` — a worker churns out; unconsumed future slots
  vanish, already-committed assignments stand.
* :class:`TaskArrival` — a TCSC task is submitted; admission control
  decides whether it enters the live assignment window.
* :class:`BudgetRefresh` — the shared budget pool is topped up.

:class:`EventQueue` orders events by ``(time, kind priority, push
sequence)``.  The kind priority fixes same-instant semantics: joins and
budget top-ups land first (an arriving task sees workers that joined
"at" its arrival instant), then task arrivals, then departures (a
worker present at ``t`` can still serve a task arriving at ``t``).
The push sequence makes ties fully deterministic, which the
seed-determinism tests rely on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.model.task import Task
from repro.model.worker import Worker

__all__ = [
    "Event",
    "WorkerJoin",
    "WorkerLeave",
    "TaskArrival",
    "BudgetRefresh",
    "EventQueue",
]


@dataclass(frozen=True, slots=True)
class Event:
    """Base event: something that happens at a virtual time."""

    time: float

    def __post_init__(self):
        if self.time < 0:
            raise ConfigurationError(f"event time must be >= 0, got {self.time}")


@dataclass(frozen=True, slots=True)
class WorkerJoin(Event):
    """A worker registers with the platform."""

    worker: Worker


@dataclass(frozen=True, slots=True)
class WorkerLeave(Event):
    """A registered worker churns out."""

    worker_id: int


@dataclass(frozen=True, slots=True)
class TaskArrival(Event):
    """A TCSC task is submitted.

    ``budget`` is the task's own budget; ``None`` lets the server
    derive one from its configured budget fraction at admission time.
    """

    task: Task
    budget: float | None = None


@dataclass(frozen=True, slots=True)
class BudgetRefresh(Event):
    """The shared budget pool is topped up by ``amount``."""

    amount: float

    def __post_init__(self):
        Event.__post_init__(self)
        if self.amount < 0:
            raise ConfigurationError(f"refresh amount must be >= 0, got {self.amount}")


#: Same-instant ordering (see module docstring).
_KIND_PRIORITY = {WorkerJoin: 0, BudgetRefresh: 1, TaskArrival: 2, WorkerLeave: 3}


class EventQueue:
    """Min-heap of events with deterministic total order."""

    __slots__ = ("_heap", "_seq")

    def __init__(self, events=()):
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        for event in events:
            self.push(event)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, event: Event) -> None:
        """Enqueue an event."""
        priority = _KIND_PRIORITY.get(type(event))
        if priority is None:
            raise ConfigurationError(f"unknown event type {type(event).__name__}")
        heapq.heappush(self._heap, (event.time, priority, self._seq, event))
        self._seq += 1

    def peek_time(self) -> float | None:
        """Timestamp of the next event, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Event | None:
        """Dequeue the next event, or ``None`` when empty."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[3]

    def pop_until(self, time: float) -> list[Event]:
        """Dequeue every event with timestamp strictly before ``time``."""
        ready: list[Event] = []
        while self._heap and self._heap[0][0] < time:
            ready.append(heapq.heappop(self._heap)[3])
        return ready
