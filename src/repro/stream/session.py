"""Per-task live assignment state for the streaming server.

A :class:`TaskSession` is the online analogue of one
:class:`~repro.core.greedy.IndexedSingleTaskGreedy` run, stretched over
the task's whole duration: the evaluator, the cost view, and the tree
index persist across epochs while workers churn underneath them.

Two index-maintenance policies are supported and must produce
*identical assignments* (the acceptance property of the subsystem):

* ``"incremental"`` — the tree index is built once and repaired with
  :meth:`~repro.core.tree_index.TreeIndex.refresh_slots` over exactly
  the slots dirtied by churn, consumption, or the advancing clock,
  falling back to a full rebuild when the dirty set exceeds
  ``rebuild_threshold`` of the slot line;
* ``"rebuild"`` — the index is reconstructed from scratch at every
  assignment round (the baseline the benchmarks compare against).

Both policies read the same evaluator and cost state, so the index
aggregates — and therefore every ``find_best`` answer — coincide; only
the operation counts differ.

The session additionally maintains the order-k Voronoi diagram of its
executed slots *incrementally* (one :meth:`insert_site` per
execution); the final cell count is the coverage-fragmentation metric
reported by :class:`~repro.stream.metrics.StreamMetrics`.
"""

from __future__ import annotations

import math

from repro.core.evaluator import TemporalQualityEvaluator
from repro.core.instrumentation import OpCounters
from repro.core.tree_index import TreeIndex
from repro.core.voronoi import OrderKVoronoi
from repro.engine.costs import DynamicCostProvider
from repro.errors import ConfigurationError
from repro.model.assignment import AssignmentRecord, Budget
from repro.model.task import Task
from repro.model.worker import Worker

__all__ = ["WindowedCosts", "TaskSession", "INDEX_MODES"]

INDEX_MODES = ("incremental", "rebuild")


class WindowedCosts:
    """Sliding-window view over a cost provider.

    Subtasks whose global slot the virtual clock has passed can no
    longer be executed; this wrapper masks them (cost ``None``) so the
    solvers need no online-specific logic.  ``mask_hi`` is the highest
    masked local slot and only ever grows.
    """

    __slots__ = ("provider", "task", "mask_hi")

    def __init__(self, provider: DynamicCostProvider, task: Task):
        self.provider = provider
        self.task = task
        self.mask_hi = 0

    def advance(self, now: float) -> list[int]:
        """Mask slots whose global time is strictly before ``now``.

        Returns the newly masked local slots (they need an index
        refresh: their candidacy just ended).
        """
        task = self.task
        new_hi = min(
            task.num_slots,
            max(0, math.ceil(now - task.start_slot + 1) - 1),
        )
        fresh = list(range(self.mask_hi + 1, new_hi + 1))
        self.mask_hi = max(self.mask_hi, new_hi)
        return fresh

    def cost(self, slot: int) -> float | None:
        """Provider cost, or ``None`` once the slot's time has passed."""
        if slot <= self.mask_hi:
            return None
        return self.provider.cost(slot)

    def reliability(self, slot: int) -> float:
        """Provider reliability (1.0 for masked slots, never used)."""
        if slot <= self.mask_hi:
            return 1.0
        return self.provider.reliability(slot)

    def offer(self, slot: int):
        """Provider offer, or ``None`` once the slot's time has passed."""
        if slot <= self.mask_hi:
            return None
        return self.provider.offer(slot)


class TaskSession:
    """Live assignment state of one admitted task."""

    def __init__(
        self,
        task: Task,
        registry,
        *,
        k: int,
        ts: int,
        budget: float,
        arrival_time: float,
        index_mode: str = "incremental",
        rebuild_threshold: float = 0.8,
        backend: str = "python",
        counters: OpCounters | None = None,
        certify: bool = False,
    ):
        if index_mode not in INDEX_MODES:
            raise ConfigurationError(
                f"unknown index_mode {index_mode!r}; choose one of {INDEX_MODES}"
            )
        if not 0.0 < rebuild_threshold <= 1.0:
            raise ConfigurationError(
                f"rebuild_threshold must be in (0, 1], got {rebuild_threshold}"
            )
        self.task = task
        self.k = k
        self.ts = ts
        self.index_mode = index_mode
        self.arrival_time = arrival_time
        self.counters = counters if counters is not None else OpCounters()
        # The evaluator (and, with backend="numpy", its shared per-
        # (m, k) kernel) persists for the session's whole lifetime:
        # epochs reuse it instead of rebuilding quality state.
        self.ev = TemporalQualityEvaluator(
            task.num_slots, k, counters=self.counters, backend=backend
        )
        self.provider = DynamicCostProvider(task, registry, counters=self.counters)
        self.costs = WindowedCosts(self.provider, task)
        self.budget = Budget(budget)
        self.voronoi = OrderKVoronoi(task.num_slots, k, [])
        self.records: list[AssignmentRecord] = []
        self.first_assign_time: float | None = None
        self._index: TreeIndex | None = None
        self._dirty: set[int] = set()
        self._dirty_limit = max(1, int(rebuild_threshold * task.num_slots))
        # Certificate state (``repro.degrade``); ``certify`` is only
        # set when an approximate mode is configured, because tracking
        # probes offers and gains through the counted providers — with
        # ``approx="off"`` the session stays byte-identical to the
        # exact runtime, OpCounters included.
        self._min_cost_seen: dict[int, float] | None = {} if certify else None
        self._first_gain: float | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def end_slot(self) -> int:
        """Last global slot the task occupies."""
        return self.task.start_slot + self.task.num_slots - 1

    @property
    def expired(self) -> bool:
        """True once every slot's time has passed."""
        return self.costs.mask_hi >= self.task.num_slots

    @property
    def exhausted(self) -> bool:
        """True once the task budget is effectively spent."""
        return self.budget.remaining < 1e-9

    @property
    def quality(self) -> float:
        """Quality promised by the plan so far."""
        return self.ev.quality

    def estimate_full_cost(self) -> float:
        """Cost of executing every currently-assignable slot.

        The online analogue of the scenario builder's budget reference:
        per-task budgets are expressed as a fraction of this estimate
        at admission time.
        """
        total = 0.0
        for slot in self.task.slots:
            cost = self.costs.cost(slot)
            if cost is not None:
                total += cost
        return total

    # ------------------------------------------------------------------
    # Churn notifications
    # ------------------------------------------------------------------
    def _overlapping_local_slots(self, worker: Worker) -> list[int]:
        task = self.task
        slots = []
        for global_slot in worker.availability:
            if task.start_slot <= global_slot <= self.end_slot:
                local = global_slot - task.start_slot + 1
                if local > self.costs.mask_hi and not self.ev.is_executed(local):
                    slots.append(local)
        return slots

    def note_worker_join(self, worker: Worker) -> list[int]:
        """A worker joined: re-derive offers for the slots it overlaps."""
        slots = self._overlapping_local_slots(worker)
        if slots:
            self.provider.invalidate_slots(slots)
            self._dirty.update(slots)
        return slots

    def note_worker_leave(self, worker: Worker) -> list[int]:
        """A worker left: drop offers that referenced it."""
        lost: list[int] = []
        task = self.task
        for global_slot in worker.availability:
            if task.start_slot <= global_slot <= self.end_slot:
                lost.extend(self.provider.invalidate_worker(worker.worker_id, global_slot))
        if lost:
            self._dirty.update(lost)
        return lost

    def note_worker_consumed(self, worker_id: int, global_slot: int) -> list[int]:
        """A competitor consumed a worker: invalidate the lost offer."""
        lost = self.provider.invalidate_worker(worker_id, global_slot)
        if lost:
            self._dirty.update(lost)
        return lost

    def on_epoch(self, now: float) -> None:
        """Advance the sliding window to ``now``."""
        self._dirty.update(self.costs.advance(now))

    # ------------------------------------------------------------------
    # Assignment
    # ------------------------------------------------------------------
    def _ensure_index(self) -> TreeIndex:
        if self.index_mode == "rebuild" or self._index is None:
            # Rebuild-every-round baseline (or very first build).
            self._index = TreeIndex(
                self.ev, self.costs, ts=self.ts, counters=self.counters
            )
            self._dirty.clear()
        elif self._dirty:
            if len(self._dirty) >= self._dirty_limit:
                # Rebuild-threshold fallback: churn touched so much of
                # the slot line that a fresh build is cheaper than many
                # range refreshes.
                self._index = TreeIndex(
                    self.ev, self.costs, ts=self.ts, counters=self.counters
                )
            else:
                self._index.refresh_slots(self._dirty)
            self._dirty.clear()
        return self._index

    def prepare_index(self) -> TreeIndex | None:
        """Repair (or rebuild) the session's tree index for this epoch.

        Split out of :meth:`step` so a profiling caller can attribute
        index-repair cost separately from the greedy solve; the result
        is passed back via ``step(..., index=...)``.  ``None`` when the
        session cannot run (exhausted/expired) — ``step`` then returns
        0 without touching the index, matching the unprofiled path.
        """
        if self.exhausted or self.expired:
            return None
        return self._ensure_index()

    def step(
        self,
        now: float,
        pool,
        on_consume,
        *,
        index: TreeIndex | None = None,
        directive=None,
    ) -> int:
        """Run greedy assignment for one epoch.

        ``pool`` bounds spending globally (``None`` = task budget
        only); ``on_consume(worker_id, global_slot, local_slot, cost)``
        commits a worker in the registry and notifies competing
        sessions (the journal layer also logs it).  ``index`` accepts a
        :meth:`prepare_index` result (the index is repaired here when
        not supplied).  ``directive`` (a
        :class:`~repro.degrade.policy.DegradeDirective`) selects a
        degraded search: ``top_c`` bypasses the tree index entirely and
        enumerates only the best-ranked candidate slots, ``floor``
        stops once marginal gain drops below the floor fraction of the
        session's first committed gain.  Returns the number of subtasks
        executed.
        """
        if self.exhausted or self.expired:
            return 0
        if self._min_cost_seen is not None:
            self._track_offer_costs()
        if directive is not None and directive.top_c is not None:
            return self._step_degraded(now, pool, on_consume, directive)
        if index is None:
            index = self._ensure_index()
        floor = None if directive is None else directive.floor
        executed = 0
        while True:
            remaining = self.budget.remaining
            if pool is not None:
                remaining = min(remaining, pool.remaining)
            if remaining < 1e-12:
                break
            best = index.find_best(remaining)
            if best is None:
                break
            if (
                floor is not None
                and self._first_gain is not None
                and best.gain < floor * self._first_gain
            ):
                break
            offer = self.costs.offer(best.slot)
            window = self.ev.affected_window(best.slot)
            self.ev.execute(best.slot, self.costs.reliability(best.slot))
            self.voronoi.insert_site(best.slot)
            self.budget.charge(best.cost)
            if pool is not None:
                pool.charge(best.cost)
            on_consume(
                offer.worker_id, self.task.global_slot(best.slot), best.slot, best.cost
            )
            self.records.append(
                AssignmentRecord(self.task.task_id, best.slot, offer.worker_id, best.cost)
            )
            if self.first_assign_time is None:
                self.first_assign_time = now
            if self._first_gain is None:
                self._first_gain = best.gain
            self.counters.iterations += 1
            index.refresh_range(*window)
            executed += 1
        return executed

    # ------------------------------------------------------------------
    # Degraded assignment and certificates (``repro.degrade``)
    # ------------------------------------------------------------------
    def _track_offer_costs(self) -> None:
        """Record the cheapest cost each slot was ever offered at.

        The certificate's competing plan may buy any slot at the best
        price *this session ever saw* — tracked at every step entry so
        masked (expired) slots keep their historical floor.
        """
        seen = self._min_cost_seen
        for slot in self.task.slots:
            if self.ev.is_executed(slot):
                continue
            cost = self.costs.cost(slot)
            if cost is None:
                continue
            prior = seen.get(slot)
            if prior is None or cost < prior:
                seen[slot] = cost

    def _step_degraded(self, now: float, pool, on_consume, directive) -> int:
        """Bounded-candidate assignment: no tree index, top-c only.

        Candidates are the ``top_c`` assignable slots ranked by the
        cached single-slot quality table (the same ranking line 3 of
        Algorithm 1 consults); gains are evaluated directly on the
        session evaluator.  The tree index is neither repaired nor
        consulted — every executed window lands in ``_dirty`` so a
        later exact epoch repairs it first.
        """
        from repro.core.greedy import single_slot_quality_table
        from repro.core.tree_index import COST_EPSILON

        executed = 0
        m = self.task.num_slots
        while True:
            remaining = self.budget.remaining
            if pool is not None:
                remaining = min(remaining, pool.remaining)
            if remaining < 1e-12:
                break
            tables: dict[float, list[float]] = {}
            ranked: list[tuple[float, int, float, float]] = []
            for slot in self.task.slots:
                if self.ev.is_executed(slot):
                    continue
                cost = self.costs.cost(slot)
                if cost is None:
                    continue
                lam = self.costs.reliability(slot)
                table = tables.get(lam)
                if table is None:
                    table = single_slot_quality_table(m, self.k, lam)
                    tables[lam] = table
                ranked.append((-table[slot], slot, cost, lam))
            ranked.sort(key=lambda item: (item[0], item[1]))
            best: tuple[int, float, float, float] | None = None
            for _, slot, cost, lam in ranked[: directive.top_c]:
                if cost > remaining + 1e-12:
                    continue
                gain = self.ev.gain_if_executed(slot, lam)
                if gain <= 0.0:
                    continue
                heuristic = gain / max(cost, COST_EPSILON)
                if best is None or heuristic > best[3] or (
                    heuristic == best[3] and slot < best[0]
                ):
                    best = (slot, gain, cost, heuristic)
            if best is None:
                break
            slot, gain, cost, _ = best
            if (
                directive.floor is not None
                and self._first_gain is not None
                and gain < directive.floor * self._first_gain
            ):
                break
            offer = self.costs.offer(slot)
            window = self.ev.affected_window(slot)
            self.ev.execute(slot, self.costs.reliability(slot))
            self.voronoi.insert_site(slot)
            self.budget.charge(cost)
            if pool is not None:
                pool.charge(cost)
            on_consume(offer.worker_id, self.task.global_slot(slot), slot, cost)
            self.records.append(
                AssignmentRecord(self.task.task_id, slot, offer.worker_id, cost)
            )
            if self.first_assign_time is None:
                self.first_assign_time = now
            if self._first_gain is None:
                self._first_gain = gain
            self.counters.iterations += 1
            self._dirty.update(range(window[0], window[1] + 1))
            executed += 1
        return executed

    def certificate(self) -> float:
        """Certified quality ratio against the session's offer stream.

        The gain-envelope bound of :mod:`repro.degrade.certify`
        evaluated at the session's final state: any competing plan over
        the offers this session observed — each unexecuted slot charged
        at the cheapest cost it was ever offered at, with the session's
        full budget to spend — cannot beat
        ``quality + gain_envelope_bound(...)``.  Returns 1.0 when
        certificate tracking was off.
        """
        if self._min_cost_seen is None:
            return 1.0
        from repro.degrade.certify import gain_envelope_bound

        gains_costs: list[tuple[float, float]] = []
        for slot, cost in self._min_cost_seen.items():
            if self.ev.is_executed(slot):
                continue
            gain = self.ev.gain_if_executed(slot, self.costs.reliability(slot))
            gains_costs.append((gain, cost))
        capacity = self.budget.spent + self.budget.remaining
        bound = self.ev.quality + gain_envelope_bound(gains_costs, capacity)
        if bound <= 0.0:
            return 1.0
        return min(1.0, self.ev.quality / bound)
