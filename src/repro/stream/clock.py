"""The virtual simulation clock.

Virtual time is measured in *global slots* — the same axis workers'
availability and tasks' start slots live on — so "one epoch" and "one
slot" are directly comparable quantities.  The clock only moves
forward; the streaming server advances it epoch by epoch and every
latency metric is a difference of clock readings.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = ["VirtualClock"]


class VirtualClock:
    """Monotonic virtual clock over the global slot axis."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ConfigurationError(f"clock must start >= 0, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def advance_to(self, time: float) -> float:
        """Move the clock forward to ``time`` (never backwards)."""
        if time < self._now:
            raise ConfigurationError(
                f"clock cannot move backwards: {time} < {self._now}"
            )
        self._now = float(time)
        return self._now

    def epoch_index(self, epoch_length: float) -> int:
        """Index of the epoch containing the current instant."""
        if epoch_length <= 0:
            raise ConfigurationError(
                f"epoch_length must be > 0, got {epoch_length}"
            )
        return int(math.floor(self._now / epoch_length))
