"""Offline trace analysis: ``python -m repro trace-report FILE``.

Re-derives an operator summary from a trace file alone — no live
server, no results JSON.  The report answers four questions:

* *where did the time go?* — the per-phase wall/op-cost table from the
  run's ``phases`` records, plus an ascii bar chart of wall ms;
* *how fast were tasks served?* — assignment latency (virtual slots
  from arrival to first committed subtask) rebuilt from ``finalize``
  records into a :class:`~repro.obs.metrics.LogHistogram`, so the
  p50/p95/p99 shown here are exact and deterministic;
* *what did the run look like?* — record tally, event-apply wall
  percentiles, queue-depth summary from ``epoch`` records,
  degradation-ladder transitions, per-shard ownership/halo stats, and
  elastic migrations;
* *where did the cost go?* — the causal span graph's virtual-cost
  critical path and top-k hot tasks/phases/scopes
  (:mod:`repro.obs.causal`).

``trace-report --json`` emits :func:`trace_report_json`, the same
digest as machine-readable JSON (histograms reduced to exact
count/p50/p95/p99).
"""

from __future__ import annotations

from repro.bench.ascii_plot import bar_chart
from repro.obs.causal import SpanGraph
from repro.obs.metrics import LogHistogram
from repro.obs.trace import read_trace

__all__ = ["render_trace_report", "summarize", "trace_report_json"]


def _merge_phases(records: list[dict]) -> dict[str, dict]:
    """Fold every ``phases`` record (one per shard scope) into one
    table: {phase: {calls, op_cost, wall_s}}."""
    merged: dict[str, dict] = {}
    for record in records:
        if record["type"] != "phases":
            continue
        walls = record.get("timing", {}).get("wall_s", {})
        for name, stat in record["phases"].items():
            row = merged.setdefault(
                name, {"calls": 0, "op_cost": 0.0, "wall_s": 0.0}
            )
            row["calls"] += stat["calls"]
            row["op_cost"] += stat["op_cost"]
            row["wall_s"] += walls.get(name, 0.0)
    return dict(sorted(merged.items()))


def summarize(records: list[dict]) -> dict:
    """Structured digest of a record list (the report's data model)."""
    counts: dict[str, int] = {}
    latency = LogHistogram("latency_slots")
    event_wall = LogHistogram("event_apply_ms", timing=True)
    queue_depth = LogHistogram("queue_depth")
    starved = 0
    degrade: list[dict] = []
    shard_stats: dict | None = None
    migrations: list[dict] = []
    for record in records:
        counts[record["type"]] = counts.get(record["type"], 0) + 1
        if record["type"] == "finalize":
            if record.get("latency") is None:
                starved += 1
            else:
                latency.observe(record["latency"])
        elif record["type"] == "event":
            wall = record.get("timing", {}).get("wall_s")
            if wall is not None:
                event_wall.observe(wall * 1000.0)
        elif record["type"] == "epoch":
            queue_depth.observe(record["queue_depth"])
        elif record["type"] == "degrade":
            degrade.append(record)
        elif record["type"] == "shard-stats":
            # The run emits one, at completion; keep the last seen.
            shard_stats = record
        elif record["type"] == "migrate-in":
            migrations.append(record)
    return {
        "counts": dict(sorted(counts.items())),
        "phases": _merge_phases(records),
        "latency": latency,
        "starved": starved,
        "event_wall": event_wall,
        "queue_depth": queue_depth,
        "degrade": degrade,
        "shard_stats": shard_stats,
        "migrations": migrations,
    }


def _histogram_chart(histogram: LogHistogram, *, title: str) -> str | None:
    """Bar chart of a histogram's bucket counts (None when empty)."""
    labels, values = [], []
    if histogram.zero_count:
        labels.append("0")
        values.append(float(histogram.zero_count))
    for bucket in sorted(histogram.buckets):
        labels.append(f"<= {2.0 ** (bucket + 1):g}")
        values.append(float(histogram.buckets[bucket]))
    if not labels or max(values) <= 0:
        return None
    return bar_chart(labels, values, title=title)


def _percentile_line(histogram: LogHistogram, unit: str) -> str:
    return (
        f"p50<={histogram.percentile(50):g}{unit} "
        f"p95<={histogram.percentile(95):g}{unit} "
        f"p99<={histogram.percentile(99):g}{unit} "
        f"(n={histogram.count})"
    )


def _histogram_dict(histogram: LogHistogram) -> dict:
    """Exact JSON reduction of a histogram (log2 bucket percentiles)."""
    if histogram.count == 0:
        return {"count": 0}
    return {
        "count": histogram.count,
        "p50": histogram.percentile(50),
        "p95": histogram.percentile(95),
        "p99": histogram.percentile(99),
    }


def render_trace_report(path) -> str:
    """The full ``trace-report`` text for one trace file."""
    records = read_trace(path)
    digest = summarize(records)
    lines = [
        f"trace report: {path}",
        f"records   {len(records)}",
        "types     "
        + " ".join(f"{name}={n}" for name, n in digest["counts"].items()),
        "",
    ]

    phases = digest["phases"]
    if phases:
        lines.append("phase breakdown")
        for name, row in phases.items():
            lines.append(
                f"  {name:<13} calls={row['calls']:<6} "
                f"wall={row['wall_s'] * 1000.0:9.2f}ms "
                f"op_cost={row['op_cost']:.0f}"
            )
        walls = [row["wall_s"] * 1000.0 for row in phases.values()]
        if max(walls) > 0:
            lines.append(
                bar_chart(list(phases), walls, title="phase wall time (ms)")
            )
        lines.append("")

    latency = digest["latency"]
    if latency.count:
        lines.append("assignment latency (virtual slots, arrival -> first commit)")
        lines.append("  " + _percentile_line(latency, ""))
        if digest["starved"]:
            lines.append(f"  starved tasks: {digest['starved']}")
        chart = _histogram_chart(latency, title="latency histogram (tasks per bucket)")
        if chart is not None:
            lines.append(chart)
        lines.append("")
    elif digest["starved"]:
        lines.append(f"assignment latency: all {digest['starved']} finalized tasks starved")
        lines.append("")

    event_wall = digest["event_wall"]
    if event_wall.count:
        lines.append("event apply wall (ms, log2 bucket upper bounds)")
        lines.append("  " + _percentile_line(event_wall, "ms"))
        lines.append("")

    queue_depth = digest["queue_depth"]
    if queue_depth.count:
        lines.append("queue depth at epoch end")
        lines.append("  " + _percentile_line(queue_depth, ""))
        chart = _histogram_chart(queue_depth, title="queue depth histogram (epochs per bucket)")
        if chart is not None:
            lines.append(chart)
        lines.append("")

    if digest["degrade"]:
        lines.append("degradation transitions")
        for record in digest["degrade"]:
            p99 = record.get("p99")
            p99_text = "-" if p99 is None else f"{p99:g}"
            lines.append(
                f"  epoch {record.get('epoch'):<4} t={record.get('now'):g} "
                f"{record.get('from_level')} -> {record.get('to_level')} "
                f"(queue={record.get('queue_depth')} p99={p99_text})"
            )
        lines.append("")

    stats = digest["shard_stats"]
    if stats is not None:
        owned = stats.get("tasks_per_shard", ())
        halos = stats.get("halo_workers_per_shard", ())
        lines.append("shard stats")
        for shard, tasks in enumerate(owned):
            halo = halos[shard] if shard < len(halos) else "-"
            lines.append(
                f"  shard/{shard}  owned_tasks={tasks} halo_workers={halo}"
            )
        if "halo_replication_factor" in stats:
            lines.append(
                "  replication_factor="
                f"{stats['halo_replication_factor']:g}"
            )
        lines.append("")

    if digest["migrations"]:
        lines.append("elastic migrations")
        for record in digest["migrations"]:
            lines.append(
                f"  t={record.get('now'):g} {record.get('kind')} "
                f"shard {record.get('shard')}: executor "
                f"{record.get('source')} -> {record.get('dest')} "
                f"(replayed {record.get('records_replayed')} records, "
                f"{record.get('events_replayed')} events, "
                f"v{record.get('map_version')})"
            )
        lines.append("")

    graph = SpanGraph(records)
    critical = graph.critical_path()
    if critical.total > 0:
        lines.append("causal analysis (virtual-cost units)")
        lines.append(f"  critical path: op_cost={critical.total:g}")
        lines.extend(f"  {row}" for row in critical.describe().splitlines())
        hot = graph.hot_tasks(5)
        if hot:
            lines.append(
                "  hot tasks: "
                + " ".join(f"task/{t}={c:g}" for t, c in hot)
            )
        scopes = graph.hot_scopes(5)
        if len(scopes) > 1:
            lines.append(
                "  hot scopes: "
                + " ".join(f"{s}={c:g}" for s, c in scopes)
            )

    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines)


def trace_report_json(path) -> dict:
    """The machine-readable ``trace-report --json`` payload.

    Everything except the wall-clock histograms is a deterministic
    function of the masked trace, so tooling can diff these payloads
    across runs of one spec.
    """
    records = read_trace(path)
    digest = summarize(records)
    graph = SpanGraph(records)
    critical = graph.critical_path()
    return {
        "records": len(records),
        "counts": digest["counts"],
        "phases": digest["phases"],
        "latency": _histogram_dict(digest["latency"]),
        "starved": digest["starved"],
        "event_wall_ms": _histogram_dict(digest["event_wall"]),
        "queue_depth": _histogram_dict(digest["queue_depth"]),
        "degrade": digest["degrade"],
        "shard_stats": digest["shard_stats"],
        "migrations": digest["migrations"],
        "causal": {
            "critical_path": {
                "total": critical.total,
                "steps": [list(step) for step in critical.steps],
            },
            "hot_tasks": [list(row) for row in graph.hot_tasks(5)],
            "hot_phases": [list(row) for row in graph.hot_phases(5)],
            "hot_scopes": [list(row) for row in graph.hot_scopes(5)],
            "tasks": {
                str(task_id): row
                for task_id, row in graph.tasks().items()
            },
        },
    }
