"""Counters, gauges, and deterministic log2 streaming histograms.

The registry follows the repo's determinism policy: every metric that
measures *work* (event counts, queue depths, op costs, virtual-time
latencies) is an exact function of the run and participates in the
registry's deterministic digest; metrics that measure *wall clock*
are flagged ``timing=True`` and excluded, so two runs of the same
spec produce byte-identical non-timing metric state.

:class:`LogHistogram` buckets observations by ``floor(log2(v))`` —
a fixed bucket layout needing no configuration, whose percentile
answers (nearest rank, bucket upper edge) are exact and deterministic
for any stream of values, with non-positive values collected in a
dedicated zero bucket (latency 0 is common: a task assigned in its
arrival epoch).
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = ["Counter", "Gauge", "LogHistogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "timing", "value")

    def __init__(self, name: str, *, timing: bool = False):
        self.name = name
        self.timing = timing
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def render(self) -> str:
        return f"{self.name} = {self.value}"


class Gauge:
    """A last-value-wins measurement (active sessions, pool budget)."""

    kind = "gauge"
    __slots__ = ("name", "timing", "value", "updates")

    def __init__(self, name: str, *, timing: bool = False):
        self.name = name
        self.timing = timing
        self.value = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value, "updates": self.updates}

    def render(self) -> str:
        return f"{self.name} = {self.value:g} ({self.updates} updates)"


class LogHistogram:
    """Streaming histogram over fixed ``floor(log2(v))`` buckets.

    ``observe(v)`` files ``v`` under bucket ``floor(log2(v))`` — i.e.
    the half-open range ``[2**b, 2**(b+1))`` — or under the dedicated
    zero bucket when ``v <= 0``.  :meth:`percentile` walks the sorted
    buckets to the nearest rank and answers the covering bucket's
    *upper edge* (0.0 for the zero bucket): a conservative, exact, and
    fully deterministic quantile bound that needs no stored samples.
    """

    kind = "histogram"
    __slots__ = ("name", "timing", "buckets", "zero_count", "count")

    def __init__(self, name: str = "", *, timing: bool = False):
        self.name = name
        self.timing = timing
        self.buckets: dict[int, int] = {}
        self.zero_count = 0
        self.count = 0

    def observe(self, value: float) -> None:
        """File one observation.

        Non-finite values are rejected with a typed
        :class:`~repro.errors.ConfigurationError` *before* any state
        changes: ``nan``/``inf`` have no log2 bucket, and silently
        counting them would skew every later percentile.
        """
        if not math.isfinite(value):
            raise ConfigurationError(
                f"histogram {self.name!r} cannot observe non-finite "
                f"value {value!r}"
            )
        self.count += 1
        if value <= 0:
            self.zero_count += 1
            return
        bucket = math.floor(math.log2(value))
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile upper bound (``q`` in [0, 100]).

        Returns 0.0 for an empty histogram or when the rank falls in
        the zero bucket.
        """
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * self.count)) if q > 0 else 1
        rank = min(rank, self.count)
        seen = self.zero_count
        if rank <= seen:
            return 0.0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if rank <= seen:
                return float(2.0 ** (bucket + 1))
        return 0.0  # unreachable: counts always cover the rank

    @staticmethod
    def bucket_edge(bucket: int) -> float:
        """Upper edge of one log2 bucket (what percentiles report)."""
        return float(2.0 ** (bucket + 1))

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "zero": self.zero_count,
            "buckets": {str(b): self.buckets[b] for b in sorted(self.buckets)},
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def render(self) -> str:
        return (
            f"{self.name} n={self.count} p50={self.percentile(50):g} "
            f"p95={self.percentile(95):g} p99={self.percentile(99):g}"
        )


class MetricsRegistry:
    """Named metrics, created on first touch, rendered sorted.

    ``timing=True`` metrics record wall clock: they are rendered for
    humans but excluded from :meth:`to_dict(include_timing=False)
    <to_dict>`, the deterministic view the bench suite digests.
    """

    __slots__ = ("_metrics",)

    def __init__(self):
        self._metrics: dict[str, object] = {}

    def _get(self, cls, name: str, timing: bool):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, timing=timing)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ConfigurationError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str, *, timing: bool = False) -> Counter:
        return self._get(Counter, name, timing)

    def gauge(self, name: str, *, timing: bool = False) -> Gauge:
        return self._get(Gauge, name, timing)

    def histogram(self, name: str, *, timing: bool = False) -> LogHistogram:
        return self._get(LogHistogram, name, timing)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def state(self) -> dict:
        """Exact JSON-native internal state, for the process boundary.

        Unlike :meth:`to_dict` (a reporting view with derived
        percentiles), this captures every field a metric accumulates —
        including the ``timing`` flag and gauge update counts — so
        :meth:`merge_state` on an empty registry reproduces this one
        exactly.
        """
        out: dict = {}
        for name, metric in sorted(self._metrics.items()):
            entry: dict = {"kind": metric.kind, "timing": metric.timing}
            if metric.kind == "counter":
                entry["value"] = metric.value
            elif metric.kind == "gauge":
                entry["value"] = metric.value
                entry["updates"] = metric.updates
            else:
                entry["count"] = metric.count
                entry["zero"] = metric.zero_count
                entry["buckets"] = {
                    str(bucket): metric.buckets[bucket]
                    for bucket in sorted(metric.buckets)
                }
            out[name] = entry
        return out

    def merge_state(self, state: dict) -> None:
        """Fold another registry's :meth:`state` into this one.

        Counters and histogram buckets add; gauges take the incoming
        value (last-wins, matching :meth:`Gauge.set`) while accumulating
        update counts.  Merging per-shard worker registries in shard-id
        order therefore reproduces the serial drain's registry exactly:
        shard scopes prefix every metric name, so no two shards ever
        contend for one gauge.
        """
        for name, entry in state.items():
            kind = entry["kind"]
            timing = entry["timing"]
            if kind == "counter":
                self.counter(name, timing=timing).inc(entry["value"])
            elif kind == "gauge":
                gauge = self.gauge(name, timing=timing)
                gauge.value = entry["value"]
                gauge.updates += entry["updates"]
            elif kind == "histogram":
                histogram = self.histogram(name, timing=timing)
                histogram.count += entry["count"]
                histogram.zero_count += entry["zero"]
                for bucket, count in entry["buckets"].items():
                    bucket = int(bucket)
                    histogram.buckets[bucket] = (
                        histogram.buckets.get(bucket, 0) + count
                    )
            else:
                raise ConfigurationError(
                    f"metric state {name!r} has unknown kind {kind!r}"
                )

    def to_dict(self, *, include_timing: bool = True) -> dict:
        """Sorted-name snapshot of every metric; with
        ``include_timing=False`` this is a deterministic function of
        the run (the obs suite's identity digest)."""
        return {
            name: metric.to_dict()
            for name, metric in sorted(self._metrics.items())
            if include_timing or not metric.timing
        }

    def render_lines(self) -> list[str]:
        """One human-readable line per metric, sorted by name."""
        return [
            self._metrics[name].render() for name in sorted(self._metrics)
        ]
