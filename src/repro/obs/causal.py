"""Causal span graphs over a run's trace records.

Every record the telemetry stack emits carries a deterministic
``causal`` id naming the *span* it belongs to (stamped by
:class:`~repro.obs.layer.TelemetryLayer`, the
:class:`~repro.obs.profile.PhaseProfiler`, the degradation layer, and
the elastic migration driver).  The ids form a fixed vocabulary:

========================  =============================================
``run``                   run-level bookkeeping (``open``, ``phases``,
                          ``trace-summary``, ``run-complete``, ...)
``task/<id>``             one task's lifecycle: its arrival ``event``,
                          every ``solve``/``reconcile`` span, each
                          ``commit``, and the ``finalize``
``epoch/<n>``             the n-th epoch boundary (``epoch`` records
                          and any ``degrade`` transition decided there)
``churn``                 worker join/leave and budget-refresh events
``journal``               durability activity (``snapshot`` records)
``shard/<n>``             elastic placement changes of logical shard n
                          (``migrate-out`` / ``migrate-in`` pairs)
========================  =============================================

:func:`causal_id` derives the same id from a record's fields alone, so
traces written before causal stamping still resolve.  Spans nest under
a two-level tree::

    run
    |- scope spans (one per shard scope; "main" when unscoped)
    |  `- causal spans carrying that scope's records
    `- unscoped causal spans (shard/<n> migrations, run bookkeeping)

Scopes are the *parallel* axis (one serving core each); spans within a
scope are serial.  That shape is what makes the **critical path**
exact in virtual-cost units: each record's ``op_cost`` (an
:class:`~repro.core.instrumentation.OpCounters` virtual cost, never
wall clock) accumulates into its span, the run's critical-path total
is the cost of the most expensive scope — the same max-over-parallel
accounting :class:`~repro.parallel.simcluster.SimCluster` models — and
the path itself descends greedily into the costliest child at every
level with lexical tie-breaking, so repeated runs of one spec
reproduce the path bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.trace import read_trace

__all__ = [
    "ROOT_SPAN",
    "CriticalPath",
    "Span",
    "SpanGraph",
    "causal_id",
]

ROOT_SPAN = "run"

#: Record types that belong to the run span itself when no better
#: attribution exists.
_RUN_TYPES = frozenset(
    {"open", "phases", "trace-summary", "run-complete", "shard-stats"}
)


def causal_id(record: dict) -> str:
    """The span id a record belongs to.

    Prefers the stamped ``causal`` field; otherwise derives the same id
    from the record's payload (the derivation IS the stamping contract,
    so pre-causal traces resolve identically).
    """
    stamped = record.get("causal")
    if stamped is not None:
        return stamped
    record_type = record.get("type")
    if record_type in _RUN_TYPES:
        return ROOT_SPAN
    if record_type == "event":
        if record.get("event") == "arrival" and "task_id" in record:
            return f"task/{record['task_id']}"
        return "churn"
    if record_type == "degrade":
        return f"epoch/{record.get('epoch', 0)}"
    if record_type == "epoch":
        return f"epoch/{record.get('epoch', 0)}"
    if record_type == "snapshot":
        return "journal"
    if record_type in ("migrate-out", "migrate-in"):
        return f"shard/{record.get('shard', 0)}"
    if "task_id" in record:
        return f"task/{record['task_id']}"
    return ROOT_SPAN


@dataclass(slots=True)
class Span:
    """One node of the span tree."""

    span_id: str
    parent_id: str | None
    #: ``seq`` of every record attributed to this span, in trace order.
    seqs: list[int] = field(default_factory=list)
    #: Exact virtual-cost total of the span's own records.
    self_cost: float = 0.0
    children: list[str] = field(default_factory=list)

    @property
    def records(self) -> int:
        return len(self.seqs)


@dataclass(slots=True)
class CriticalPath:
    """The max-cost root-to-leaf walk, in virtual-cost units."""

    #: ``(span_id, subtree_cost)`` from the root down.
    steps: list[tuple[str, float]]
    #: The run's critical-path cost: the costliest scope's total.
    total: float

    def describe(self) -> str:
        """One line per step, indented by depth."""
        return "\n".join(
            f"{'  ' * depth}{span_id}  op_cost={cost:g}"
            for depth, (span_id, cost) in enumerate(self.steps)
        )


class SpanGraph:
    """The span tree of one trace, with exact cost attribution."""

    def __init__(self, records: list[dict]):
        self.records = records
        self.spans: dict[str, Span] = {}
        #: seq -> causal span id (divergence localization reads this).
        self._span_of: dict[int, str] = {}
        self._subtree_cost: dict[str, float] = {}
        self._build()

    # -- construction ---------------------------------------------------
    @classmethod
    def from_trace(cls, path: str | Path) -> "SpanGraph":
        return cls(read_trace(path))

    def _ensure(self, span_id: str, parent_id: str | None) -> Span:
        span = self.spans.get(span_id)
        if span is None:
            span = Span(span_id=span_id, parent_id=parent_id)
            self.spans[span_id] = span
            if parent_id is not None:
                self._ensure(parent_id, self._parent_of(parent_id))
                self.spans[parent_id].children.append(span_id)
        return span

    @staticmethod
    def _parent_of(span_id: str) -> str | None:
        if span_id == ROOT_SPAN:
            return None
        if span_id.startswith("scope/"):
            return ROOT_SPAN
        return None  # resolved per record (scope-dependent)

    def _build(self) -> None:
        self._ensure(ROOT_SPAN, None)
        for record in self.records:
            span_id = causal_id(record)
            scope = record.get("scope")
            if span_id == ROOT_SPAN and scope is not None:
                # Scoped run-level work (reconcile rounds, per-scope
                # summaries) is the scope span's own cost.
                span_id = f"scope/{scope}"
                parent = ROOT_SPAN
            elif span_id == ROOT_SPAN or span_id.startswith("shard/"):
                # Run bookkeeping and cross-executor migrations sit
                # directly under the root, outside any one scope.
                parent = None if span_id == ROOT_SPAN else ROOT_SPAN
            else:
                parent = f"scope/{scope if scope is not None else 'main'}"
                self._ensure(parent, ROOT_SPAN)
            span = self._ensure(span_id, parent)
            seq = record.get("seq", len(self._span_of))
            span.seqs.append(seq)
            span.self_cost += float(record.get("op_cost", 0.0))
            self._span_of[seq] = span_id

    # -- lookups --------------------------------------------------------
    def span_of(self, seq: int) -> str | None:
        """The causal span containing record ``seq`` (divergence
        localization), ``None`` for an unknown seq."""
        return self._span_of.get(seq)

    def subtree_cost(self, span_id: str) -> float:
        """Exact virtual cost of a span plus all its descendants."""
        cached = self._subtree_cost.get(span_id)
        if cached is not None:
            return cached
        span = self.spans[span_id]
        total = span.self_cost + sum(
            self.subtree_cost(child) for child in span.children
        )
        self._subtree_cost[span_id] = total
        return total

    # -- attribution ----------------------------------------------------
    def tasks(self) -> dict[int, dict]:
        """Per-task end-to-end attribution from the task spans.

        ``{task_id: {op_cost, records, latency, quality, executed}}``
        — ``latency`` is the finalize record's virtual-slot assignment
        latency (``None`` for starved tasks that never committed),
        ``op_cost`` the exact solve + reconcile virtual cost charged to
        the task's span.
        """
        by_seq = {record.get("seq"): record for record in self.records}
        table: dict[int, dict] = {}
        for span_id, span in self.spans.items():
            if not span_id.startswith("task/"):
                continue
            task_id = int(span_id.split("/", 1)[1])
            row = {
                "op_cost": self.subtree_cost(span_id),
                "records": span.records,
                "latency": None,
                "quality": None,
                "executed": None,
            }
            for seq in span.seqs:
                record = by_seq.get(seq, {})
                if record.get("type") == "finalize":
                    row["latency"] = record.get("latency")
                    row["quality"] = record.get("quality")
                    row["executed"] = record.get("executed")
            table[task_id] = row
        return dict(sorted(table.items()))

    def phases(self) -> dict[str, float]:
        """Per-phase virtual-cost totals from the ``phases`` summary
        records (covers non-emitting spans like index repair too)."""
        totals: dict[str, float] = {}
        for record in self.records:
            if record.get("type") != "phases":
                continue
            for name, stat in record.get("phases", {}).items():
                totals[name] = totals.get(name, 0.0) + stat.get("op_cost", 0.0)
        return dict(sorted(totals.items()))

    def scopes(self) -> dict[str, float]:
        """Per-scope (per serving core) virtual-cost totals."""
        return {
            span_id.split("/", 1)[1]: self.subtree_cost(span_id)
            for span_id in sorted(self.spans)
            if span_id.startswith("scope/")
        }

    # -- hot spots ------------------------------------------------------
    @staticmethod
    def _top_k(costs: dict, k: int) -> list[tuple]:
        ranked = sorted(costs.items(), key=lambda item: (-item[1], str(item[0])))
        return ranked[: max(0, k)]

    def hot_tasks(self, k: int = 5) -> list[tuple[int, float]]:
        """The k costliest tasks as ``(task_id, op_cost)``."""
        return self._top_k(
            {task_id: row["op_cost"] for task_id, row in self.tasks().items()},
            k,
        )

    def hot_phases(self, k: int = 5) -> list[tuple[str, float]]:
        """The k costliest phases as ``(phase, op_cost)``."""
        return self._top_k(self.phases(), k)

    def hot_scopes(self, k: int = 5) -> list[tuple[str, float]]:
        """The k costliest shard scopes as ``(scope, op_cost)``."""
        return self._top_k(self.scopes(), k)

    # -- the critical path ----------------------------------------------
    def critical_path(self) -> CriticalPath:
        """Greedy max-cost descent from the root.

        Scopes are parallel, so the run's critical-path *total* is the
        costliest scope's subtree cost (unscoped spans under the root
        are bookkeeping and never dominate a serving scope; they are
        still eligible when no scope exists at all).  Ties break on the
        smaller span id, so the path is a pure function of the masked
        trace.
        """
        steps: list[tuple[str, float]] = []
        current = ROOT_SPAN
        scope_costs = {
            span_id: self.subtree_cost(span_id)
            for span_id in self.spans[ROOT_SPAN].children
        }
        total = max(scope_costs.values(), default=0.0)
        steps.append((ROOT_SPAN, self.subtree_cost(ROOT_SPAN)))
        while True:
            children = self.spans[current].children
            if not children:
                break
            best = min(
                children,
                key=lambda child: (-self.subtree_cost(child), child),
            )
            steps.append((best, self.subtree_cost(best)))
            current = best
        return CriticalPath(steps=steps, total=total)
