"""Trace querying and cross-run divergence localization.

:class:`TraceQuery` is a small chainable filter/aggregate API over a
run's trace records — by type, task, shard scope, epoch window, or seq
range — so tests and tools stop re-writing the same list
comprehensions over raw dicts.

:func:`diff_traces` is the divergence localizer: it compares two
traces under the masking contract (every ``timing`` sub-object
stripped, then canonical re-framing — the same bytes
:func:`~repro.obs.trace.masked_trace_bytes` gates on) and, when they
differ, names the **first divergent** ``seq``, both records, and the
causal span (:mod:`repro.obs.causal`) containing it.  A "plans differ"
failure becomes a one-line localization: *the runs forked at seq 41,
inside task/7, where run B committed worker 12 instead of 9*.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.journal.wal import frame_record
from repro.obs.causal import SpanGraph, causal_id
from repro.obs.trace import mask_timing, read_trace

__all__ = ["TraceDivergence", "TraceQuery", "diff_traces"]


def _load(records) -> list[dict]:
    if isinstance(records, (str, Path)):
        return read_trace(records)
    return list(records)


class TraceQuery:
    """Chainable filters and aggregates over trace records.

    Every filter returns a new query over the matching records (the
    underlying dicts are shared, never copied), so filters compose:
    ``TraceQuery.from_trace(p).of_type("commit").for_task(7).count()``.
    """

    __slots__ = ("records", "_epochs")

    def __init__(self, records, *, _epochs: list[int] | None = None):
        self.records: list[dict] = _load(records)
        #: Epoch index per record, aligned with ``records`` — the count
        #: of *earlier* ``epoch`` boundary records in the record's
        #: scope, so "epoch window [i, j)" means "between those
        #: boundaries".  Computed once on the root query and sliced
        #: through filters.
        if _epochs is None:
            _epochs = []
            seen: dict[object, int] = {}
            for record in self.records:
                scope = record.get("scope")
                _epochs.append(seen.get(scope, 0))
                if record.get("type") == "epoch":
                    seen[scope] = seen.get(scope, 0) + 1
        self._epochs = _epochs

    @classmethod
    def from_trace(cls, path: str | Path) -> "TraceQuery":
        return cls(read_trace(path))

    # -- filters --------------------------------------------------------
    def _filter(self, keep) -> "TraceQuery":
        kept = [i for i, record in enumerate(self.records) if keep(i, record)]
        return TraceQuery(
            [self.records[i] for i in kept],
            _epochs=[self._epochs[i] for i in kept],
        )

    def of_type(self, *types: str) -> "TraceQuery":
        """Records whose ``type`` is one of ``types``."""
        wanted = frozenset(types)
        return self._filter(lambda i, r: r.get("type") in wanted)

    def for_task(self, task_id: int) -> "TraceQuery":
        """One task's records (its causal span membership — the
        arrival event, every solve/reconcile span, commits, and the
        finalize)."""
        span = f"task/{task_id}"
        return self._filter(lambda i, r: causal_id(r) == span)

    def in_scope(self, scope: str | None) -> "TraceQuery":
        """Records of one shard scope (``None`` = the unscoped core)."""
        return self._filter(lambda i, r: r.get("scope") == scope)

    def in_epochs(self, lo: int = 0, hi: int | None = None) -> "TraceQuery":
        """Records in the half-open epoch window ``[lo, hi)`` of their
        own scope (records before the first boundary are epoch 0)."""
        return self._filter(
            lambda i, r: self._epochs[i] >= lo
            and (hi is None or self._epochs[i] < hi)
        )

    def in_seq_range(self, lo: int = 0, hi: int | None = None) -> "TraceQuery":
        """Records with ``lo <= seq < hi``."""
        return self._filter(
            lambda i, r: r.get("seq", -1) >= lo
            and (hi is None or r.get("seq", -1) < hi)
        )

    def where(self, predicate) -> "TraceQuery":
        """Records satisfying an arbitrary predicate."""
        return self._filter(lambda i, r: predicate(r))

    # -- aggregates -----------------------------------------------------
    def count(self) -> int:
        return len(self.records)

    def tally(self) -> dict[str, int]:
        """Record counts by type, sorted by type name."""
        return self.count_by("type")

    def count_by(self, key: str) -> dict:
        """Record counts grouped by a payload field (missing field
        groups under ``None``), sorted by group."""
        groups: dict = {}
        for record in self.records:
            value = record.get(key)
            groups[value] = groups.get(value, 0) + 1
        return dict(sorted(groups.items(), key=lambda kv: (kv[0] is None, str(kv[0]))))

    def sum(self, key: str) -> float:
        """Sum of a numeric payload field over records carrying it."""
        return sum(
            record[key]
            for record in self.records
            if isinstance(record.get(key), (int, float))
        )

    def first(self) -> dict | None:
        return self.records[0] if self.records else None

    def last(self) -> dict | None:
        return self.records[-1] if self.records else None


# ----------------------------------------------------------------------
# Cross-run divergence
# ----------------------------------------------------------------------
@dataclass(slots=True)
class TraceDivergence:
    """The first point where two masked traces disagree.

    ``seq`` is the first divergent record's sequence number; the
    records are the masked payloads from each side (``None`` when one
    trace ended first — a pure-prefix divergence); ``span`` is the
    causal span containing the divergence, resolved from whichever
    side still has a record there.
    """

    seq: int
    record_a: dict | None
    record_b: dict | None
    span: str

    def describe(self) -> str:
        lines = [f"first divergence at seq={self.seq} (span {self.span})"]
        for label, record in (("a", self.record_a), ("b", self.record_b)):
            if record is None:
                lines.append(f"  {label}: <trace ended>")
            else:
                keys = ", ".join(
                    f"{key}={record[key]!r}"
                    for key in sorted(record)
                    if key not in ("seq",)
                )
                lines.append(f"  {label}: {keys}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "span": self.span,
            "record_a": self.record_a,
            "record_b": self.record_b,
        }


def diff_traces(a, b) -> TraceDivergence | None:
    """Locate the first masked-byte divergence between two traces.

    ``a`` / ``b`` are trace file paths or record lists.  Returns
    ``None`` when the masked traces are byte-identical (the
    determinism contract two runs of one spec must meet), otherwise
    the :class:`TraceDivergence` at the first differing record —
    compared on canonical framed bytes, so field ordering and float
    formatting cannot produce false matches.
    """
    records_a = _load(a)
    records_b = _load(b)
    masked_a = [mask_timing(record) for record in records_a]
    masked_b = [mask_timing(record) for record in records_b]
    for i in range(max(len(masked_a), len(masked_b))):
        ra = masked_a[i] if i < len(masked_a) else None
        rb = masked_b[i] if i < len(masked_b) else None
        if (
            ra is not None
            and rb is not None
            and frame_record(ra) == frame_record(rb)
        ):
            continue
        witness = ra if ra is not None else rb
        seq = witness.get("seq", i)
        graph = SpanGraph(records_a if ra is not None else records_b)
        span = graph.span_of(seq)
        if span is None:
            span = causal_id(witness)
        return TraceDivergence(seq=seq, record_a=ra, record_b=rb, span=span)
    return None
