"""Structured, deterministic JSONL trace records.

One record per line, in the journal's canonical-JSON framing
(:func:`repro.journal.wal.frame_record`): an 8-hex-digit CRC32, a
space, compact sort-keys JSON, a newline.  Every record carries a
monotonic ``seq`` and a ``type`` (``open``, ``event``, ``solve``,
``reconcile``, ``commit``, ``finalize``, ``epoch``, ``snapshot``,
``phases``, ``run-complete``, ``trace-summary``).

Determinism contract: *all* wall-clock measurements live under each
record's ``timing`` key and nowhere else.  :func:`mask_timing` strips
that key, so :func:`masked_trace_bytes` of two runs of the same
:class:`~repro.runtime.RunSpec` are byte-identical — the trace is
diffable evidence, not just a log.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ConfigurationError
from repro.journal.wal import frame_record, unframe_record

__all__ = [
    "TraceRecorder",
    "mask_timing",
    "masked_trace_bytes",
    "read_trace",
]


class TraceRecorder:
    """Collects typed trace records; optionally streams them to disk.

    Records are always kept in memory (``.records``); with a ``path``
    each record is additionally framed and flushed to the file as soon
    as it is emitted, so a crashed run still leaves a readable trace
    prefix (the same torn-tail tolerance as the WAL).
    """

    __slots__ = ("records", "path", "next_seq", "_fh")

    def __init__(self, path: str | Path | None = None):
        self.records: list[dict] = []
        self.path = None if path is None else Path(path)
        self.next_seq = 0
        self._fh = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "wb")

    def record(self, record_type: str, **payload) -> dict:
        """Stamp and store one typed record (write-through if on disk)."""
        record = {"type": record_type, "seq": self.next_seq, **payload}
        self.next_seq += 1
        self.records.append(record)
        if self._fh is not None:
            self._fh.write(frame_record(record))
            self._fh.flush()
        return record

    def counts(self) -> dict[str, int]:
        """Record tally by type, sorted by type name."""
        tally: dict[str, int] = {}
        for record in self.records:
            tally[record["type"]] = tally.get(record["type"], 0) + 1
        return dict(sorted(tally.items()))

    @property
    def closed(self) -> bool:
        """True once no file handle remains open (or none ever was)."""
        return self._fh is None

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Unconditional close, success or error: every record is
        # already flushed, so the file is a valid trace prefix either
        # way.
        self.close()


def read_trace(path: str | Path) -> list[dict]:
    """Parse a trace file back into its records.

    A damaged *final* line is tolerated (a crash mid-record, exactly
    like a torn WAL tail); damage anywhere earlier raises
    :class:`~repro.errors.ConfigurationError`.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise ConfigurationError(f"cannot read trace {path}: {exc}") from exc
    records: list[dict] = []
    lines = raw.split(b"\n")
    tail = lines.pop() if lines else b""
    for i, line in enumerate(lines):
        record = unframe_record(line + b"\n")
        if record is None:
            if i == len(lines) - 1 and not tail:
                break  # torn final record: a crashed run's trace
            raise ConfigurationError(
                f"{path}: damaged trace record on line {i + 1}"
            )
        records.append(record)
    return records


def mask_timing(record: dict) -> dict:
    """The record without its ``timing`` sub-object (shallow copy)."""
    return {key: value for key, value in record.items() if key != "timing"}


def masked_trace_bytes(records) -> bytes:
    """Re-framed trace bytes with every ``timing`` key stripped.

    ``records`` is a record list or a trace file path.  Two runs of
    the same spec must produce *equal* masked bytes — the obs suite's
    trace-determinism gate compares exactly this.
    """
    if isinstance(records, (str, Path)):
        records = read_trace(records)
    return b"".join(frame_record(mask_timing(record)) for record in records)
