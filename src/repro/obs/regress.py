"""The continuous op-count regression ledger.

Every bench suite gates *invariants* (plan identity, zero telemetry
overhead, crash-recovery exactness) but none of them pins the absolute
cost of a run: a PR that doubles ``gain_evaluations`` everywhere
passes every identity gate as long as it doubles them consistently.
The ledger closes that hole.  A **fingerprint** of one run is the
deterministic cost evidence the repo already produces:

* the plan signature hash (what was computed),
* the full :class:`~repro.core.instrumentation.OpCounters` table,
  per shard for sharded runs (how much work it took),
* the trace record tally by type (what the run emitted),
* the causal critical path — total virtual cost and the greedy
  max-cost walk (:meth:`repro.obs.causal.SpanGraph.critical_path`)
  (where the cost concentrated).

``python -m repro bench-regress`` (:mod:`repro.bench.regresssuite`)
fingerprints a pinned set of smoke cells and compares them against the
**committed baselines** under ``benchmarks/baselines/`` — one JSON
file per cell, reviewed in diffs like any other source change.

Exactness policy: every field is compared **exactly** by default —
op counts are deterministic, so any drift is a real behaviour change.
A per-field relative tolerance may be declared for a comparison
(``tolerances={"critical_path.total": 0.05}``) when a suite
deliberately accepts bounded movement; nothing in the repo uses one
yet, and wall-clock never appears in a fingerprint at all.
``--update`` regenerates the files (the PR diff then *shows* the cost
change); ``--check`` makes CI fail on any unexplained drift.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

from repro import __version__
from repro.core.instrumentation import OpCounters
from repro.obs.causal import SpanGraph

__all__ = [
    "LEDGER_FORMAT",
    "compare_fingerprints",
    "default_baselines_dir",
    "fingerprint_outcome",
    "git_commit",
    "load_baseline",
    "write_baseline",
]

LEDGER_FORMAT = 1

_REPO_ROOT = Path(__file__).resolve().parents[3]


def default_baselines_dir() -> Path:
    """The committed ledger directory: ``benchmarks/baselines/``."""
    return _REPO_ROOT / "benchmarks" / "baselines"


def git_commit() -> str:
    """The current short commit hash, or ``"unknown"`` outside git.

    Provenance only — comparisons never read it.  It is what lets the
    REPORT.md ledger section show how stale each baseline is.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def _counters_dict(counters) -> dict | list[dict]:
    """OpCounters (or the sharded tuple) as stable nonzero dicts."""
    if isinstance(counters, tuple):
        return [_counters_dict(c) for c in counters]
    if isinstance(counters, OpCounters):
        return counters.to_dict(nonzero_only=True)
    return dict(counters)


def fingerprint_outcome(outcome) -> dict:
    """The ledger fingerprint of one telemetered
    :class:`~repro.runtime.factory.RunOutcome`.

    Requires ``outcome.telemetry`` (the trace tally and span graph
    come from its recorder).  Every field is a deterministic function
    of the spec, so two runs of one spec fingerprint identically —
    the regress suite asserts exactly that before trusting a
    fingerprint enough to compare it against the ledger.
    """
    from repro.bench.report import signature_hash

    recorder = outcome.telemetry.recorder
    graph = SpanGraph(recorder.records)
    critical = graph.critical_path()
    return {
        "plan": signature_hash(outcome.plan_signature),
        "plan_records": len(outcome.plan_signature),
        "counters": _counters_dict(outcome.counters),
        "trace": recorder.counts(),
        "critical_path": {
            "total": critical.total,
            "steps": [list(step) for step in critical.steps],
        },
    }


def _flatten(value, prefix: str, out: dict) -> None:
    if isinstance(value, dict):
        for key in value:
            _flatten(value[key], f"{prefix}.{key}" if prefix else str(key), out)
    elif isinstance(value, list):
        out[f"{prefix}.length"] = len(value)
        for i, item in enumerate(value):
            _flatten(item, f"{prefix}[{i}]", out)
    else:
        out[prefix] = value


def compare_fingerprints(
    baseline: dict, current: dict, *, tolerances: dict | None = None
) -> list[str]:
    """Field-by-field drift between two fingerprints.

    Returns human-readable drift strings (empty = identical under the
    policy).  ``tolerances`` maps a flattened field path *prefix* to a
    relative tolerance; any numeric field under that prefix passes if
    ``|current - baseline| <= tol * max(|baseline|, 1)``.  Everything
    else must match exactly.
    """
    tolerances = tolerances or {}
    flat_base: dict = {}
    flat_cur: dict = {}
    _flatten(baseline, "", flat_base)
    _flatten(current, "", flat_cur)
    drifts: list[str] = []
    for path in sorted(set(flat_base) | set(flat_cur)):
        if path not in flat_base:
            drifts.append(f"{path}: not in baseline (now {flat_cur[path]!r})")
            continue
        if path not in flat_cur:
            drifts.append(f"{path}: vanished (was {flat_base[path]!r})")
            continue
        base, cur = flat_base[path], flat_cur[path]
        if base == cur:
            continue
        tol = next(
            (
                tolerances[prefix]
                for prefix in tolerances
                if path == prefix or path.startswith(prefix + ".")
                or path.startswith(prefix + "[")
            ),
            None,
        )
        if (
            tol is not None
            and isinstance(base, (int, float))
            and isinstance(cur, (int, float))
            and abs(cur - base) <= tol * max(abs(base), 1.0)
        ):
            continue
        drifts.append(f"{path}: {base!r} -> {cur!r}")
    return drifts


# ----------------------------------------------------------------------
# The committed files
# ----------------------------------------------------------------------
def _baseline_path(baselines_dir: str | Path, cell: str) -> Path:
    return Path(baselines_dir) / f"{cell}.json"


def load_baseline(baselines_dir: str | Path, cell: str) -> dict | None:
    """The committed baseline document for ``cell`` (None = missing)."""
    path = _baseline_path(baselines_dir, cell)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def write_baseline(
    baselines_dir: str | Path, cell: str, fingerprint: dict
) -> Path:
    """Write one cell's baseline (meta stamps provenance, not policy)."""
    path = _baseline_path(baselines_dir, cell)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "format": LEDGER_FORMAT,
        "cell": cell,
        "meta": {"commit": git_commit(), "version": __version__},
        "fingerprint": fingerprint,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
