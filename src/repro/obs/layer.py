"""The telemetry bundle and its serving-layer attachment.

:class:`Telemetry` owns one run's observability state — a
:class:`~repro.obs.trace.TraceRecorder`, a
:class:`~repro.obs.metrics.MetricsRegistry`, and one
:class:`~repro.obs.profile.PhaseProfiler` per shard scope — and hands
the factory the pieces it composes:

* :meth:`Telemetry.layers` — the per-shard
  :class:`TelemetryLayer` tuple for a streaming core's ``layers=``;
* :meth:`Telemetry.journal_wrap` — a wrapper that dresses the shard's
  :class:`~repro.journal.layer.JournalLayer` in a
  :class:`~repro.obs.profile.ProfiledLayer` so durability cost lands
  in the ``journal`` phase;
* :meth:`Telemetry.profiler` — the profiler the plain serving round
  threads into ``assign(profiler=...)``.

Layer ordering matters: the journal layer comes first (log-before-
apply is its contract), telemetry second, so an injected crash in
``before_event`` leaves the trace without a dangling record for the
never-applied event.

All shards share one recorder; the sharded drain is serial, so the
record interleaving is deterministic and a single trace file tells the
whole deployment's story with per-record ``scope`` stamps.
"""

from __future__ import annotations

import time

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PhaseProfiler, ProfiledLayer
from repro.obs.trace import TraceRecorder
from repro.runtime.layers import ServingLayer
from repro.stream.events import (
    BudgetRefresh,
    TaskArrival,
    WorkerJoin,
    WorkerLeave,
)

__all__ = ["Telemetry", "TelemetryLayer"]


def _event_summary(event) -> dict:
    """Compact, JSON-native identification of one input event."""
    if isinstance(event, TaskArrival):
        return {
            "event": "arrival",
            "time": event.time,
            "task_id": event.task.task_id,
            "slots": event.task.num_slots,
            "budget": event.budget,
        }
    if isinstance(event, WorkerJoin):
        return {
            "event": "join",
            "time": event.time,
            "worker_id": event.worker.worker_id,
        }
    if isinstance(event, WorkerLeave):
        return {"event": "leave", "time": event.time, "worker_id": event.worker_id}
    if isinstance(event, BudgetRefresh):
        return {"event": "refresh", "time": event.time, "amount": event.amount}
    return {"event": type(event).__name__}


class TelemetryLayer(ServingLayer):
    """Observe a streaming core at every seam hook.

    Emits typed trace records (event apply, commit, finalize, epoch,
    snapshot, run completion) and feeds the metrics registry; at bind
    time it also hands the core its phase profiler (the server's step
    loop opens ``index-repair``/``solve`` spans itself) and locates an
    attached journal layer so WAL append/snapshot counts surface as
    metrics.

    Observation only: the layer never touches solver state, sessions,
    or op counters — the obs suite hard-asserts a telemetered run is
    byte-identical to a bare one.
    """

    def __init__(self, *, recorder=None, registry=None, profiler=None,
                 scope: str | None = None):
        self.recorder = recorder
        self.registry = registry
        self.profiler = profiler
        self.scope = scope
        self._server = None
        self._journal = None
        self._event_start = 0.0
        self._rejected_before = 0
        self._epoch_start = time.perf_counter()
        self._appends_seen = 0
        self._snapshots_seen = 0

    # -- plumbing ------------------------------------------------------
    def _name(self, name: str) -> str:
        return name if self.scope is None else f"{self.scope}/{name}"

    def _record(self, record_type: str, *, timing: dict | None = None,
                **payload) -> None:
        if self.recorder is None:
            return
        if self.scope is not None:
            payload["scope"] = self.scope
        if timing is not None:
            payload["timing"] = timing
        self.recorder.record(record_type, **payload)

    def bind(self, server) -> None:
        self._server = server
        self._epoch_start = time.perf_counter()
        if self.profiler is not None:
            self.profiler.bind_counters(server.counters)
            server.profiler = self.profiler
        from repro.journal.layer import JournalLayer

        for layer in server.layers:
            inner = getattr(layer, "inner", layer)
            if isinstance(inner, JournalLayer):
                self._journal = inner
                break

    # -- event seam ----------------------------------------------------
    def before_event(self, event, metrics) -> None:
        self._event_start = time.perf_counter()
        self._rejected_before = metrics.tasks_rejected

    def after_event(self, event, metrics) -> None:
        wall = time.perf_counter() - self._event_start
        summary = _event_summary(event)
        if isinstance(event, TaskArrival):
            admission = (
                "rejected"
                if metrics.tasks_rejected > self._rejected_before
                else "queued"
            )
            summary["admission"] = admission
        if self.registry is not None:
            self.registry.counter(
                self._name(f"events/{summary['event']}")
            ).inc()
            self.registry.histogram(
                self._name("event_apply_ms"), timing=True
            ).observe(wall * 1000.0)
            if isinstance(event, TaskArrival):
                self.registry.counter(
                    self._name(f"admission/{summary['admission']}")
                ).inc()
        causal = (
            f"task/{event.task.task_id}"
            if isinstance(event, TaskArrival)
            else "churn"
        )
        self._record("event", causal=causal, timing={"wall_s": wall}, **summary)

    # -- assignment seam -----------------------------------------------
    def before_commit(self, session, worker_id, gslot, slot, cost) -> None:
        if self.registry is not None:
            self.registry.counter(self._name("commits")).inc()
        self._record(
            "commit",
            causal=f"task/{session.task.task_id}",
            task_id=session.task.task_id,
            slot=slot,
            worker_id=worker_id,
            gslot=gslot,
            cost=cost,
        )

    def before_finalize(self, session, metrics) -> None:
        starved = session.first_assign_time is None
        latency = (
            None if starved
            else session.first_assign_time - session.arrival_time
        )
        if self.registry is not None:
            self.registry.counter(self._name("tasks/finalized")).inc()
            if starved:
                self.registry.counter(self._name("tasks/starved")).inc()
            else:
                # Virtual-time latency: deterministic, so this
                # histogram's percentiles are exact run properties.
                self.registry.histogram(
                    self._name("latency_slots")
                ).observe(latency)
        self._record(
            "finalize",
            causal=f"task/{session.task.task_id}",
            task_id=session.task.task_id,
            quality=session.quality,
            spent=session.budget.spent,
            executed=len(session.records),
            latency=latency,
        )

    # -- epoch / run seam ----------------------------------------------
    def _journal_accounting(self) -> None:
        journal_layer = self._journal
        if journal_layer is None:
            return
        journal = journal_layer.journal
        appends = journal.wal.records_appended
        if self.registry is not None and appends > self._appends_seen:
            # With sync=True every append fsyncs, so this doubles as
            # the fsync count.
            self.registry.counter(self._name("journal/appends")).inc(
                appends - self._appends_seen
            )
        self._appends_seen = appends
        snapshots = journal.snapshots_written
        if snapshots > self._snapshots_seen:
            if self.registry is not None:
                self.registry.counter(self._name("journal/snapshots")).inc(
                    snapshots - self._snapshots_seen
                )
            self._record(
                "snapshot",
                causal="journal",
                snapshots=snapshots,
                wal_records=appends,
                wal_bytes=journal.wal.bytes_written,
            )
            self._snapshots_seen = snapshots

    def on_epoch_end(self, metrics, now) -> None:
        wall = time.perf_counter() - self._epoch_start
        self._epoch_start = time.perf_counter()
        depth = len(self._server._pending)
        active = len(self._server._active)
        if self.registry is not None:
            self.registry.histogram(self._name("queue_depth")).observe(depth)
            self.registry.gauge(self._name("active_sessions")).set(active)
            self.registry.histogram(
                self._name("epoch_wall_ms"), timing=True
            ).observe(wall * 1000.0)
        self._record(
            "epoch",
            causal=f"epoch/{metrics.epochs}",
            epoch=metrics.epochs,
            now=now,
            queue_depth=depth,
            active=active,
            timing={"wall_s": wall},
        )
        self._journal_accounting()

    def on_run_complete(self, metrics) -> None:
        # The journal layer (ordered first) already wrote its final
        # snapshot; account for it before closing the scope out.
        self._journal_accounting()
        self._record(
            "run-complete",
            causal="run",
            events=metrics.total_events,
            epochs=metrics.epochs,
            tasks_completed=metrics.tasks_completed,
            tasks_starved=metrics.tasks_starved,
            budget_spent=metrics.budget_spent,
        )


class Telemetry:
    """One run's observability bundle (see the module docstring)."""

    def __init__(self, *, trace_path=None, shards: int = 1, spec: dict | None = None):
        self.recorder = TraceRecorder(trace_path)
        self.registry = MetricsRegistry()
        self.trace_path = trace_path
        scopes = [None] if shards <= 1 else [f"shard-{i}" for i in range(shards)]
        self._profilers = [
            PhaseProfiler(recorder=self.recorder, registry=self.registry,
                          scope=scope)
            for scope in scopes
        ]
        self._layers = [
            TelemetryLayer(recorder=self.recorder, registry=self.registry,
                           profiler=profiler, scope=profiler.scope)
            for profiler in self._profilers
        ]
        self._finished = False
        if spec is not None:
            # Filesystem paths are environment, not behaviour: two runs
            # of the same spec pointed at different journal/trace
            # directories must still produce identical masked traces,
            # so the open record keeps only path *presence*.
            spec = {
                key: ("<path>" if key in ("journal", "trace_out")
                      and value is not None else value)
                for key, value in spec.items()
            }
            self.recorder.record("open", causal="run", format=1, spec=spec)

    # -- composition seams ---------------------------------------------
    def profiler(self, shard: int = 0) -> PhaseProfiler:
        """The phase profiler of one shard scope (0 when unsharded)."""
        return self._profilers[shard]

    def layers(self, shard: int = 0) -> tuple:
        """The ``layers=`` tuple entry for one shard's core."""
        return (self._layers[shard],)

    def journal_wrap(self, shard: int = 0):
        """A wrapper attributing a journal layer's hooks to the
        ``journal`` phase of this shard's profiler."""
        profiler = self._profilers[shard]
        return lambda layer: ProfiledLayer(layer, profiler, phase="journal")

    def record_shard_stats(self, stats: dict) -> None:
        """Publish a partition-shape summary (the stable dict of
        :meth:`~repro.shard.streaming.ShardedStreamMetrics.shard_stats`
        or :meth:`~repro.shard.partitioner.ShardMap.stats`) as
        per-shard gauges plus one ``shard-stats`` trace record."""
        for shard, owned in enumerate(stats.get("tasks_per_shard", ())):
            self.registry.gauge(f"shard/{shard}/owned_tasks").set(owned)
        for shard, halo in enumerate(stats.get("halo_workers_per_shard", ())):
            self.registry.gauge(f"shard/{shard}/halo_workers").set(halo)
        if "halo_replication_factor" in stats:
            self.registry.gauge("shard/replication_factor").set(
                stats["halo_replication_factor"]
            )
        self.recorder.record("shard-stats", causal="run", **stats)

    # -- lifecycle ------------------------------------------------------
    def finish(self) -> None:
        """Emit the per-scope phase summaries and the record tally,
        then close the trace file (idempotent)."""
        if self._finished:
            return
        self._finished = True
        for profiler in self._profilers:
            if not profiler.stats:
                continue
            phases, timing = profiler.summary()
            payload = {"phases": phases}
            if profiler.scope is not None:
                payload["scope"] = profiler.scope
            self.recorder.record(
                "phases", causal="run", timing={"wall_s": timing}, **payload
            )
        self.recorder.record(
            "trace-summary", causal="run", records=self.recorder.counts()
        )
        self.recorder.close()

    def abort(self) -> None:
        """Close the trace file without the summary records (idempotent).

        The error-path counterpart of :meth:`finish`: a run that raises
        mid-stream must still leave a flushed, parseable trace prefix —
        every record already written is on disk (the recorder writes
        through), so all that remains is releasing the file handle.
        Summary records are deliberately withheld: a ``trace-summary``
        on a partial trace would claim a completeness the run never
        reached.
        """
        if self._finished:
            return
        self._finished = True
        self.recorder.close()

    def report(self) -> str:
        """The operator-facing telemetry summary the CLI appends."""
        lines = ["telemetry report", "----------------"]
        for profiler in self._profilers:
            if not profiler.stats:
                continue
            scope = "" if profiler.scope is None else f" [{profiler.scope}]"
            lines.append(f"phases{scope}:")
            lines.extend(f"  {row}" for row in profiler.report_lines())
        if len(self.registry):
            lines.append("metrics:")
            lines.extend(f"  {row}" for row in self.registry.render_lines())
        if self.trace_path is not None:
            lines.append(
                f"trace     {self.recorder.next_seq} records -> {self.trace_path}"
            )
        else:
            lines.append(
                f"trace     {self.recorder.next_seq} records (in memory; "
                "--trace-out PATH writes JSONL)"
            )
        return "\n".join(lines)
