"""Phase profiling: wall time and OpCounters deltas per named phase.

The streaming loop's interesting cost structure is invisible in an
aggregate counter: how much of an epoch went to repairing session
tree indexes versus running the greedy solve, how expensive the
sharded round's reconciliation pass was, what the journal layer's
hooks cost.  :class:`PhaseProfiler` answers that with *named phases*
(``index-repair`` / ``solve`` / ``reconcile`` / ``journal``): each
phase span measures wall time and snapshots/diffs the relevant
:class:`~repro.core.instrumentation.OpCounters`, so every phase gets
both a human timing and a deterministic op-cost attribution.

Zero-overhead contract: a span only *reads* counters (snapshot +
diff); it never increments them, so a profiled run's op counts equal
the bare run's exactly.  Wall time is recorded but, per the repo's
determinism policy, never gated.

:class:`ProfiledLayer` wraps any other serving layer and attributes
its hook time to one phase — the factory wraps the journal layer so
durability's cost shows up as the ``journal`` phase.

:func:`run_profiled` is the CLI's legacy ``--profile`` implementation
(raw cProfile hotspots), kept as a deprecated spelling: phase
attribution via ``--telemetry`` is the supported path.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.instrumentation import OpCounters
from repro.runtime.layers import ServingLayer

__all__ = [
    "PhaseProfiler",
    "PhaseStat",
    "ProfiledLayer",
    "reset_profile_note",
    "run_profiled",
]


@dataclass(slots=True)
class PhaseStat:
    """Accumulated cost of one named phase."""

    calls: int = 0
    wall_s: float = 0.0
    ops: OpCounters = field(default_factory=OpCounters)


class PhaseProfiler:
    """Attribute wall time and op-count deltas to named phases.

    ``recorder``/``registry`` are optional sinks: with a recorder,
    emitting spans become typed trace records (record type = phase
    name, wall clock isolated under ``timing``); with a registry,
    every span feeds a deterministic ``phase_ops/<name>`` histogram
    and a timing-flagged ``phase_wall_ms/<name>`` one.  ``scope``
    prefixes metric names and stamps records (per-shard attribution).
    """

    __slots__ = ("recorder", "registry", "scope", "stats", "_counters")

    def __init__(self, *, recorder=None, registry=None, scope: str | None = None):
        self.recorder = recorder
        self.registry = registry
        self.scope = scope
        self.stats: dict[str, PhaseStat] = {}
        self._counters: OpCounters | None = None

    def bind_counters(self, counters: OpCounters) -> None:
        """Default counters for spans that do not pass their own
        (the telemetry layer binds the server's at attach time)."""
        self._counters = counters

    def _metric(self, name: str) -> str:
        return name if self.scope is None else f"{self.scope}/{name}"

    @contextmanager
    def phase(self, name: str, *, counters: OpCounters | None = None,
              emit: bool = True, **fields_):
        """One phase span; yields a dict for fields known only at exit.

        ``counters`` overrides the bound default (the sharded plain
        round keeps separate solve/reconcile counters); ``emit=False``
        accumulates stats and metrics without a per-span trace record
        (index repair runs once per session per epoch — recording each
        would dwarf the trace).  Keyword ``fields_`` and anything the
        caller puts into the yielded dict land in the emitted record.
        """
        counters = self._counters if counters is None else counters
        before = None if counters is None else counters.snapshot()
        span: dict = {}
        start = time.perf_counter()
        try:
            yield span
        finally:
            wall = time.perf_counter() - start
            ops = OpCounters() if before is None else counters.diff(before)
            stat = self.stats.setdefault(name, PhaseStat())
            stat.calls += 1
            stat.wall_s += wall
            stat.ops.merge(ops)
            if self.registry is not None:
                self.registry.histogram(
                    self._metric(f"phase_ops/{name}")
                ).observe(ops.virtual_cost())
                self.registry.histogram(
                    self._metric(f"phase_wall_ms/{name}"), timing=True
                ).observe(wall * 1000.0)
            if emit and self.recorder is not None:
                payload = dict(fields_)
                payload.update(span)
                if self.scope is not None:
                    payload["scope"] = self.scope
                # Causal attribution: a span working one task belongs
                # to that task's span; anything else (reconcile rounds,
                # repairs) is run-level work within its scope.
                payload.setdefault(
                    "causal",
                    f"task/{payload['task_id']}" if "task_id" in payload
                    else "run",
                )
                self.recorder.record(
                    name,
                    ops=ops.to_dict(nonzero_only=True),
                    op_cost=ops.virtual_cost(),
                    timing={"wall_s": wall},
                    **payload,
                )

    def summary(self) -> tuple[dict, dict]:
        """``(phases, timing)``: the deterministic per-phase totals and
        the wall-clock totals, separated so the ``phases`` trace record
        can keep wall time under ``timing``."""
        phases = {
            name: {
                "calls": stat.calls,
                "op_cost": stat.ops.virtual_cost(),
                "ops": stat.ops.to_dict(nonzero_only=True),
            }
            for name, stat in sorted(self.stats.items())
        }
        timing = {name: self.stats[name].wall_s for name in sorted(self.stats)}
        return phases, timing

    def report_lines(self) -> list[str]:
        """Human-readable per-phase table rows."""
        return [
            f"{name:<13} calls={stat.calls:<5} "
            f"wall={stat.wall_s * 1000.0:8.2f}ms "
            f"op_cost={stat.ops.virtual_cost():.0f}"
            for name, stat in sorted(self.stats.items())
        ]


class ProfiledLayer(ServingLayer):
    """Attribute another layer's hook time to one named phase.

    The wrapped layer stays reachable as ``.inner`` (the journal-layer
    lookup unwraps it), and every hook runs inside a non-emitting span
    so the phase totals pick up its cost without flooding the trace.
    """

    __slots__ = ("inner", "profiler", "phase_name")

    def __init__(self, inner: ServingLayer, profiler: PhaseProfiler,
                 phase: str = "journal"):
        self.inner = inner
        self.profiler = profiler
        self.phase_name = phase

    def bind(self, server) -> None:
        self.inner.bind(server)

    def before_event(self, event, metrics) -> None:
        with self.profiler.phase(self.phase_name, emit=False):
            self.inner.before_event(event, metrics)

    def after_event(self, event, metrics) -> None:
        with self.profiler.phase(self.phase_name, emit=False):
            self.inner.after_event(event, metrics)

    def before_commit(self, session, worker_id, gslot, slot, cost) -> None:
        with self.profiler.phase(self.phase_name, emit=False):
            self.inner.before_commit(session, worker_id, gslot, slot, cost)

    def before_finalize(self, session, metrics) -> None:
        with self.profiler.phase(self.phase_name, emit=False):
            self.inner.before_finalize(session, metrics)

    def on_epoch_end(self, metrics, now) -> None:
        with self.profiler.phase(self.phase_name, emit=False):
            self.inner.on_epoch_end(metrics, now)

    def on_run_complete(self, metrics) -> None:
        with self.profiler.phase(self.phase_name, emit=False):
            self.inner.on_run_complete(metrics)


#: Whether the ``--profile`` deprecation note already printed this
#: process.  Suites re-enter the CLI handler many times per run; one
#: note per invocation would drown their stderr in repeats of the
#: same fact.
_profile_note_printed = False


def reset_profile_note() -> None:
    """Re-arm the once-per-process deprecation note (for tests)."""
    global _profile_note_printed
    _profile_note_printed = False


def run_profiled(handler, args) -> int:
    """Run a CLI handler under cProfile; print the top-15 hotspots.

    The legacy ``--profile`` output format (deprecated): raw cProfile
    rows on stdout, unchanged for scripts that scrape them, plus a
    one-line pointer at the phase-attributed replacement on stderr —
    printed exactly once per process, however many handlers run.
    """
    import cProfile
    import pstats

    global _profile_note_printed
    if not _profile_note_printed:
        _profile_note_printed = True
        print(
            "note: --profile prints raw cProfile output (deprecated); "
            "--telemetry / trace-report give phase-attributed timings",
            file=sys.stderr,
        )
    profiler = cProfile.Profile()
    code = profiler.runcall(handler, args)
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(15)
    return code
