"""Runtime observability: structured traces, metrics, phase profiling.

The serving runtime's only visibility used to be ``OpCounters`` totals
and the coarse ``StreamMetrics`` summary.  This package adds the three
observability primitives a production deployment needs, as *composable*
pieces that never perturb the run they observe:

* :class:`~repro.obs.trace.TraceRecorder` — structured JSONL span and
  event records using the journal's canonical-JSON framing
  (:mod:`repro.journal.wal`).  Wall-clock lives only under each
  record's ``timing`` sub-object, so two traces of the same
  :class:`~repro.runtime.RunSpec` are byte-identical once timing is
  masked (:func:`~repro.obs.trace.masked_trace_bytes`).
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  fixed-bucket log2 streaming histograms with exact, deterministic
  p50/p95/p99 (:class:`~repro.obs.metrics.LogHistogram`).
* :class:`~repro.obs.profile.PhaseProfiler` — attributes wall time
  *and* :class:`~repro.core.instrumentation.OpCounters` deltas to
  named phases (index-repair / solve / reconcile / journal), with
  :class:`~repro.obs.profile.ProfiledLayer` wrapping any other serving
  layer's hooks into a phase.

:class:`~repro.obs.layer.Telemetry` bundles all three per run;
:class:`~repro.obs.layer.TelemetryLayer` is the
:class:`~repro.runtime.layers.ServingLayer` that plugs the bundle into
the streaming seam.  ``RunSpec(telemetry=True, trace_out=...)`` is the
spec-level switch; ``python -m repro trace-report`` renders a trace.

Zero-overhead contract: attaching telemetry must not change the plan,
the stream metrics, or a single op count — ``python -m repro
bench-obs`` gates it across the {plain, stream} x shards x journal
grid.

On top of the record stream sits the trace analytics engine:

* :mod:`repro.obs.causal` — every record carries a deterministic
  ``causal`` span id; :class:`~repro.obs.causal.SpanGraph` builds the
  per-run span tree, attributes per-task end-to-end cost, and computes
  the critical path in exact virtual-cost units.
* :mod:`repro.obs.query` — :class:`~repro.obs.query.TraceQuery`
  filter/aggregate chains and :func:`~repro.obs.query.diff_traces`
  first-divergence localization (``python -m repro trace-diff``).
* :mod:`repro.obs.regress` — the committed op-count regression ledger
  (``benchmarks/baselines/``, ``python -m repro bench-regress``).
"""

from repro.obs.causal import CriticalPath, Span, SpanGraph, causal_id
from repro.obs.layer import Telemetry, TelemetryLayer
from repro.obs.metrics import Counter, Gauge, LogHistogram, MetricsRegistry
from repro.obs.profile import (
    PhaseProfiler,
    PhaseStat,
    ProfiledLayer,
    reset_profile_note,
    run_profiled,
)
from repro.obs.query import TraceDivergence, TraceQuery, diff_traces
from repro.obs.trace import (
    TraceRecorder,
    mask_timing,
    masked_trace_bytes,
    read_trace,
)

__all__ = [
    "Counter",
    "CriticalPath",
    "Gauge",
    "LogHistogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "PhaseStat",
    "ProfiledLayer",
    "Span",
    "SpanGraph",
    "Telemetry",
    "TelemetryLayer",
    "TraceDivergence",
    "TraceQuery",
    "TraceRecorder",
    "causal_id",
    "diff_traces",
    "mask_timing",
    "masked_trace_bytes",
    "read_trace",
    "reset_profile_note",
    "run_profiled",
]
