"""Command-line interface: ``python -m repro <command>``.

Nine subcommands cover the common workflows:

* ``run`` — execute one declarative :class:`~repro.runtime.RunSpec`
  (``--spec file.json``), the spec-driven face of the composable
  runtime: serving mode, solver variant, sharding, and durability are
  spec fields resolved by :func:`repro.runtime.build_runtime`.
* ``solve-single`` — build a synthetic scenario and assign one task
  (policies: approx, approx_star, random).
* ``solve-multi`` — multi-task assignment under a shared budget
  (objectives: sum, min; optional virtual-clock cores).
* ``cover`` — the dual problem: minimum cost to reach a target
  fraction of the maximum quality.
* ``simulate`` — event-driven streaming mode: tasks and workers
  arrive/depart over a virtual clock (``--task-rate``,
  ``--burstiness``, ``--join-rate``, ``--mean-lifetime`` shape the
  arrival processes; ``--index-mode`` picks incremental vs
  rebuild-every-epoch index maintenance).  Internally one
  ``RunSpec`` built from the flags.
* ``matrix`` — the runtime equivalence matrix: sweeps
  {plain, stream} x shards {1, 2, 4} x journal {off, on} x backend
  {python, numpy}, hard-asserting that every composed runtime is
  byte-identical (plan signature, stream metrics, op counters) to its
  legacy-class counterpart; persisted as
  ``benchmarks/BENCH_matrix.json``.
* ``bench-perf`` — the deterministic perf suite: seed-pinned solver
  scenarios comparing kernel backends and candidate-search modes,
  persisted as ``benchmarks/BENCH_perf.json``.
* ``bench-shard`` — the shard-scaling suite: seed-pinned serving
  rounds through the halo-partitioned sharded coordinator at shard
  counts 1/2/4/8, asserting byte-identical plans, persisted as
  ``benchmarks/BENCH_shard.json``.
* ``bench-journal`` — the durability suite: crash/recover at every
  event boundary through the journaled runtimes (plain and sharded),
  hard-asserting byte-identical recovered runs, persisted as
  ``benchmarks/BENCH_journal.json``.
* ``bench-degrade`` — the graceful-degradation suite: approx-off
  byte-identity, certificate soundness (measured quality ratio >=
  the certified ratio for every approximate plan), and
  overload-useful-work gates under fault injection, persisted as
  ``benchmarks/BENCH_degrade.json``.
* ``trace-report`` / ``trace-diff`` — the trace analytics pair:
  summarize one telemetry trace (``--json`` for tooling), or compare
  two traces under the timing mask and localize the first divergent
  record and its causal span.
* ``bench-par`` — the parallel-executor suite: the same seed-pinned
  scenarios solved under ``serial``/``thread``/``process`` executors
  at shard counts 1/2/4/8, hard-asserting byte-identical plans,
  metrics, and op counters across executors while reporting (never
  gating) measured wall clock next to the modeled ``SimCluster``
  makespan, persisted as ``benchmarks/BENCH_par.json``.
* ``bench-regress`` — the continuous op-count regression ledger:
  fingerprint every suite's smoke cells (op counters, trace record
  tallies, virtual-cost critical path) against the committed
  ``benchmarks/baselines/``; ``--check`` gates CI, ``--update``
  regenerates the ledger.

Every command prints a compact report; ``--seed`` makes runs
reproducible.  The solve, simulate, and bench commands accept
``--backend {python,numpy}`` (identical plans, different speed) and
``--profile`` to print the top cProfile hotspots of the run — both
flags are attached through one shared helper so every subcommand
spells them identically.  ``simulate --shards N`` routes the trace
over a sharded streaming deployment (``--halo`` sizes the worker
replication margin).  ``simulate --journal PATH`` write-ahead-logs
the run (``--snapshot-every`` paces snapshots); ``--crash-at K``
injects a kill after K events, and ``--resume`` recovers from the
journal and finishes the run — byte-identically to an uninterrupted
one.  ``simulate --approx {top_c,floor,auto}`` trades plan quality
for work under a certified quality ratio (``--top-c`` / ``--floor``
size the degradation; ``auto`` switches modes at runtime from queue
depth and the telemetry p99).  ``simulate --inject PLAN.json``
replays a fault-injection plan (worker-region outages, flash crowds,
op-budget slowdowns) against the trace.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

from repro.core.cover import MinCostCoverSolver
from repro.core.evaluator import EVALUATOR_BACKENDS
from repro.core.quality import max_quality
from repro.engine.costs import SingleTaskCostTable
from repro.engine.server import TCSCServer
from repro.errors import ConfigurationError, SpecError
from repro.runtime import RunSpec, WorkloadSpec, build_runtime, recover_runtime
from repro.stream.session import INDEX_MODES
from repro.workloads.scenario import ScenarioConfig, build_scenario
from repro.workloads.spatial import Distribution

__all__ = ["main", "build_parser"]


def _add_profile_flag(p: argparse.ArgumentParser) -> None:
    """Attach the shared ``--profile`` flag."""
    p.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the top-15 cumulative hotspots",
    )


def _add_backend_flag(p: argparse.ArgumentParser) -> None:
    """Attach the shared ``--backend`` flag."""
    p.add_argument(
        "--backend",
        choices=list(EVALUATOR_BACKENDS),
        default="python",
        help="quality-kernel backend (identical plans, different speed)",
    )


def _add_solver_flags(p: argparse.ArgumentParser) -> None:
    """The backend/profile pair every solving subcommand carries."""
    _add_backend_flag(p)
    _add_profile_flag(p)


def _positive_int(value: str) -> int:
    """Parse a strictly-positive integer argument."""
    try:
        count = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}") from None
    if count < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {count}")
    return count


def _max_workers_arg(value: str) -> int:
    """Parse ``--max-workers`` through the shared executor validation
    so the CLI and the spec reject the same values with the same text."""
    from repro.par.executor import validate_max_workers

    try:
        count = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}") from None
    try:
        validate_max_workers(count)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return count


def _halo_spec(value: str):
    """Parse ``--halo``: the literal ``auto`` or a non-negative radius."""
    if value == "auto":
        return value
    try:
        radius = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"halo must be 'auto' or a radius, got {value!r}"
        ) from None
    if radius < 0:
        raise argparse.ArgumentTypeError(f"halo radius must be >= 0, got {radius}")
    return radius


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Time-continuous spatial crowdsourcing (TCSC) assignment",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--slots", type=int, default=100, help="subtasks per task (m)")
        p.add_argument("--workers", type=int, default=500, help="worker pool size")
        p.add_argument(
            "--distribution",
            choices=[d.value for d in Distribution],
            default="uniform",
            help="task-location distribution",
        )
        p.add_argument("--seed", type=int, default=7, help="scenario seed")
        p.add_argument("--k", type=int, default=3, help="interpolation neighbours")
        p.add_argument(
            "--budget-fraction",
            type=float,
            default=0.25,
            help="budget as a fraction of the average full-task cost",
        )
        _add_solver_flags(p)

    run = sub.add_parser(
        "run",
        help="execute one declarative RunSpec (the composable runtime)",
    )
    run.add_argument("--spec", default=None, metavar="PATH",
                     help="RunSpec JSON file (defaults apply for every "
                          "omitted field; omit the flag for the default spec)")
    run.add_argument("--mode", choices=["plain", "batch", "stream"],
                     default=None, help="override the spec's serving mode")
    run.add_argument("--shards", type=_positive_int, default=None,
                     help="override the spec's shard count")
    run.add_argument("--journal", default=None, metavar="PATH",
                     help="override the spec's journal directory")
    run.add_argument("--seed", type=int, default=None,
                     help="override the spec's workload seed")
    run.add_argument("--print-spec", action="store_true",
                     help="print the effective spec as JSON and exit")
    run.add_argument("--backend", choices=list(EVALUATOR_BACKENDS),
                     default=None,
                     help="override the spec's quality-kernel backend")
    run.add_argument("--telemetry", action="store_true",
                     help="attach the observability layer (span tracing, "
                          "metrics, phase profiling) and print its report")
    run.add_argument("--trace-out", default=None, metavar="PATH",
                     help="write the structured JSONL trace here "
                          "(implies --telemetry; inspect with trace-report)")
    _add_profile_flag(run)

    single = sub.add_parser("solve-single", help="assign one TCSC task")
    common(single)
    single.add_argument(
        "--policy",
        choices=["approx", "approx_star", "random"],
        default="approx_star",
    )

    multi = sub.add_parser("solve-multi", help="assign a task set")
    common(multi)
    multi.add_argument("--tasks", type=int, default=10, help="number of tasks")
    multi.add_argument("--objective", choices=["sum", "min"], default="sum")
    multi.add_argument(
        "--cores",
        type=int,
        default=None,
        help="run the task-level parallel framework on this many simulated cores",
    )

    cover = sub.add_parser("cover", help="minimum cost for a quality target")
    common(cover)
    cover.add_argument(
        "--target",
        type=float,
        default=0.8,
        help="target quality as a fraction of log2(m)",
    )

    sim = sub.add_parser(
        "simulate", help="event-driven streaming assignment over a virtual clock"
    )
    sim.add_argument("--seed", type=int, default=7, help="scenario seed")
    sim.add_argument("--horizon", type=int, default=100,
                     help="arrival window in global slots")
    sim.add_argument("--task-rate", type=float, default=0.15,
                     help="mean task arrivals per slot (Poisson)")
    sim.add_argument("--burstiness", type=float, default=0.0,
                     help="0 = Poisson arrivals; (0, 1] = on/off bursts")
    sim.add_argument("--task-slots", type=int, default=24,
                     help="subtasks per arriving task (m)")
    sim.add_argument("--initial-workers", type=int, default=40,
                     help="workers present at t=0")
    sim.add_argument("--join-rate", type=float, default=1.0,
                     help="worker joins per slot (Poisson)")
    sim.add_argument("--mean-lifetime", type=float, default=25.0,
                     help="mean worker lifetime in slots (exponential)")
    sim.add_argument("--early-leave-prob", type=float, default=0.3,
                     help="chance a worker churns out before its advertised end")
    sim.add_argument(
        "--distribution",
        choices=[d.value for d in Distribution],
        default="uniform",
        help="task-location distribution",
    )
    sim.add_argument("--epoch", type=float, default=5.0,
                     help="assignment-round period in virtual slots")
    sim.add_argument("--index-mode", choices=list(INDEX_MODES),
                     default="incremental",
                     help="tree-index maintenance under churn")
    sim.add_argument("--max-active", type=int, default=8,
                     help="admission-window size (concurrent live tasks)")
    sim.add_argument("--queue-depth", type=int, default=16,
                     help="pending tasks beyond this are rejected")
    sim.add_argument("--budget-fraction", type=float, default=0.25,
                     help="per-task budget as a fraction of its full cost")
    sim.add_argument("--k", type=int, default=3, help="interpolation neighbours")
    sim.add_argument("--shards", type=_positive_int, default=1,
                     help="route the trace over this many spatial shards "
                          "(1 = the plain streaming server)")
    sim.add_argument("--halo", type=_halo_spec, default="auto",
                     help="worker-replication margin for sharded mode: "
                          "'auto' or a radius in domain units")
    sim.add_argument("--elastic", action="store_true",
                     help="elastic sharding: load-triggered shard "
                          "split/merge/migration between executors, "
                          "plan-identical to the static placement "
                          "(requires --shards >= 2)")
    sim.add_argument("--migrate-at", dest="migrate_at", type=int,
                     default=None, metavar="EPOCH",
                     help="script one shard migration at the EPOCH-th "
                          "epoch boundary (hottest shard -> coldest "
                          "other executor; implies elastic mode)")
    sim.add_argument("--hotspot-drift", dest="hotspot_drift", type=float,
                     default=0.0, metavar="D",
                     help="arrival preset: late arrivals relocate onto one "
                          "spatial hotspot with probability D * t/horizon "
                          "(the elastic skew input; 0 disables)")
    sim.add_argument("--journal", default=None, metavar="PATH",
                     help="journal directory: write-ahead-log every event "
                          "and snapshot server state (one journal per shard "
                          "in sharded mode)")
    sim.add_argument("--snapshot-every", type=int, default=None, metavar="N",
                     help="epochs between journal snapshots (default 4; "
                          "0 = final only; on --resume, default keeps the "
                          "interrupted run's cadence)")
    sim.add_argument("--crash-at", type=int, default=None, metavar="K",
                     help="fault injection: kill the run after K events "
                          "(requires --journal; recover with --resume)")
    sim.add_argument("--resume", action="store_true",
                     help="recover from --journal (latest snapshot + log "
                          "replay) and finish the interrupted run; the "
                          "journal itself supplies the server configuration "
                          "and shard layout")
    sim.add_argument("--sync", action="store_true",
                     help="fsync the write-ahead log on every append "
                          "(durability against machine crashes, not just "
                          "process kills; slower)")
    sim.add_argument("--approx", choices=["off", "top_c", "floor", "auto"],
                     default="off",
                     help="certified-approximation mode: top_c bounds the "
                          "candidate search, floor terminates low-gain "
                          "greedy steps early, auto switches exact -> "
                          "top_c -> floor -> shed at runtime from load "
                          "(requires --telemetry); every degraded plan "
                          "carries a certified quality ratio")
    sim.add_argument("--top-c", dest="top_c", type=_positive_int,
                     default=None, metavar="C",
                     help="candidate-search width for --approx top_c/auto")
    sim.add_argument("--floor", type=float, default=None, metavar="F",
                     help="quality floor in (0, 1] for --approx floor/auto: "
                          "stop a plan when marginal gain drops below F x "
                          "the first committed gain")
    sim.add_argument("--slo-p99", dest="slo_p99", type=float, default=None,
                     help="latency SLO (virtual slots) for --approx auto: "
                          "escalate degradation when the p99 assignment "
                          "latency exceeds this")
    sim.add_argument("--inject", default=None, metavar="PATH",
                     help="fault-injection plan (JSON): worker-region "
                          "outages, flash crowds, per-shard op-budget "
                          "slowdowns, applied deterministically to the "
                          "trace (incompatible with --resume)")
    sim.add_argument("--telemetry", action="store_true",
                     help="attach the observability layer (span tracing, "
                          "metrics, phase profiling) and print its report")
    sim.add_argument("--trace-out", default=None, metavar="PATH",
                     help="write the structured JSONL trace here "
                          "(implies --telemetry; inspect with trace-report)")
    sim.add_argument("--executor", default="serial", metavar="KIND",
                     help="where per-shard solves run: serial (in-process, "
                          "the default), thread, or process (real cores; "
                          "work units cross the boundary as exact JSON "
                          "snapshots, so plans stay byte-identical)")
    sim.add_argument("--max-workers", dest="max_workers",
                     type=_max_workers_arg, default=None, metavar="N",
                     help="cap the executor's worker pool (requires "
                          "--executor thread|process; default: one per "
                          "shard, bounded by the host's cores for "
                          "process executors)")
    _add_solver_flags(sim)

    perf = sub.add_parser(
        "bench-perf",
        help="deterministic perf suite -> benchmarks/BENCH_perf.json",
    )
    perf.add_argument("--smoke", action="store_true",
                      help="smallest scenario only (CI smoke mode)")
    perf.add_argument("--results-dir", default=None,
                      help="override benchmarks/results output directory")
    _add_profile_flag(perf)

    shard = sub.add_parser(
        "bench-shard",
        help="shard-scaling suite -> benchmarks/BENCH_shard.json",
    )
    shard.add_argument("--smoke", action="store_true",
                       help="smallest scenarios only (CI smoke mode)")
    shard.add_argument("--results-dir", default=None,
                       help="override benchmarks/results output directory")
    _add_solver_flags(shard)

    par = sub.add_parser(
        "bench-par",
        help="parallel-executor suite (cross-executor byte-identity "
             "gates + non-gating wall-clock vs modeled makespan) -> "
             "benchmarks/BENCH_par.json",
    )
    par.add_argument("--smoke", action="store_true",
                     help="smallest scenarios only (CI smoke mode; "
                          "identity gates still run, wall clock is "
                          "still only reported)")
    par.add_argument("--results-dir", default=None,
                     help="override benchmarks/results output directory")

    journal = sub.add_parser(
        "bench-journal",
        help="durability suite (crash/recovery exactness + journal "
             "overhead) -> benchmarks/BENCH_journal.json",
    )
    journal.add_argument("--smoke", action="store_true",
                         help="smallest scenario only (CI smoke mode)")
    journal.add_argument("--results-dir", default=None,
                         help="override benchmarks/results output directory")
    _add_solver_flags(journal)

    matrix = sub.add_parser(
        "matrix",
        help="runtime equivalence matrix (composed vs legacy-class, "
             "byte-identical) -> benchmarks/BENCH_matrix.json",
    )
    matrix.add_argument("--smoke", action="store_true",
                        help="reduced grid (CI smoke mode)")
    matrix.add_argument("--results-dir", default=None,
                        help="override benchmarks/results output directory")
    _add_profile_flag(matrix)

    trace_report = sub.add_parser(
        "trace-report",
        help="summarize a telemetry trace (phase timings, latency "
             "histograms, degradation transitions, shard stats) from "
             "its JSONL file alone",
    )
    trace_report.add_argument("trace", metavar="PATH",
                              help="trace file written by --trace-out")
    trace_report.add_argument("--json", action="store_true",
                              help="machine-readable JSON summary instead "
                                   "of the text report")

    trace_diff = sub.add_parser(
        "trace-diff",
        help="compare two telemetry traces under the timing mask and "
             "localize the first divergent record and its causal span "
             "(exit 0 identical, 1 divergent, 2 error)",
    )
    trace_diff.add_argument("trace_a", metavar="PATH_A",
                            help="first trace file (written by --trace-out)")
    trace_diff.add_argument("trace_b", metavar="PATH_B",
                            help="second trace file")
    trace_diff.add_argument("--json", action="store_true",
                            help="machine-readable JSON divergence report")

    obs = sub.add_parser(
        "bench-obs",
        help="observability suite (telemetry-off identity + zero "
             "op-count overhead + trace determinism) -> "
             "benchmarks/BENCH_obs.json",
    )
    obs.add_argument("--smoke", action="store_true",
                     help="smallest scenarios only (CI smoke mode)")
    obs.add_argument("--results-dir", default=None,
                     help="override benchmarks/results output directory")

    degrade = sub.add_parser(
        "bench-degrade",
        help="graceful-degradation suite (approx-off identity + "
             "certificate soundness + overload useful work) -> "
             "benchmarks/BENCH_degrade.json",
    )
    degrade.add_argument("--smoke", action="store_true",
                         help="smallest scenarios only (CI smoke mode)")
    degrade.add_argument("--results-dir", default=None,
                         help="override benchmarks/results output directory")

    elastic = sub.add_parser(
        "bench-elastic",
        help="elasticity suite (migrate-at-every-boundary exactness + "
             "skew rebalancing gain + elastic-off identity) -> "
             "benchmarks/BENCH_elastic.json",
    )
    elastic.add_argument("--smoke", action="store_true",
                         help="executors=2 arms only (CI smoke mode)")
    elastic.add_argument("--results-dir", default=None,
                         help="override benchmarks/results output directory")

    regress = sub.add_parser(
        "bench-regress",
        help="continuous op-count regression ledger: fingerprint every "
             "suite's smoke cells (op counters + trace tallies + "
             "critical path) against benchmarks/baselines/ -> "
             "benchmarks/BENCH_regress.json",
    )
    regress.add_argument("--check", action="store_true",
                         help="CI mode: exit 1 on any drift from the "
                              "committed baselines (or a missing baseline)")
    regress.add_argument("--update", action="store_true",
                         help="regenerate the committed baselines from the "
                              "current code (review the diff before "
                              "committing)")
    regress.add_argument("--results-dir", default=None,
                         help="override benchmarks/results output directory")
    regress.add_argument("--baselines-dir", default=None,
                         help="override the benchmarks/baselines ledger "
                              "directory")
    return parser


def _scenario(args, num_tasks: int = 1):
    return build_scenario(
        ScenarioConfig(
            num_tasks=num_tasks,
            num_slots=args.slots,
            num_workers=args.workers,
            distribution=Distribution(args.distribution),
            seed=args.seed,
            k=args.k,
            budget_fraction=args.budget_fraction,
        )
    )


def _cmd_solve_single(args) -> int:
    scenario = _scenario(args)
    server = TCSCServer(scenario.pool, scenario.bbox, k=args.k, backend=args.backend)
    report = server.assign_single(
        scenario.single_task, scenario.budget, policy=args.policy, seed=args.seed
    )
    task = scenario.single_task
    print(f"policy={args.policy} m={task.num_slots} workers={args.workers}")
    print(f"assigned {len(report.assignment)} subtasks, "
          f"spent {report.total_cost:.3f} / {scenario.budget:.3f}")
    print(f"quality {report.qualities[task.task_id]:.4f} "
          f"(max {max_quality(task.num_slots):.4f})")
    return 0


def _cmd_solve_multi(args) -> int:
    scenario = _scenario(args, num_tasks=args.tasks)
    budget = scenario.budget * args.tasks
    server = TCSCServer(scenario.pool, scenario.bbox, k=args.k, backend=args.backend)
    report = server.assign_multi(
        scenario.tasks, budget, objective=args.objective, cores=args.cores
    )
    print(f"objective={args.objective} tasks={args.tasks} "
          f"cores={'serial' if args.cores is None else args.cores}")
    print(f"assigned {len(report.assignment)} subtasks, "
          f"spent {report.total_cost:.3f} / {budget:.3f}")
    print(f"qsum {report.sum_quality:.4f}  qmin {report.min_quality:.4f}")
    return 0


def _cmd_cover(args) -> int:
    scenario = _scenario(args)
    task = scenario.single_task
    costs = SingleTaskCostTable(task, scenario.fresh_registry())
    target = args.target * max_quality(task.num_slots)
    result = MinCostCoverSolver(
        task, costs, k=args.k, target_quality=target, backend=args.backend
    ).solve()
    print(f"target quality {target:.4f} ({args.target:.0%} of log2(m))")
    print(f"reached {result.quality:.4f} with {len(result.assignment)} subtasks "
          f"at cost {result.cost:.3f}")
    return 0


def _stream_spec(args) -> RunSpec:
    """One ``RunSpec`` from the ``simulate`` flag set — the single
    place the streaming CLI's knobs meet the runtime's fields."""
    return RunSpec(
        mode="stream",
        workload=WorkloadSpec(
            seed=args.seed,
            distribution=args.distribution,
            horizon=args.horizon,
            task_rate=args.task_rate,
            burstiness=args.burstiness,
            task_slots=args.task_slots,
            initial_workers=args.initial_workers,
            join_rate=args.join_rate,
            mean_lifetime=args.mean_lifetime,
            early_leave_prob=args.early_leave_prob,
            hotspot_drift=args.hotspot_drift,
        ),
        backend=args.backend,
        k=args.k,
        epoch_length=args.epoch,
        index_mode=args.index_mode,
        budget_fraction=args.budget_fraction,
        max_active_tasks=args.max_active,
        max_queue_depth=args.queue_depth,
        shards=args.shards,
        halo=args.halo,
        elastic=(
            "fixed" if args.migrate_at is not None
            else ("auto" if args.elastic else "off")
        ),
        migrate_at=args.migrate_at,
        journal=args.journal,
        snapshot_every=4 if args.snapshot_every is None else args.snapshot_every,
        sync=args.sync and args.journal is not None,
        crash_after_events=None if args.resume else args.crash_at,
        telemetry=args.telemetry or args.trace_out is not None,
        trace_out=args.trace_out,
        approx=args.approx,
        approx_top_c=args.top_c,
        approx_floor=args.floor,
        slo_p99=args.slo_p99,
        executor=args.executor,
        max_workers=args.max_workers,
    ).validate()


def _cmd_simulate(args) -> int:
    if args.journal is None and (args.crash_at is not None or args.resume):
        print("--crash-at/--resume require --journal PATH", file=sys.stderr)
        return 2
    if args.journal is not None and not args.resume:
        from repro.journal.wal import journal_kind

        if journal_kind(args.journal) is not None:
            # Starting fresh would truncate the log and delete every
            # snapshot — the only copy of an interrupted run.
            print(
                f"journal at {args.journal} already exists; pass --resume to "
                "recover it, or point --journal at a fresh directory",
                file=sys.stderr,
            )
            return 2
    if args.inject is not None and args.resume:
        # A resumed run replays the journaled trace; re-injecting
        # faults would desync it from the interrupted run.
        print("--inject is incompatible with --resume", file=sys.stderr)
        return 2
    injections = ()
    if args.inject is not None:
        from repro.degrade.chaos import load_injections

        try:
            injections = load_injections(args.inject)
        except (ConfigurationError, OSError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
    try:
        spec = _stream_spec(args)
    except SpecError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    runtime = build_runtime(spec)
    scenario = runtime.scenario()  # built lazily; never touches the journal
    if injections:
        from repro.degrade.chaos import apply_injections
        from repro.runtime.factory import StreamRuntime

        try:
            scenario = apply_injections(scenario, injections)
            runtime = StreamRuntime(spec, scenario=scenario, chaos=injections)
            runtime.server  # resolve pairing errors before printing
        except SpecError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        kinds = ",".join(i.kind for i in injections)
        print(f"inject: {len(injections)} injections ({kinds})")
    print(f"index_mode={args.index_mode} epoch={args.epoch:g} seed={args.seed}")
    print(f"trace: {scenario.task_count} tasks, {scenario.worker_count} workers "
          f"over {args.horizon} slots")
    if (
        args.crash_at is not None
        and not args.resume
        and args.crash_at >= len(scenario.events)
    ):
        _warn_past_trace_end(
            "--crash-at", args.crash_at, len(scenario.events), "event",
            "the run will complete without crashing",
        )
    if args.migrate_at is not None and scenario.events:
        trace_epochs = math.ceil(scenario.events[-1].time / args.epoch)
        if args.migrate_at >= trace_epochs:
            _warn_past_trace_end(
                "--migrate-at", args.migrate_at, trace_epochs, "epoch",
                "the migration may never fire",
            )
    if args.resume:
        if spec.telemetry:
            print("note: telemetry is not composed onto recovered runs; "
                  "the resumed drain runs bare", file=sys.stderr)
        # The trace is regenerated from the workload flags (same seed
        # => same events); the *server* configuration comes from the
        # journal itself, so recovery cannot mis-configure the run.
        return _simulate_resume(args, scenario)
    if args.shards > 1:
        print(f"shards={args.shards} halo={args.halo}")
    if spec.executor != "serial":
        line = f"executor={spec.executor}"
        if spec.max_workers is not None:
            line += f" max_workers={spec.max_workers}"
        print(line)
    if spec.elastic != "off":
        line = f"elastic={spec.elastic}"
        if spec.migrate_at is not None:
            line += f" migrate_at={spec.migrate_at}"
        print(line)

    def drive():
        outcome = runtime.run()
        if spec.elastic == "fixed" and outcome.server.controller.unfired():
            # The settle loop ended before the scripted boundary —
            # the sibling condition to a past-end --crash-at.
            print(
                f"warning: --migrate-at {spec.migrate_at} never fired "
                "(the trace settled before that epoch boundary)",
                file=sys.stderr,
            )
        if outcome.telemetry is None:
            return outcome.report_text
        return f"{outcome.report_text}\n{outcome.telemetry.report()}"

    return _simulate_report(
        drive,
        journal=spec.journal,
        recover_hint="rerun the same command with --resume to recover",
    )


def _warn_past_trace_end(flag, value, boundary_count, unit, consequence) -> None:
    """Warn that a scheduled-boundary flag points past the trace end.

    Shared by ``--crash-at`` (event boundaries) and ``--migrate-at``
    (epoch boundaries): past the end nothing is left to interrupt or
    migrate, so the run proceeds normally — warn instead of silently
    completing a run whose trigger can never fire.
    """
    print(
        f"warning: {flag} {value} is at or beyond the trace's last "
        f"{unit} boundary ({boundary_count} {unit}s); {consequence}",
        file=sys.stderr,
    )


def _simulate_report(drive, *, journal, recover_hint) -> int:
    """Print ``drive()``'s report, translating an injected crash into
    operator guidance instead of a traceback."""
    from repro.journal.layer import InjectedCrash

    try:
        print(drive())
    except InjectedCrash as exc:
        print(f"crash injected: {exc}")
        print(f"journal preserved at {journal}; {recover_hint}")
    return 0


def _simulate_resume(args, scenario) -> int:
    """Recover from the journal and finish the interrupted run.

    Whether the journal is sharded is read off the journal root itself
    (``meta.json`` marks a sharded deployment), so resuming never
    depends on repeating ``--shards``.  ``--crash-at`` stays armed
    during the resumed run (double-fault testing: crash, recover,
    crash again); ``--snapshot-every`` overrides the interrupted run's
    cadence when given.
    """
    try:
        recovered = recover_runtime(
            args.journal,
            sync=args.sync,
            snapshot_every=args.snapshot_every,
            crash_after_events=args.crash_at,
        )
    except SpecError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if recovered.kind == "sharded":
        for shard, info in enumerate(recovered.recovery):
            print(f"recovery shard {shard}: snapshot={info.snapshot_loaded} "
                  f"restored={info.events_restored} replayed={info.events_replayed}")
    else:
        info = recovered.recovery
        print(f"recovery: snapshot={info.snapshot_loaded} "
              f"restored={info.events_restored} replayed={info.events_replayed} "
              f"records_scanned={info.records_scanned}")
    return _simulate_report(
        lambda: recovered.resume(scenario.events).report(),
        journal=args.journal,
        recover_hint="rerun the same command to recover again",
    )


def _cmd_run(args) -> int:
    """Execute one declarative RunSpec (``--spec file.json``)."""
    from repro.bench.report import signature_hash

    try:
        spec = RunSpec() if args.spec is None else RunSpec.from_json(args.spec)
        overrides = {
            name: getattr(args, name)
            for name in ("mode", "backend", "shards", "journal")
            if getattr(args, name) is not None
        }
        if args.telemetry or args.trace_out is not None:
            overrides["telemetry"] = True
        if args.trace_out is not None:
            overrides["trace_out"] = args.trace_out
        if args.seed is not None:
            overrides["workload"] = WorkloadSpec.from_dict(
                {**spec.workload.to_dict(), "seed": args.seed}
            )
        if overrides:
            spec = spec.replace(**overrides)
        spec.validate()
    except SpecError as exc:
        print(f"invalid spec: {exc}", file=sys.stderr)
        return 2
    if args.print_spec:
        print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
        return 0
    if spec.journal is not None:
        from repro.journal.wal import journal_kind

        if journal_kind(spec.journal) is not None:
            # Same guard as simulate: starting fresh would wipe the
            # only copy of an interrupted run.
            print(
                f"journal at {spec.journal} already exists; recover it with "
                "`simulate --resume`, or point the spec at a fresh directory",
                file=sys.stderr,
            )
            return 2
    runtime = build_runtime(spec)
    if spec.mode == "stream":
        scenario = runtime.scenario()
        print(f"trace: {scenario.task_count} tasks, {scenario.worker_count} "
              f"workers over {spec.workload.horizon} slots")

    def drive():
        outcome = runtime.run()
        text = (
            f"{outcome.report_text}\n"
            f"plan      {signature_hash(outcome.plan_signature)} "
            f"({len(outcome.plan_signature)} records)"
        )
        if outcome.telemetry is not None:
            text += f"\n{outcome.telemetry.report()}"
        return text

    return _simulate_report(
        drive,
        journal=spec.journal,
        recover_hint="recover it with `simulate --journal PATH --resume` "
                     "using the spec's workload parameters",
    )


def _cmd_bench_perf(args) -> int:
    from repro.bench.perfsuite import run_and_write

    return run_and_write(smoke=args.smoke, results_dir=args.results_dir)


def _cmd_bench_shard(args) -> int:
    from repro.bench.shardsuite import run_and_write

    return run_and_write(
        smoke=args.smoke, results_dir=args.results_dir, backend=args.backend
    )


def _cmd_bench_par(args) -> int:
    from repro.bench.parsuite import run_and_write

    return run_and_write(smoke=args.smoke, results_dir=args.results_dir)


def _cmd_bench_journal(args) -> int:
    from repro.bench.journalsuite import run_and_write

    return run_and_write(
        smoke=args.smoke, results_dir=args.results_dir, backend=args.backend
    )


def _cmd_matrix(args) -> int:
    from repro.bench.matrixsuite import run_and_write

    return run_and_write(smoke=args.smoke, results_dir=args.results_dir)


def _cmd_bench_obs(args) -> int:
    from repro.bench.obssuite import run_and_write

    return run_and_write(smoke=args.smoke, results_dir=args.results_dir)


def _cmd_bench_degrade(args) -> int:
    from repro.bench.degradesuite import run_and_write

    return run_and_write(smoke=args.smoke, results_dir=args.results_dir)


def _cmd_bench_elastic(args) -> int:
    from repro.bench.elasticsuite import run_and_write

    return run_and_write(smoke=args.smoke, results_dir=args.results_dir)


def _cmd_trace_report(args) -> int:
    from repro.errors import TCSCError
    from repro.obs.report import render_trace_report, trace_report_json

    try:
        if args.json:
            print(json.dumps(trace_report_json(args.trace),
                             indent=2, sort_keys=True))
        else:
            print(render_trace_report(args.trace))
    except (TCSCError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def _cmd_trace_diff(args) -> int:
    from repro.errors import TCSCError
    from repro.obs.query import diff_traces

    try:
        divergence = diff_traces(args.trace_a, args.trace_b)
    except (TCSCError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if divergence is None:
        if args.json:
            print(json.dumps({"identical": True}))
        else:
            print("traces are identical under the timing mask")
        return 0
    if args.json:
        print(json.dumps({"identical": False, **divergence.to_dict()},
                         indent=2, sort_keys=True))
    else:
        print(divergence.describe())
    return 1


def _cmd_bench_regress(args) -> int:
    from repro.bench.regresssuite import run_and_write

    return run_and_write(
        check=args.check,
        update=args.update,
        results_dir=args.results_dir,
        baselines_dir=args.baselines_dir,
    )


def _run_profiled(handler, args) -> int:
    """Deprecated spelling: delegate to :func:`repro.obs.profile.run_profiled`."""
    from repro.obs.profile import run_profiled

    return run_profiled(handler, args)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "solve-single": _cmd_solve_single,
        "solve-multi": _cmd_solve_multi,
        "cover": _cmd_cover,
        "simulate": _cmd_simulate,
        "matrix": _cmd_matrix,
        "bench-perf": _cmd_bench_perf,
        "bench-shard": _cmd_bench_shard,
        "bench-par": _cmd_bench_par,
        "bench-journal": _cmd_bench_journal,
        "bench-obs": _cmd_bench_obs,
        "bench-degrade": _cmd_bench_degrade,
        "bench-elastic": _cmd_bench_elastic,
        "bench-regress": _cmd_bench_regress,
        "trace-report": _cmd_trace_report,
        "trace-diff": _cmd_trace_diff,
    }
    handler = handlers[args.command]
    if getattr(args, "profile", False):
        return _run_profiled(handler, args)
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
