"""Deterministic virtual-clock multi-core simulator.

The simulator models the TCSC server's thread pool as ``cores``
identical processors executing *work items* (each a virtual cost, in
abstract operation units taken from the solvers'
:class:`~repro.core.instrumentation.OpCounters`).  Scheduling is
longest-processing-time-first (LPT) within a round, which is both a
good approximation of a work-stealing pool and fully deterministic.

Two accounting modes cover the paper's experiments:

* :meth:`SimCluster.run_round` — a bulk-synchronous round: the given
  work items are spread over the cores and the clock advances by the
  round's *makespan* (plus any serial coordination cost).  The
  task-level parallel solver calls this once per greedy iteration.
* :meth:`SimCluster.run_partitions` — independent partitions (the
  group-level parallelization): each partition is a serial chain, the
  clock advances by the makespan of partition totals.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro.errors import ConfigurationError

__all__ = ["WorkItem", "SimCluster"]


@dataclass(frozen=True, slots=True)
class WorkItem:
    """One schedulable unit of work."""

    owner: Hashable
    cost: float

    def __post_init__(self):
        if self.cost < 0:
            raise ConfigurationError(f"negative work cost {self.cost}")


class SimCluster:
    """Virtual-clock cluster with LPT scheduling."""

    def __init__(self, cores: int, *, per_message_cost: float = 1.0):
        if cores < 1:
            raise ConfigurationError(f"cores must be >= 1, got {cores}")
        self.cores = cores
        self.per_message_cost = per_message_cost
        self._clock = 0.0
        self._busy_time = 0.0
        self._rounds = 0
        self._messages = 0

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def clock(self) -> float:
        """Elapsed virtual time."""
        return self._clock

    @property
    def busy_time(self) -> float:
        """Total work executed (core-seconds); clock * cores >= busy."""
        return self._busy_time

    @property
    def utilization(self) -> float:
        """busy_time / (clock * cores); 1.0 = perfectly parallel."""
        if self._clock == 0.0:
            return 0.0
        return self._busy_time / (self._clock * self.cores)

    @property
    def rounds(self) -> int:
        """Bulk-synchronous rounds executed."""
        return self._rounds

    @property
    def messages(self) -> int:
        """Coordination messages charged so far."""
        return self._messages

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    @staticmethod
    def makespan(costs: Sequence[float], cores: int) -> float:
        """LPT makespan of independent costs on identical cores."""
        if not costs:
            return 0.0
        if cores == 1:
            return float(sum(costs))
        loads = [0.0] * min(cores, len(costs)) or [0.0]
        heap = list(loads)
        heapq.heapify(heap)
        for cost in sorted(costs, reverse=True):
            lightest = heapq.heappop(heap)
            heapq.heappush(heap, lightest + cost)
        return max(heap)

    def run_round(self, items: Iterable[WorkItem], *, messages: int = 0) -> float:
        """Execute one bulk-synchronous round; returns its duration.

        The round lasts for the LPT makespan of the items, plus the
        serial master-thread coordination cost for ``messages``
        messages (heartbeats, conflict reports, grants).
        """
        items = list(items)
        costs = [item.cost for item in items]
        duration = self.makespan(costs, self.cores) + messages * self.per_message_cost
        self._clock += duration
        self._busy_time += sum(costs) + messages * self.per_message_cost
        self._rounds += 1
        self._messages += messages
        return duration

    def run_partitions(self, partitions: Iterable[Sequence[WorkItem]]) -> float:
        """Execute independent serial partitions in parallel.

        Each partition's items run back-to-back on one core (the
        group-level model: a whole task group is one serial
        optimization); partitions are spread over the cores with LPT.
        Returns the elapsed duration.
        """
        totals = [sum(item.cost for item in partition) for partition in partitions]
        duration = self.makespan(totals, self.cores)
        self._clock += duration
        self._busy_time += sum(totals)
        self._rounds += 1
        return duration
