"""Parallel-execution substrate.

CPython's GIL makes real CPU-parallel speedups unobservable for the
pure-Python solvers, so the multi-task parallel framework of Section IV
runs on two interchangeable backends:

* :mod:`repro.parallel.simcluster` — a deterministic *virtual-clock*
  multi-core simulator: work items carry virtual costs (derived from
  the solvers' operation counters) and the cluster computes round
  makespans for any core count.  This is what reproduces the paper's
  time-vs-cores curves (Fig. 9a/f) on any host.
* :mod:`repro.parallel.threadpool` — a real ``threading`` pool used by
  the functional tests to demonstrate the master/worker message
  protocol with actual concurrency.
"""

from repro.parallel.simcluster import SimCluster, WorkItem
from repro.parallel.threadpool import MasterWorkerPool

__all__ = ["MasterWorkerPool", "SimCluster", "WorkItem"]
