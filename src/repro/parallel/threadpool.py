"""Deprecated shim: ``MasterWorkerPool`` over ``repro.par.Executor``.

The real master/worker thread pool that demonstrated the paper's
Figure 5 architecture moved into the general executor abstraction —
:class:`repro.par.executor.Executor` with ``kind="thread"`` runs the
identical protocol (named ``tcsc-worker-<i>`` threads draining a
shared queue, first error re-raised) and additionally offers the
``process`` kind for real wall-clock parallelism.  This module keeps
the old constructor importable, warning once per process, exactly
like the PR 5 server shims; the produced plans are regression-tested
equal to the executor's.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Hashable

from repro.errors import SchedulingError
from repro.par.executor import Executor

__all__ = ["MasterWorkerPool"]

#: One deprecation warning per process: suites construct hundreds of
#: pools per run, and repeating the same fact helps nobody.
_warned = False


def _warn_once() -> None:
    global _warned
    if _warned:
        return
    _warned = True
    warnings.warn(
        "MasterWorkerPool is deprecated; use "
        "repro.par.Executor(kind='thread', max_workers=N) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_deprecation_warning() -> None:
    """Re-arm the once-per-process warning (for tests)."""
    global _warned
    _warned = False


class MasterWorkerPool:
    """Run per-owner jobs on real threads and collect the results.

    ``jobs`` maps an owner id to a zero-argument callable; :meth:`run`
    executes them on ``num_threads`` threads and returns
    ``{owner: result}``.  Exceptions propagate to the caller.

    Deprecated: a thin delegate over
    :meth:`repro.par.executor.Executor.run_jobs`.  The historical
    ``num_threads < 1`` rejection stays a
    :class:`~repro.errors.SchedulingError` for callers that catch it.
    """

    def __init__(self, num_threads: int):
        if num_threads < 1:
            raise SchedulingError(f"num_threads must be >= 1, got {num_threads}")
        _warn_once()
        self.num_threads = num_threads
        self._executor = Executor("thread", max_workers=num_threads)

    def run(self, jobs: dict[Hashable, Callable[[], Any]]) -> dict[Hashable, Any]:
        """Execute all jobs; block until every one finished."""
        return self._executor.run_jobs(jobs)
