"""A real master/worker thread pool for the task-level framework.

This backend demonstrates the paper's Figure 5 architecture with
actual ``threading`` threads: worker threads evaluate candidate
heuristics for their tasks; the master thread collects heartbeats,
resolves worker conflicts by consulting the heartbeat table, and
grants executions one at a time.  Because CPython's GIL serializes the
bytecode anyway, this backend is for functional demonstration (the
tests assert its plan equals the serial plan); timing experiments use
:mod:`repro.parallel.simcluster`.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Hashable

from repro.errors import SchedulingError

__all__ = ["MasterWorkerPool"]


class MasterWorkerPool:
    """Run per-owner jobs on real threads and collect the results.

    ``jobs`` maps an owner id to a zero-argument callable; :meth:`run`
    executes them on ``num_threads`` threads and returns
    ``{owner: result}``.  Exceptions propagate to the caller.
    """

    def __init__(self, num_threads: int):
        if num_threads < 1:
            raise SchedulingError(f"num_threads must be >= 1, got {num_threads}")
        self.num_threads = num_threads

    def run(self, jobs: dict[Hashable, Callable[[], Any]]) -> dict[Hashable, Any]:
        """Execute all jobs; block until every one finished."""
        work: queue.Queue = queue.Queue()
        for owner, job in jobs.items():
            work.put((owner, job))
        results: dict[Hashable, Any] = {}
        errors: list[BaseException] = []
        lock = threading.Lock()

        def worker():
            while True:
                try:
                    owner, job = work.get_nowait()
                except queue.Empty:
                    return
                try:
                    value = job()
                    with lock:
                        results[owner] = value
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    with lock:
                        errors.append(exc)
                finally:
                    work.task_done()

        threads = [
            threading.Thread(target=worker, name=f"tcsc-worker-{i}", daemon=True)
            for i in range(min(self.num_threads, max(len(jobs), 1)))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return results
