"""An immutable 2-D point."""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Point"]


@dataclass(frozen=True, slots=True, order=True)
class Point:
    """A point in the plane.

    Ordering is lexicographic ``(x, y)`` so that collections of points
    can be sorted deterministically.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance (avoids the sqrt for comparisons)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def translated(self, dx: float, dy: float) -> "Point":
        """A new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)
