"""Distance functions over :class:`~repro.geo.point.Point`.

The paper's cost model uses Euclidean distance ("we assume the travel
cost of a subtask is the Euclidean distance from the location of a
subtask and the assigned worker") but notes the work is general w.r.t.
the type of cost; Manhattan distance is provided for that generality
and exercised by the ablation benchmarks.
"""

from __future__ import annotations

import math

from repro.geo.point import Point

__all__ = ["euclidean", "squared_euclidean", "manhattan"]


def euclidean(a: Point, b: Point) -> float:
    """Planar Euclidean (L2) distance."""
    return math.hypot(a.x - b.x, a.y - b.y)


def squared_euclidean(a: Point, b: Point) -> float:
    """Squared Euclidean distance — monotone in L2, cheaper to compute."""
    dx = a.x - b.x
    dy = a.y - b.y
    return dx * dx + dy * dy


def manhattan(a: Point, b: Point) -> float:
    """L1 (taxicab) distance."""
    return abs(a.x - b.x) + abs(a.y - b.y)
