"""Geometry substrate: points, distances, and spatial indexes.

The TCSC cost model is built on planar Euclidean distances between task
locations and worker locations.  Worker nearest-neighbour lookups (the
"worker with the lowest cost", "second lowest cost", ... of Section IV)
are served by the spatial indexes implemented here from scratch:

* :class:`~repro.geo.grid.GridIndex` — a uniform grid with ring-expansion
  k-NN search; the default per-slot worker index.
* :class:`~repro.geo.kdtree.KDTree` — a classic k-d tree; used as a
  correctness oracle in tests and as an alternative backend.
"""

from repro.geo.bbox import BoundingBox
from repro.geo.distance import euclidean, manhattan, squared_euclidean
from repro.geo.grid import GridIndex
from repro.geo.kdtree import KDTree
from repro.geo.point import Point

__all__ = [
    "BoundingBox",
    "GridIndex",
    "KDTree",
    "Point",
    "euclidean",
    "manhattan",
    "squared_euclidean",
]
