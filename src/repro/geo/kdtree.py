"""A classic 2-d tree (k-d tree for the plane) built from scratch.

The tree is static (median-split bulk build) with tombstone deletion:
removing a point marks it dead and is skipped during search.  When more
than half the points are dead the tree rebuilds itself, keeping
amortized costs low.  It serves as the correctness oracle for
:class:`~repro.geo.grid.GridIndex` in the test suite and as an
alternative worker-index backend.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.geo.point import Point

__all__ = ["KDTree"]


class _Node:
    __slots__ = ("key", "point", "axis", "left", "right")

    def __init__(self, key, point, axis):
        self.key = key
        self.point = point
        self.axis = axis
        self.left: _Node | None = None
        self.right: _Node | None = None


class KDTree:
    """2-d tree over ``(id, point)`` pairs with exact k-NN queries."""

    def __init__(self, items: Iterable[tuple[Hashable, Point]] = ()):
        self._points: dict[Hashable, Point] = dict(items)
        self._dead: set[Hashable] = set()
        self._root = self._build(
            sorted(self._points.items(), key=lambda kv: (kv[1].x, kv[1].y, repr(kv[0]))), 0
        )

    def __len__(self) -> int:
        return len(self._points) - len(self._dead)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._points and key not in self._dead

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def remove(self, key: Hashable) -> None:
        """Tombstone-delete ``key``; raise :class:`KeyError` if absent."""
        if key not in self._points or key in self._dead:
            raise KeyError(key)
        self._dead.add(key)
        if len(self._dead) * 2 > len(self._points):
            self._rebuild()

    def add(self, key: Hashable, point: Point) -> None:
        """Insert a point (triggers a rebuild — the tree is static)."""
        if key in self._dead:
            self._dead.discard(key)
        self._points[key] = point
        self._rebuild()

    def _rebuild(self) -> None:
        for key in self._dead:
            del self._points[key]
        self._dead.clear()
        self._root = self._build(
            sorted(self._points.items(), key=lambda kv: (kv[1].x, kv[1].y, repr(kv[0]))), 0
        )

    def _build(self, items, depth) -> _Node | None:
        if not items:
            return None
        axis = depth % 2
        items = sorted(
            items, key=(lambda kv: (kv[1].x, kv[1].y)) if axis == 0 else (lambda kv: (kv[1].y, kv[1].x))
        )
        mid = len(items) // 2
        key, point = items[mid]
        node = _Node(key, point, axis)
        node.left = self._build(items[:mid], depth + 1)
        node.right = self._build(items[mid + 1 :], depth + 1)
        return node

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def k_nearest(
        self, query: Point, k: int, *, exclude: frozenset | set | None = None
    ) -> list[tuple[Hashable, float]]:
        """Exact k-NN with branch-and-bound pruning.

        Returns pairs ``(key, distance)`` sorted by distance, ties
        broken by the repr of the key.
        """
        if k <= 0:
            return []
        best: list[tuple[float, str, Hashable]] = []

        def consider(node: _Node):
            if node.key in self._dead or (exclude and node.key in exclude):
                return
            dist = query.distance_to(node.point)
            best.append((dist, repr(node.key), node.key))
            best.sort()
            if len(best) > k:
                best.pop()

        def visit(node: _Node | None):
            if node is None:
                return
            consider(node)
            q_coord = query.x if node.axis == 0 else query.y
            n_coord = node.point.x if node.axis == 0 else node.point.y
            near, far = (node.left, node.right) if q_coord <= n_coord else (node.right, node.left)
            visit(near)
            plane_dist = abs(q_coord - n_coord)
            if len(best) < k or plane_dist <= best[-1][0]:
                visit(far)

        visit(self._root)
        return [(key, dist) for dist, _, key in best]

    def nearest(self, query: Point, *, exclude: frozenset | set | None = None):
        """Return ``(key, distance)`` of the nearest live point, or None."""
        result = self.k_nearest(query, 1, exclude=exclude)
        return result[0] if result else None
