"""A uniform-grid spatial index with dynamic insertion and removal.

The multi-task assignment of Section IV repeatedly asks "which is the
j-th nearest *remaining* worker to this task at this slot?" and then
consumes that worker.  A uniform grid supports exactly this access
pattern: ``O(1)`` removal and a ring-expansion nearest-neighbour search
whose cost is proportional to the local point density.

The search is exact: rings are expanded until the best candidate found
so far is provably closer than anything an unexplored ring could hold.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable

from repro.errors import ConfigurationError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point

__all__ = ["GridIndex"]


class GridIndex:
    """Uniform grid over a bounding box holding ``(id, point)`` pairs."""

    def __init__(
        self,
        bbox: BoundingBox,
        *,
        cell_size: float | None = None,
        expected_points: int | None = None,
    ):
        """Create an empty index.

        ``cell_size`` fixes the grid resolution explicitly; otherwise it
        is chosen so that the grid holds roughly one expected point per
        cell (a standard rule of thumb), defaulting to a 32x32 grid.
        """
        self.bbox = bbox
        if cell_size is None:
            if expected_points and expected_points > 0:
                # Aim for ~1 point per cell.
                cells_per_side = max(1, int(math.sqrt(expected_points)))
            else:
                cells_per_side = 32
            cell_size = max(bbox.width, bbox.height, 1e-12) / cells_per_side
        if cell_size <= 0:
            raise ConfigurationError(f"cell_size must be positive, got {cell_size}")
        self.cell_size = cell_size
        self._cols = max(1, int(math.ceil(bbox.width / cell_size)))
        self._rows = max(1, int(math.ceil(bbox.height / cell_size)))
        self._cells: dict[tuple[int, int], dict[Hashable, Point]] = {}
        self._points: dict[Hashable, Point] = {}

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------
    @classmethod
    def from_items(
        cls, bbox: BoundingBox, items: Iterable[tuple[Hashable, Point]]
    ) -> "GridIndex":
        """Build an index holding all ``(id, point)`` items."""
        items = list(items)
        index = cls(bbox, expected_points=len(items))
        for key, point in items:
            index.add(key, point)
        return index

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._points

    def location_of(self, key: Hashable) -> Point:
        """Return the stored location of ``key``."""
        return self._points[key]

    def add(self, key: Hashable, point: Point) -> None:
        """Insert ``key`` at ``point`` (re-inserting moves it)."""
        if key in self._points:
            self.remove(key)
        self._points[key] = point
        self._cells.setdefault(self._cell_of(point), {})[key] = point

    def remove(self, key: Hashable) -> None:
        """Remove ``key``; raise :class:`KeyError` if absent."""
        point = self._points.pop(key)
        cell = self._cell_of(point)
        bucket = self._cells[cell]
        del bucket[key]
        if not bucket:
            del self._cells[cell]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def nearest(self, query: Point, *, exclude: frozenset | set | None = None):
        """Return ``(key, distance)`` of the nearest item, or ``None``."""
        result = self.k_nearest(query, 1, exclude=exclude)
        return result[0] if result else None

    def k_nearest(
        self, query: Point, k: int, *, exclude: frozenset | set | None = None
    ) -> list[tuple[Hashable, float]]:
        """Exact k-NN search by expanding rings of grid cells.

        Returns up to ``k`` pairs ``(key, distance)`` sorted by distance
        (ties broken by the repr of the key for determinism).
        """
        if k <= 0 or not self._points:
            return []
        qc, qr = self._cell_of(query)
        best: list[tuple[float, str, Hashable]] = []
        radius = 0
        max_radius = max(self._cols, self._rows)
        while radius <= max_radius + 1:
            for cell in self._ring(qc, qr, radius):
                bucket = self._cells.get(cell)
                if not bucket:
                    continue
                for key, point in bucket.items():
                    if exclude and key in exclude:
                        continue
                    dist = query.distance_to(point)
                    best.append((dist, repr(key), key))
            if len(best) >= k:
                best.sort()
                # Anything in an unexplored ring is at least this far away.
                ring_clearance = radius * self.cell_size
                if best[k - 1][0] <= ring_clearance:
                    break
            radius += 1
        best.sort()
        return [(key, dist) for dist, _, key in best[:k]]

    def within(self, query: Point, radius: float) -> list[tuple[Hashable, float]]:
        """All items within ``radius`` of ``query``, sorted by distance."""
        out: list[tuple[float, str, Hashable]] = []
        rings = int(math.ceil(radius / self.cell_size)) + 1
        qc, qr = self._cell_of(query)
        for ring in range(rings + 1):
            for cell in self._ring(qc, qr, ring):
                bucket = self._cells.get(cell)
                if not bucket:
                    continue
                for key, point in bucket.items():
                    dist = query.distance_to(point)
                    if dist <= radius:
                        out.append((dist, repr(key), key))
        out.sort()
        return [(key, dist) for dist, _, key in out]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _cell_of(self, p: Point) -> tuple[int, int]:
        col = int((p.x - self.bbox.min_x) / self.cell_size)
        row = int((p.y - self.bbox.min_y) / self.cell_size)
        return (min(max(col, 0), self._cols - 1), min(max(row, 0), self._rows - 1))

    def _ring(self, qc: int, qr: int, radius: int):
        """Cells at Chebyshev distance ``radius`` from ``(qc, qr)``."""
        if radius == 0:
            if 0 <= qc < self._cols and 0 <= qr < self._rows:
                yield (qc, qr)
            return
        lo_c, hi_c = qc - radius, qc + radius
        lo_r, hi_r = qr - radius, qr + radius
        for col in range(lo_c, hi_c + 1):
            for row in (lo_r, hi_r):
                if 0 <= col < self._cols and 0 <= row < self._rows:
                    yield (col, row)
        for row in range(lo_r + 1, hi_r):
            for col in (lo_c, hi_c):
                if 0 <= col < self._cols and 0 <= row < self._rows:
                    yield (col, row)
