"""Axis-aligned bounding boxes (spatial domains).

A :class:`BoundingBox` describes the spatial domain of a scenario: the
workload generators sample task and worker locations inside it, and the
spatiotemporal quality metric (Appendix C) normalizes spatial
interpolation distances by the domain *size* (its diagonal), so the
spatial error ratio stays in ``[0, 1]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.geo.point import Point

__all__ = ["BoundingBox"]


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """Closed axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self):
        if self.max_x < self.min_x or self.max_y < self.min_y:
            raise ConfigurationError(
                f"degenerate bounding box: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    @classmethod
    def square(cls, side: float, *, origin: tuple[float, float] = (0.0, 0.0)) -> "BoundingBox":
        """A square of the given side length anchored at ``origin``."""
        ox, oy = origin
        return cls(ox, oy, ox + side, oy + side)

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.max_y - self.min_y

    @property
    def center(self) -> Point:
        """The centre point of the box."""
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    @property
    def diagonal(self) -> float:
        """Length of the diagonal — the domain size ``|D|`` of Eq. 13."""
        return math.hypot(self.width, self.height)

    def contains(self, p: Point) -> bool:
        """True iff ``p`` lies inside the closed box."""
        return self.min_x <= p.x <= self.max_x and self.min_y <= p.y <= self.max_y

    def clamp(self, p: Point) -> Point:
        """The closest point inside the box."""
        return Point(
            min(max(p.x, self.min_x), self.max_x),
            min(max(p.y, self.min_y), self.max_y),
        )
