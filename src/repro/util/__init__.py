"""Small generic utilities shared across the library.

The submodules implement the classic building blocks the paper's
algorithms assume to exist: a sorted integer set with neighbour queries
(:mod:`repro.util.sorted_slots`), a lazily-pruned max-heap
(:mod:`repro.util.heaps`), a disjoint-set union structure
(:mod:`repro.util.dsu`), and deterministic RNG plumbing
(:mod:`repro.util.rng`).
"""

from repro.util.dsu import DisjointSetUnion
from repro.util.heaps import LazyMaxHeap
from repro.util.rng import RngFactory, derive_rng, make_rng, stable_digest
from repro.util.sorted_slots import SortedSlots

__all__ = [
    "DisjointSetUnion",
    "LazyMaxHeap",
    "RngFactory",
    "SortedSlots",
    "derive_rng",
    "make_rng",
    "stable_digest",
]
