"""Heap utilities used by the best-first search and the greedy solvers.

Python's :mod:`heapq` is a min-heap of immutable entries; the solvers
need a *max*-heap whose entries can become stale (their priority only
ever decreases — the lazy-greedy property of submodular maximization).
:class:`LazyMaxHeap` wraps the standard library with negated keys,
insertion counters for deterministic tie-breaking, and a tombstone set
for lazily discarding invalidated entries.
"""

from __future__ import annotations

import heapq
from typing import Any, Hashable

__all__ = ["LazyMaxHeap"]


class LazyMaxHeap:
    """Max-heap with lazy invalidation.

    Entries are ``(priority, token, payload)``.  ``token`` identifies
    the entry for invalidation; pushing a token again supersedes any
    older entry with the same token.  Ties in priority are broken by
    insertion order (FIFO), so iteration is fully deterministic.
    """

    __slots__ = ("_heap", "_counter", "_live")

    def __init__(self):
        self._heap: list[tuple[float, int, Hashable, Any]] = []
        self._counter = 0
        self._live: dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)

    def push(self, priority: float, token: Hashable, payload: Any = None) -> None:
        """Insert or supersede the entry identified by ``token``."""
        self._counter += 1
        self._live[token] = self._counter
        heapq.heappush(self._heap, (-priority, self._counter, token, payload))

    def invalidate(self, token: Hashable) -> None:
        """Drop the entry for ``token`` if present (lazy removal)."""
        self._live.pop(token, None)

    def peek(self) -> tuple[float, Hashable, Any] | None:
        """Return the max entry without removing it, or ``None``."""
        self._drop_stale()
        if not self._heap:
            return None
        neg, _, token, payload = self._heap[0]
        return (-neg, token, payload)

    def pop(self) -> tuple[float, Hashable, Any] | None:
        """Remove and return ``(priority, token, payload)``, or ``None``."""
        self._drop_stale()
        if not self._heap:
            return None
        neg, counter, token, payload = heapq.heappop(self._heap)
        del self._live[token]
        return (-neg, token, payload)

    def _drop_stale(self) -> None:
        heap = self._heap
        live = self._live
        while heap:
            _, counter, token, _ = heap[0]
            if live.get(token) == counter:
                return
            heapq.heappop(heap)
