"""Disjoint-set union (union-find) with path compression and union by size.

Used by the group-level parallelization of Section IV-A.1 to turn the
pairwise worker-conflict relation into connected *independent groups* of
tasks that can be optimized on separate cores.
"""

from __future__ import annotations

from typing import Hashable, Iterable

__all__ = ["DisjointSetUnion"]


class DisjointSetUnion:
    """Union-find over arbitrary hashable items."""

    def __init__(self, items: Iterable[Hashable] = ()):
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        """Register ``item`` as a singleton set (no-op if present)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: Hashable) -> Hashable:
        """Return the canonical representative of ``item``'s set."""
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        # Path compression.
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of ``a`` and ``b``; return True if they differed."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """True iff ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> list[list[Hashable]]:
        """Return all sets, each sorted, ordered by their smallest member."""
        buckets: dict[Hashable, list[Hashable]] = {}
        for item in self._parent:
            buckets.setdefault(self.find(item), []).append(item)
        groups = [sorted(members, key=repr) for members in buckets.values()]
        groups.sort(key=lambda g: repr(g[0]))
        return groups
