"""A sorted set of integer time slots with temporal-neighbour queries.

The paper's Algorithm 1 keeps "a sorted list for subtasks that are
sorted in the ascending order of the corresponding time slots" and uses
it to answer *temporal k-nearest-neighbour* queries: given a query slot,
return the ``k`` executed slots with the smallest absolute index
difference.  :class:`SortedSlots` is that structure, built on
:mod:`bisect` so insertion is ``O(m)`` worst case (array shift) but
queries are ``O(log m + k)`` — the complexity the paper quotes.
"""

from __future__ import annotations

from bisect import bisect_left, insort

__all__ = ["SortedSlots"]


class SortedSlots:
    """Sorted container of distinct integer slots.

    Supports membership tests, ordered iteration, and the neighbour
    queries used by the temporal interpolation code: ``k`` nearest
    slots, counts to the left/right of a pivot, and the ``j``-th
    executed slot on either side of a pivot.
    """

    __slots__ = ("_slots",)

    def __init__(self, slots=()):
        self._slots: list[int] = sorted(set(slots))

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self):
        return iter(self._slots)

    def __contains__(self, slot: int) -> bool:
        i = bisect_left(self._slots, slot)
        return i < len(self._slots) and self._slots[i] == slot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SortedSlots({self._slots!r})"

    def as_list(self) -> list[int]:
        """Return a copy of the slots in ascending order."""
        return list(self._slots)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, slot: int) -> bool:
        """Insert ``slot``; return ``True`` if it was not present."""
        i = bisect_left(self._slots, slot)
        if i < len(self._slots) and self._slots[i] == slot:
            return False
        self._slots.insert(i, slot)
        return True

    def remove(self, slot: int) -> None:
        """Remove ``slot``; raise :class:`KeyError` if absent."""
        i = bisect_left(self._slots, slot)
        if i == len(self._slots) or self._slots[i] != slot:
            raise KeyError(slot)
        del self._slots[i]

    # ------------------------------------------------------------------
    # Neighbour queries
    # ------------------------------------------------------------------
    def k_nearest(self, slot: int, k: int, *, exclude: int | None = None) -> list[int]:
        """Return up to ``k`` stored slots closest to ``slot``.

        Distance is the absolute index difference.  Ties are broken in
        favour of the *smaller* slot index, which makes every algorithm
        built on top of this query deterministic.  ``exclude`` removes
        one slot (typically the query slot itself) from consideration.
        """
        if k <= 0:
            return []
        slots = self._slots
        n = len(slots)
        if n == 0:
            return []
        i = bisect_left(slots, slot)
        left = i - 1
        right = i
        out: list[int] = []
        while len(out) < k and (left >= 0 or right < n):
            if left >= 0 and slots[left] == exclude:
                left -= 1
                continue
            if right < n and slots[right] == exclude:
                right += 1
                continue
            if left < 0:
                out.append(slots[right])
                right += 1
            elif right >= n:
                out.append(slots[left])
                left -= 1
            else:
                dl = slot - slots[left]
                dr = slots[right] - slot
                # Tie-break toward the smaller index (the left one).
                if dl <= dr:
                    out.append(slots[left])
                    left -= 1
                else:
                    out.append(slots[right])
                    right += 1
        return out

    def kth_left(self, slot: int, k: int) -> int | None:
        """The ``k``-th stored slot strictly below ``slot`` (1-based)."""
        i = bisect_left(self._slots, slot)
        j = i - k
        return self._slots[j] if j >= 0 else None

    def kth_right(self, slot: int, k: int) -> int | None:
        """The ``k``-th stored slot strictly above ``slot`` (1-based)."""
        slots = self._slots
        i = bisect_left(slots, slot)
        if i < len(slots) and slots[i] == slot:
            i += 1
        j = i + k - 1
        return slots[j] if j < len(slots) else None

    def count_below(self, slot: int) -> int:
        """Number of stored slots strictly below ``slot``."""
        return bisect_left(self._slots, slot)

    def count_in(self, lo: int, hi: int) -> int:
        """Number of stored slots in the closed interval ``[lo, hi]``."""
        if hi < lo:
            return 0
        return bisect_left(self._slots, hi + 1) - bisect_left(self._slots, lo)

    def nearest(self, slot: int) -> int | None:
        """The single nearest stored slot (ties toward the smaller)."""
        result = self.k_nearest(slot, 1)
        return result[0] if result else None
