"""Deterministic random-number plumbing.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator`.  Scenario builders create an
:class:`RngFactory` from an integer seed and request independent child
streams keyed by string labels (task locations, worker trajectories,
value fields, ...).  Streams depend only on ``(seed, label)`` — not on
the order in which they are requested — so adding a new component never
perturbs the randomness of existing ones, a property the regression
tests rely on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "derive_rng", "RngFactory", "stable_digest"]


def stable_digest(label: str) -> int:
    """64-bit FNV-1a hash of ``label`` (stable across processes)."""
    digest = 1469598103934665603
    for byte in label.encode("utf-8"):
        digest ^= byte
        digest = (digest * 1099511628211) % (1 << 64)
    return digest


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a Generator from a seed, passing Generators through."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(seed: int, label: str) -> np.random.Generator:
    """Generator determined solely by ``(seed, label)``."""
    return np.random.default_rng(np.random.SeedSequence([int(seed), stable_digest(label)]))


class RngFactory:
    """Factory of independent, label-addressed random streams."""

    __slots__ = ("seed",)

    def __init__(self, seed: int):
        self.seed = int(seed)

    def stream(self, label: str) -> np.random.Generator:
        """Return the stream for ``label`` (same label -> same stream)."""
        return derive_rng(self.seed, label)

    def child(self, label: str) -> "RngFactory":
        """A nested factory whose streams are independent of ours."""
        return RngFactory((self.seed * 1000003 + stable_digest(label)) % (1 << 63))
