"""Segment tree with lazy range-add and range-max queries.

Backing structure for the tree index's neighbour-gain bounds: every
slot *paints* its potential-gain bound over its influence interval,
and the best-first search asks for the maximum painted value over a
node's segment.  Classic lazy propagation; all operations are
``O(log n)``.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["RangeAddMaxTree"]


class RangeAddMaxTree:
    """Array of ``n`` floats (1-based) with range-add and range-max."""

    __slots__ = ("n", "_max", "_lazy")

    def __init__(self, n: int):
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        self.n = n
        self._max = [0.0] * (4 * n)
        self._lazy = [0.0] * (4 * n)

    def add(self, lo: int, hi: int, value: float) -> None:
        """Add ``value`` to every position in ``[lo, hi]`` (clamped)."""
        lo = max(1, lo)
        hi = min(self.n, hi)
        if hi < lo or value == 0.0:
            return
        self._add(1, 1, self.n, lo, hi, value)

    def max_in(self, lo: int, hi: int) -> float:
        """Maximum value over ``[lo, hi]`` (clamped; -inf if empty)."""
        lo = max(1, lo)
        hi = min(self.n, hi)
        if hi < lo:
            return float("-inf")
        return self._query(1, 1, self.n, lo, hi)

    def value_at(self, pos: int) -> float:
        """The current value at a single position."""
        return self.max_in(pos, pos)

    # ------------------------------------------------------------------
    # State capture (journal snapshots)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Verbatim node arrays.

        The accumulators carry float round-off *history* (an add
        followed by its reversal need not restore the old bits), so an
        exact snapshot must copy them rather than re-derive them.
        """
        return {"n": self.n, "max": list(self._max), "lazy": list(self._lazy)}

    @classmethod
    def from_state(cls, state: dict) -> "RangeAddMaxTree":
        """Rebuild a tree bit-identical to the captured one."""
        tree = cls(state["n"])
        tree._max = [float(v) for v in state["max"]]
        tree._lazy = [float(v) for v in state["lazy"]]
        return tree

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _add(self, node: int, l: int, r: int, lo: int, hi: int, value: float) -> None:
        if hi < l or r < lo:
            return
        if lo <= l and r <= hi:
            self._max[node] += value
            self._lazy[node] += value
            return
        mid = (l + r) // 2
        self._add(2 * node, l, mid, lo, hi, value)
        self._add(2 * node + 1, mid + 1, r, lo, hi, value)
        self._max[node] = self._lazy[node] + max(self._max[2 * node], self._max[2 * node + 1])

    def _query(self, node: int, l: int, r: int, lo: int, hi: int) -> float:
        if lo <= l and r <= hi:
            return self._max[node]
        mid = (l + r) // 2
        if hi <= mid:
            below = self._query(2 * node, l, mid, lo, hi)
        elif lo > mid:
            below = self._query(2 * node + 1, mid + 1, r, lo, hi)
        else:
            below = max(
                self._query(2 * node, l, mid, lo, hi),
                self._query(2 * node + 1, mid + 1, r, lo, hi),
            )
        return below + self._lazy[node]
