"""Workers and worker pools.

A worker registers a set of *active* global time slots and a location
for each (Section II-A: "registered spatiotemporal information consists
of workers' available time slots, working regions...").  The optional
``reliability`` score ``lambda in [0, 1]`` feeds the reliability
extension of the quality metric (Eq. 4-5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, WorkerUnavailableError
from repro.geo.point import Point

__all__ = ["Worker", "WorkerPool"]


@dataclass(frozen=True, slots=True)
class Worker:
    """A registered crowdsourcing worker.

    Attributes:
        worker_id: unique identifier within a scenario.
        availability: mapping of global time slot -> location at that
            slot.  A worker is available exactly at the slots present.
        reliability: trust score ``lambda`` in ``[0, 1]`` (1 = fully
            reliable, the default, under which Eq. 4-5 degenerate to
            Eq. 2-3).
    """

    worker_id: int
    availability: dict[int, Point]
    reliability: float = 1.0

    def __post_init__(self):
        if not 0.0 <= self.reliability <= 1.0:
            raise ConfigurationError(
                f"worker {self.worker_id}: reliability must be in [0, 1], "
                f"got {self.reliability}"
            )
        for slot in self.availability:
            if slot < 1:
                raise ConfigurationError(
                    f"worker {self.worker_id}: slot indices start at 1, got {slot}"
                )

    def is_available(self, global_slot: int) -> bool:
        """True iff the worker registered the given global slot."""
        return global_slot in self.availability

    def location_at(self, global_slot: int) -> Point:
        """Location at ``global_slot``; raise if not available then."""
        try:
            return self.availability[global_slot]
        except KeyError:
            raise WorkerUnavailableError(
                f"worker {self.worker_id} is not available at slot {global_slot}"
            ) from None

    @property
    def active_slots(self) -> list[int]:
        """Sorted global slots at which the worker is available."""
        return sorted(self.availability)

    # ------------------------------------------------------------------
    # Serialization (journal snapshots, WAL event records)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready representation.

        Availability is emitted in ascending slot order, so the round
        trip canonicalizes dict iteration order — every consumer of
        ``availability`` is order-insensitive, and the workload
        generators already build it ascending.
        """
        return {
            "worker_id": self.worker_id,
            "availability": [
                [slot, self.availability[slot].x, self.availability[slot].y]
                for slot in sorted(self.availability)
            ],
            "reliability": self.reliability,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Worker":
        """Inverse of :meth:`to_dict` (revalidates invariants)."""
        return cls(
            worker_id=payload["worker_id"],
            availability={
                slot: Point(float(x), float(y))
                for slot, x, y in payload["availability"]
            },
            reliability=payload["reliability"],
        )


@dataclass(slots=True)
class WorkerPool:
    """The set ``W`` of registered workers."""

    workers: list[Worker] = field(default_factory=list)

    def __post_init__(self):
        seen: set[int] = set()
        for worker in self.workers:
            if worker.worker_id in seen:
                raise ConfigurationError(f"duplicate worker_id {worker.worker_id}")
            seen.add(worker.worker_id)

    def __len__(self) -> int:
        return len(self.workers)

    def __iter__(self):
        return iter(self.workers)

    def by_id(self, worker_id: int) -> Worker:
        """Look up a worker by id; raise :class:`KeyError` if absent."""
        for worker in self.workers:
            if worker.worker_id == worker_id:
                return worker
        raise KeyError(worker_id)

    def available_at(self, global_slot: int) -> list[Worker]:
        """All workers available at the given global slot, by id."""
        return sorted(
            (w for w in self.workers if w.is_available(global_slot)),
            key=lambda w: w.worker_id,
        )

    @property
    def max_slot(self) -> int:
        """The largest global slot any worker registered."""
        slots = [max(w.availability) for w in self.workers if w.availability]
        return max(slots) if slots else 0
