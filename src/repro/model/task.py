"""TCSC tasks and task sets.

A *task* ``tau`` has a location ``tau.loc`` and a duration of ``m``
equal-sized time slots; slot ``j`` (1-based, ``1 <= j <= m``) is the
*subtask* ``tau^(j)`` at the same location (Section II-A).  Subtasks
are identified by their slot index — they carry no state of their own;
execution state lives in the solvers' evaluators so that a single task
instance can be shared across alternative assignment strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.geo.point import Point

__all__ = ["Task", "TaskSet"]


@dataclass(frozen=True, slots=True)
class Task:
    """A time-continuous spatial crowdsourcing task.

    Attributes:
        task_id: unique identifier within a scenario.
        loc: the task's spatial location (all subtasks share it).
        num_slots: ``m``, the number of subtasks / time slots.
        start_slot: global time slot at which the task begins; workers'
            availability is expressed in global slots, and the task's
            local slot ``j`` maps to global slot ``start_slot + j - 1``.
    """

    task_id: int
    loc: Point
    num_slots: int
    start_slot: int = 1

    def __post_init__(self):
        if self.num_slots < 3:
            # The entropy metric is monotone only for p <= 1/m <= 1/e,
            # i.e. m >= 3 (the paper evaluates m >= 300).
            raise ConfigurationError(
                f"task {self.task_id}: num_slots must be >= 3, got {self.num_slots}"
            )
        if self.start_slot < 1:
            raise ConfigurationError(
                f"task {self.task_id}: start_slot must be >= 1, got {self.start_slot}"
            )

    @property
    def m(self) -> int:
        """Alias for ``num_slots`` matching the paper's notation."""
        return self.num_slots

    @property
    def slots(self) -> range:
        """Local slot indices ``1..m``."""
        return range(1, self.num_slots + 1)

    def global_slot(self, local_slot: int) -> int:
        """Map a local slot index to the scenario's global timeline."""
        if not 1 <= local_slot <= self.num_slots:
            raise ConfigurationError(
                f"task {self.task_id}: slot {local_slot} outside 1..{self.num_slots}"
            )
        return self.start_slot + local_slot - 1

    def temporal_distance(self, slot_a: int, slot_b: int) -> int:
        """``|tau^(a), tau^(b)|`` — absolute slot-index difference."""
        return abs(slot_a - slot_b)

    # ------------------------------------------------------------------
    # Serialization (journal snapshots, WAL event records)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready representation; exact under a round trip (floats
        survive ``json`` bit-for-bit via shortest-repr)."""
        return {
            "task_id": self.task_id,
            "loc": [self.loc.x, self.loc.y],
            "num_slots": self.num_slots,
            "start_slot": self.start_slot,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Task":
        """Inverse of :meth:`to_dict` (revalidates invariants)."""
        x, y = payload["loc"]
        return cls(
            task_id=payload["task_id"],
            loc=Point(float(x), float(y)),
            num_slots=payload["num_slots"],
            start_slot=payload["start_slot"],
        )


@dataclass(slots=True)
class TaskSet:
    """An ordered collection of tasks submitted to the TCSC server."""

    tasks: list[Task] = field(default_factory=list)

    def __post_init__(self):
        seen: set[int] = set()
        for task in self.tasks:
            if task.task_id in seen:
                raise ConfigurationError(f"duplicate task_id {task.task_id}")
            seen.add(task.task_id)

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    def __getitem__(self, index: int) -> Task:
        return self.tasks[index]

    def add(self, task: Task) -> None:
        """Append a task, enforcing id uniqueness."""
        if any(t.task_id == task.task_id for t in self.tasks):
            raise ConfigurationError(f"duplicate task_id {task.task_id}")
        self.tasks.append(task)

    def by_id(self, task_id: int) -> Task:
        """Look up a task by id; raise :class:`KeyError` if absent."""
        for task in self.tasks:
            if task.task_id == task_id:
                return task
        raise KeyError(task_id)

    @property
    def total_slots(self) -> int:
        """Sum of ``m`` over all tasks."""
        return sum(task.num_slots for task in self.tasks)

    @property
    def max_global_slot(self) -> int:
        """The largest global slot index any task occupies."""
        if not self.tasks:
            return 0
        return max(task.start_slot + task.num_slots - 1 for task in self.tasks)
