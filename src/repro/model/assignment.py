"""Assignments and budgets.

An :class:`Assignment` is the output of every solver: an ordered list
of :class:`AssignmentRecord` entries, each binding one worker to one
(task, slot) pair at a cost.  The order is the greedy execution order,
which downstream consumers (the parallel schedulers, the benchmarks'
determinism checks) rely on.

:class:`Budget` tracks the remaining budget ``b`` and enforces the
knapsack constraint ``sum c(tau^(j)) <= b`` of Problems 1-3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BudgetExhaustedError, ConfigurationError

__all__ = ["AssignmentRecord", "Assignment", "Budget"]


@dataclass(frozen=True, slots=True)
class AssignmentRecord:
    """One executed subtask: worker -> (task, local slot) at a cost."""

    task_id: int
    slot: int
    worker_id: int
    cost: float

    def __post_init__(self):
        if self.cost < 0:
            raise ConfigurationError(f"negative cost {self.cost}")

    def to_dict(self) -> dict:
        """JSON-ready representation (exact float round trip)."""
        return {
            "task_id": self.task_id,
            "slot": self.slot,
            "worker_id": self.worker_id,
            "cost": self.cost,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AssignmentRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            task_id=payload["task_id"],
            slot=payload["slot"],
            worker_id=payload["worker_id"],
            cost=payload["cost"],
        )


@dataclass(slots=True)
class Assignment:
    """The full output plan of a solver, in greedy execution order."""

    records: list[AssignmentRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def add(self, record: AssignmentRecord) -> None:
        """Append a record, rejecting duplicate (task, slot) pairs."""
        key = (record.task_id, record.slot)
        if any((r.task_id, r.slot) == key for r in self.records):
            raise ConfigurationError(f"slot {key} assigned twice")
        self.records.append(record)

    @property
    def total_cost(self) -> float:
        """Sum of all record costs."""
        return sum(r.cost for r in self.records)

    def executed_slots(self, task_id: int) -> list[int]:
        """Sorted local slots executed for ``task_id``."""
        return sorted(r.slot for r in self.records if r.task_id == task_id)

    def records_for(self, task_id: int) -> list[AssignmentRecord]:
        """Records of one task, in execution order."""
        return [r for r in self.records if r.task_id == task_id]

    def worker_load(self) -> dict[int, int]:
        """Number of subtasks served per worker id."""
        load: dict[int, int] = {}
        for record in self.records:
            load[record.worker_id] = load.get(record.worker_id, 0) + 1
        return load

    def plan_signature(self) -> tuple[tuple[int, int, int], ...]:
        """Hashable summary used by determinism tests: (task, slot, worker)."""
        return tuple((r.task_id, r.slot, r.worker_id) for r in self.records)

    def to_dict(self) -> dict:
        """JSON-ready representation preserving record order."""
        return {"records": [r.to_dict() for r in self.records]}

    @classmethod
    def from_dict(cls, payload: dict) -> "Assignment":
        """Inverse of :meth:`to_dict`; ``plan_signature()`` survives
        the round trip byte-for-byte (order and ids are preserved)."""
        plan = cls()
        for record in payload["records"]:
            plan.add(AssignmentRecord.from_dict(record))
        return plan


class Budget:
    """Mutable budget tracker enforcing ``spent <= limit``."""

    __slots__ = ("limit", "_spent")

    def __init__(self, limit: float):
        if limit < 0:
            raise ConfigurationError(f"budget must be non-negative, got {limit}")
        self.limit = float(limit)
        self._spent = 0.0

    @property
    def spent(self) -> float:
        """Budget consumed so far."""
        return self._spent

    @property
    def remaining(self) -> float:
        """Budget still available."""
        return self.limit - self._spent

    def can_afford(self, cost: float) -> bool:
        """True iff ``cost`` fits in the remaining budget."""
        return cost <= self.remaining + 1e-12

    def charge(self, cost: float) -> None:
        """Consume ``cost``; raise if it exceeds the remaining budget."""
        if cost < 0:
            raise ConfigurationError(f"negative charge {cost}")
        if not self.can_afford(cost):
            raise BudgetExhaustedError(
                f"charge {cost:.6g} exceeds remaining budget {self.remaining:.6g}"
            )
        self._spent += cost

    def fork(self) -> "Budget":
        """An independent copy with the same limit and spend."""
        clone = Budget(self.limit)
        clone._spent = self._spent
        return clone
