"""Domain model: tasks, workers, and assignments.

These classes are the vocabulary of the paper's Section II: a
:class:`~repro.model.task.Task` with ``m`` subtask slots, a
:class:`~repro.model.worker.Worker` registered with spatiotemporal
availability, and an :class:`~repro.model.assignment.Assignment`
mapping workers to (task, slot) pairs under a budget.
"""

from repro.model.assignment import Assignment, AssignmentRecord, Budget
from repro.model.task import Task, TaskSet
from repro.model.worker import Worker, WorkerPool

__all__ = [
    "Assignment",
    "AssignmentRecord",
    "Budget",
    "Task",
    "TaskSet",
    "Worker",
    "WorkerPool",
]
