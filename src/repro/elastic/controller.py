"""Load-triggered split/merge/migrate policy for elastic sharding.

The controller is the :class:`~repro.degrade.policy.DegradationController`
idiom applied to placement: deterministic virtual signals in,
hysteresis between a high and a low watermark, one rebalancing
decision per settled boundary, and a scripted ``.fixed()`` mode so
tests and the exactness sweep can force a migration at an exact
boundary.  Signals are per-logical-shard settled queue depth and the
op-cost delta of the last epoch — op counts and queue lengths, never
wall clock, per the repo's determinism policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["ElasticAction", "ElasticController"]


@dataclass(frozen=True, slots=True)
class ElasticAction:
    """One placement decision the server should apply."""

    kind: str  # "migrate" | "split" | "merge"
    shard: int | None = None
    source: int | None = None
    dest: int | None = None


def _executor_loads(signals, shard_map):
    """Aggregate per-shard ``(queue_depth, cost_delta)`` signals into
    ``executor -> (queue_sum, cost_sum)``."""
    loads = {executor: [0, 0.0] for executor in shard_map.executors}
    for shard, (queue_depth, cost_delta) in signals.items():
        executor = shard_map.executor_of(shard)
        loads[executor][0] += queue_depth
        loads[executor][1] += cost_delta
    return {executor: tuple(load) for executor, load in loads.items()}


class ElasticController:
    """Deterministic hysteresis over the placement map."""

    def __init__(
        self,
        *,
        queue_high: int = 8,
        queue_low: int = 2,
        cooldown: int = 2,
        max_executors: int | None = None,
    ):
        if not 0 <= queue_low < queue_high:
            raise ConfigurationError(
                f"hysteresis needs 0 <= queue_low < queue_high, "
                f"got low={queue_low} high={queue_high}"
            )
        if cooldown < 0:
            raise ConfigurationError(f"cooldown must be >= 0, got {cooldown}")
        self.queue_high = queue_high
        self.queue_low = queue_low
        self.cooldown = cooldown
        self.max_executors = max_executors
        #: Cost-rebalance trigger: migrate when the hot executor's
        #: smoothed op cost exceeds this multiple of the fair share.
        self.cost_imbalance = 1.5
        #: Per-shard exponentially smoothed op-cost (deterministic:
        #: ``ema = ema/2 + delta`` each tick) — single-tick spikes
        #: otherwise read as persistent hotspots.
        self._cost_ema: dict[int, float] = {}
        self.pinned = False
        #: ``(tick, now, kind, shard, source, dest)`` per decision, in
        #: order — the elastic server mirrors these into migration
        #: records; kept here too so unlayered callers can assert
        #: policy directly.
        self.transitions: list[tuple] = []
        self._plan: list[tuple] = []
        self._last_action_tick: int | None = None

    @classmethod
    def fixed(cls, plan) -> "ElasticController":
        """A scripted controller: apply exactly the given moves.

        ``plan`` is an iterable of ``(time, shard, dest)`` entries; an
        entry fires at the first settled boundary at or after its
        time.  ``shard=None`` resolves to the hottest logical shard at
        fire time, ``dest=None`` to the coldest other executor — the
        ``--migrate-at`` spelling.  An empty plan never migrates
        (the static-placement reference arm).
        """
        controller = cls(queue_high=1, queue_low=0, cooldown=0)
        controller.pinned = True
        controller._plan = sorted(
            ((float(time), shard, dest) for time, shard, dest in plan),
            key=lambda entry: entry[0],
        )
        return controller

    def unfired(self) -> list[tuple]:
        """Scripted entries that never reached their boundary."""
        return list(self._plan)

    # -- signal resolution ----------------------------------------------
    @staticmethod
    def _hottest_shard(signals, shard_map, executor=None):
        """Highest-load shard (optionally restricted to one executor);
        ties break toward the lowest shard id."""
        candidates = [
            shard
            for shard in sorted(signals)
            if executor is None or shard_map.executor_of(shard) == executor
        ]
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda shard: (signals[shard][0], signals[shard][1], -shard),
        )

    @staticmethod
    def _coldest_executor(loads, exclude):
        """Lowest-load executor other than ``exclude``; ties break
        toward the lowest executor id."""
        candidates = [executor for executor in sorted(loads) if executor != exclude]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda executor: (loads[executor][0], loads[executor][1], executor),
        )

    @staticmethod
    def _best_move(signals, shard_map, hot, cold, loads):
        """The heaviest shard whose move from ``hot`` to ``cold``
        strictly lowers the pairwise max load; ``None`` if no move
        helps.  Queue depth decides, op-cost delta tie-breaks, then
        the lowest shard id."""
        hot_queue, hot_cost = loads[hot]
        cold_queue, cold_cost = loads[cold]
        best = None
        best_key = None
        for shard in shard_map.shards_on(hot):
            queue_depth, cost_delta = signals[shard]
            if queue_depth == 0 and cost_delta == 0.0:
                continue
            moved_max_queue = max(hot_queue - queue_depth, cold_queue + queue_depth)
            moved_max_cost = max(hot_cost - cost_delta, cold_cost + cost_delta)
            if moved_max_queue > hot_queue or (
                moved_max_queue == hot_queue and moved_max_cost >= hot_cost
            ):
                continue
            key = (queue_depth, cost_delta, -shard)
            if best_key is None or key > best_key:
                best = shard
                best_key = key
        return best

    # -- the policy ------------------------------------------------------
    def decide(self, tick, now, signals, shard_map) -> list[ElasticAction]:
        """Feed one settled boundary's signals; returns the placement
        actions to apply (possibly empty)."""
        if self.pinned:
            return self._decide_scripted(tick, now, signals, shard_map)
        return self._decide_auto(tick, now, signals, shard_map)

    def _decide_scripted(self, tick, now, signals, shard_map):
        actions = []
        while self._plan and self._plan[0][0] <= now:
            _, shard, dest = self._plan.pop(0)
            loads = _executor_loads(signals, shard_map)
            if shard is None:
                shard = self._hottest_shard(signals, shard_map)
            if shard is None:
                continue
            source = shard_map.executor_of(shard)
            if dest is None:
                dest = self._coldest_executor(loads, exclude=source)
            if dest is None or dest == source:
                continue
            actions.append(
                ElasticAction("migrate", shard=shard, source=source, dest=dest)
            )
            self.transitions.append((tick, now, "migrate", shard, source, dest))
        return actions

    def _decide_auto(self, tick, now, signals, shard_map):
        for shard, (_, cost_delta) in signals.items():
            self._cost_ema[shard] = (
                self._cost_ema.get(shard, 0.0) / 2.0 + cost_delta
            )
        if (
            self._last_action_tick is not None
            and tick - self._last_action_tick <= self.cooldown
        ):
            return []
        signals = {
            shard: (queue_depth, self._cost_ema[shard])
            for shard, (queue_depth, _) in signals.items()
        }
        loads = _executor_loads(signals, shard_map)
        hot = max(
            sorted(loads),
            key=lambda executor: (loads[executor][0], loads[executor][1], -executor),
        )
        hot_queue, _ = loads[hot]
        cold = self._coldest_executor(loads, exclude=hot)

        # Split: everyone is hot, so rebalancing inside the current
        # executor set cannot help — grow it (bounded by the logical
        # shard count: an executor with no shard to host is useless).
        cap = self.max_executors or shard_map.num_shards
        every_hot = all(load[0] >= self.queue_high for load in loads.values())
        if (
            every_hot
            and len(shard_map.executors) < cap
            and len(shard_map.shards_on(hot)) >= 2
        ):
            shard = self._hottest_shard(signals, shard_map, executor=hot)
            self._last_action_tick = tick
            self.transitions.append((tick, now, "split", shard, hot, None))
            return [ElasticAction("split", shard=shard, source=hot)]

        # Migrate: classic hysteresis — a hot executor sheds load onto
        # a calm one.  Gain-guarded: only a move that strictly lowers
        # the pairwise max queue is taken, so a hotspot whose queue
        # *is* the whole executor never ping-pongs between executors
        # (its queue would travel with it and the max would not drop).
        if (
            cold is not None
            and hot_queue >= self.queue_high
            and loads[cold][0] <= self.queue_low
        ):
            shard = self._best_move(signals, shard_map, hot, cold, loads)
            if shard is not None:
                self._last_action_tick = tick
                self.transitions.append((tick, now, "migrate", shard, hot, cold))
                return [
                    ElasticAction("migrate", shard=shard, source=hot, dest=cold)
                ]

        # Cost rebalance: even without queue backlog, a persistently
        # skewed op-cost profile (hot sessions re-step every epoch)
        # caps the modeled makespan.  When the hot executor's last-tick
        # cost exceeds its fair share by ``cost_imbalance``, shed the
        # best gain-guarded shard to the cost-coldest executor.
        total_cost = sum(load[1] for load in loads.values())
        fair_share = total_cost / max(len(loads), 1)
        hot_by_cost = max(
            sorted(loads),
            key=lambda executor: (loads[executor][1], loads[executor][0], -executor),
        )
        if fair_share > 0.0 and loads[hot_by_cost][1] >= self.cost_imbalance * fair_share:
            cost_loads = {
                executor: (load[1], load[0]) for executor, load in loads.items()
            }
            cold_by_cost = self._coldest_executor(cost_loads, exclude=hot_by_cost)
            if cold_by_cost is not None:
                cost_signals = {
                    shard: (cost_delta, queue_depth)
                    for shard, (queue_depth, cost_delta) in signals.items()
                }
                shard = self._best_move(
                    cost_signals, shard_map, hot_by_cost, cold_by_cost, cost_loads
                )
                if shard is not None:
                    self._last_action_tick = tick
                    self.transitions.append(
                        (tick, now, "migrate", shard, hot_by_cost, cold_by_cost)
                    )
                    return [
                        ElasticAction(
                            "migrate",
                            shard=shard,
                            source=hot_by_cost,
                            dest=cold_by_cost,
                        )
                    ]

        # Merge: the whole system is calm and a previous split is
        # still paying for an executor — fold the emptiest split-off
        # executor back (never below the initial executor count).
        every_calm = all(load[0] <= self.queue_low for load in loads.values())
        if every_calm and len(shard_map.executors) > shard_map.initial_executors:
            source = max(
                sorted(loads),
                key=lambda executor: (
                    -loads[executor][0],
                    -loads[executor][1],
                    executor,
                ),
            )
            dest = self._coldest_executor(
                {
                    executor: load
                    for executor, load in loads.items()
                    if executor != source
                },
                exclude=None,
            )
            if dest is not None:
                self._last_action_tick = tick
                self.transitions.append((tick, now, "merge", None, source, dest))
                return [ElasticAction("merge", source=source, dest=dest)]
        return []
