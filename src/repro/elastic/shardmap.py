"""Epoch-versioned placement map for elastic sharding.

The static partitioner (:mod:`repro.shard.partitioner`) fixes *what*
each shard owns in space; elasticity changes *where* each shard runs.
:class:`ElasticShardMap` tracks that second mapping — logical shard ->
physical executor — under three operations:

* ``migrate(shard, dest)`` — re-host one logical shard;
* ``add_executor()`` — grow the executor set (a *split*: freed by a
  follow-up migration onto the new executor);
* ``remove_executor(x)`` — shrink it (a *merge*: legal only once the
  executor hosts nothing).

Every mutation bumps ``version`` exactly once and appends to
``history``, so a reader holding a version token can tell whether any
placement it cached is stale — the epoch-versioned-ShardMap protocol
from DESIGN §12.  The map never holds a partial state: each logical
shard maps to exactly one live executor before and after every
operation (the ownership-totality invariant the elastic property
tests sweep).
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["ElasticShardMap"]


class ElasticShardMap:
    """Logical-shard -> executor placement with a version counter.

    The initial placement is contiguous blocks: with ``num_shards``
    logical shards over ``num_executors`` executors, shard ``s``
    starts on executor ``s // (num_shards // num_executors)`` — the
    same geometry the static sharded server has when the two counts
    coincide.
    """

    def __init__(self, num_shards: int, num_executors: int):
        if num_executors < 1:
            raise ConfigurationError(
                f"num_executors must be >= 1, got {num_executors}"
            )
        if num_shards < num_executors or num_shards % num_executors != 0:
            raise ConfigurationError(
                f"num_shards must be a positive multiple of num_executors, "
                f"got {num_shards} over {num_executors}"
            )
        self.num_shards = num_shards
        self.initial_executors = num_executors
        self.version = 0
        #: ``(version, action, *details)`` per mutation, in order.
        self.history: list[tuple] = []
        block = num_shards // num_executors
        self._placement = {s: s // block for s in range(num_shards)}
        self._live = set(range(num_executors))
        self._next_executor = num_executors

    # -- reads -----------------------------------------------------------
    @property
    def executors(self) -> tuple[int, ...]:
        """Live executor ids, ascending."""
        return tuple(sorted(self._live))

    def executor_of(self, shard: int) -> int:
        """The executor currently hosting ``shard``."""
        return self._placement[shard]

    def shards_on(self, executor: int) -> tuple[int, ...]:
        """Logical shards hosted by ``executor``, ascending."""
        if executor not in self._live:
            raise ConfigurationError(f"executor {executor} is not live")
        return tuple(
            s for s in range(self.num_shards) if self._placement[s] == executor
        )

    # -- mutations (each bumps ``version`` exactly once) -----------------
    def migrate(self, shard: int, dest: int) -> int:
        """Atomically re-home ``shard`` onto ``dest``; returns the new
        map version."""
        if shard not in self._placement:
            raise ConfigurationError(f"unknown logical shard {shard}")
        if dest not in self._live:
            raise ConfigurationError(f"executor {dest} is not live")
        source = self._placement[shard]
        if source == dest:
            raise ConfigurationError(
                f"shard {shard} already lives on executor {dest}"
            )
        self._placement[shard] = dest
        self.version += 1
        self.history.append((self.version, "migrate", shard, source, dest))
        return self.version

    def add_executor(self) -> int:
        """Grow the executor set; returns the new executor's id.

        Executor ids are monotone (never reused) so a placement
        history stays unambiguous across split/merge cycles.
        """
        executor = self._next_executor
        self._next_executor += 1
        self._live.add(executor)
        self.version += 1
        self.history.append((self.version, "split", executor))
        return executor

    def remove_executor(self, executor: int) -> int:
        """Retire an empty executor; returns the new map version."""
        if executor not in self._live:
            raise ConfigurationError(f"executor {executor} is not live")
        hosted = self.shards_on(executor)
        if hosted:
            raise ConfigurationError(
                f"executor {executor} still hosts shards {list(hosted)}"
            )
        if len(self._live) == 1:
            raise ConfigurationError("cannot retire the last executor")
        self._live.remove(executor)
        self.version += 1
        self.history.append((self.version, "merge", executor))
        return self.version

    # -- reporting -------------------------------------------------------
    def stats(self) -> dict:
        """Deterministic placement summary (for reports and gauges)."""
        return {
            "version": self.version,
            "num_shards": self.num_shards,
            "executors": list(self.executors),
            "shards_per_executor": {
                executor: len(self.shards_on(executor))
                for executor in self.executors
            },
            "mutations": len(self.history),
        }
