"""The elastic sharded streaming server: live re-hosting of shards.

The static :class:`~repro.shard.streaming.ShardedStreamingServer`
pins one serving core per shard forever; a hotspot shard then caps
cluster throughput no matter how many cold shards exist.  This module
separates the two concerns:

* **Logical shards** — a fixed fine spatial partition
  (``num_executors * partitions_per_executor`` grid shards routed
  exactly like the static server, halos included).  Each logical
  shard owns one :class:`~repro.stream.online_server.StreamingTCSCServer`
  core for its whole life, so *what* is computed never depends on
  placement.
* **Physical executors** — where each core currently runs, tracked by
  the epoch-versioned :class:`~repro.elastic.shardmap.ElasticShardMap`.
  Split/merge/migrate only edit this map (and re-host cores), which
  is why every elastic run's plans, per-shard metrics, and op
  counters are byte-identical to the never-migrated run — the gate
  ``repro.bench.elasticsuite`` sweeps at every boundary.

Migration protocol (DESIGN §12): each core carries a
:class:`~repro.elastic.log.MigrationLogLayer` maintaining snapshot +
record suffix.  To migrate, the driver rebuilds the core from the
snapshot (PR-4 exact codec), replays the suffix in *verify* mode
(:class:`~repro.errors.JournalReplayError` on any divergence), checks
full :func:`~repro.journal.snapshot.server_state` equality against
the live core, and only then flips ownership in the map — snapshot,
verified catch-up, atomic flip.

All cores advance in lockstep over the shared epoch grid; per-tick op
cost accrues to each core's *current* executor, and the modeled
makespan is the sum over ticks of the maximum per-executor accrual —
the :class:`~repro.parallel.simcluster.SimCluster` barrier idiom
applied per epoch, so rebalancing shows up as makespan without ever
touching wall clock.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.elastic.controller import ElasticAction, ElasticController
from repro.elastic.log import MigrationLogLayer, ShardLog
from repro.elastic.shardmap import ElasticShardMap
from repro.errors import ConfigurationError, JournalReplayError, SchedulingError
from repro.journal.snapshot import restore_server_state, server_state
from repro.journal.wal import decode_event
from repro.shard.streaming import ShardedStreamingServer, ShardedStreamMetrics
from repro.stream.events import EventQueue
from repro.stream.online_server import StreamingTCSCServer

__all__ = [
    "ElasticStreamMetrics",
    "ElasticStreamingServer",
    "MigrationRecord",
]

#: Logical shards per executor when the caller does not say otherwise.
#: Over-partitioning is what gives the controller freedom: with one
#: logical shard per executor a migration can only swap hotspots
#: around, never spread them.
DEFAULT_PARTITIONS = 4


@dataclass(frozen=True, slots=True)
class MigrationRecord:
    """One applied placement change, with its verification receipt."""

    time: float
    shard: int
    source: int
    dest: int
    map_version: int
    #: Suffix records re-verified during catch-up (the replay cost).
    records_replayed: int
    #: Events among them (the shipped sub-trace length).
    events_replayed: int
    kind: str = "migrate"


@dataclass(slots=True)
class ElasticStreamMetrics(ShardedStreamMetrics):
    """The sharded metrics plus the placement story."""

    migrations: list[MigrationRecord] = field(default_factory=list)
    #: Settled boundary time per lockstep tick, in order.
    boundary_times: list[float] = field(default_factory=list)
    splits: int = 0
    merges: int = 0
    #: Nominal (initial) and final executor counts.
    num_executors: int = 0
    final_executors: int = 0
    map_version: int = 0
    #: Total op cost accrued per executor id over the whole run.
    executor_costs: dict[int, float] = field(default_factory=dict)

    @property
    def balance(self) -> float:
        """Makespan over the perfectly balanced ideal (1.0 = ideal)."""
        if self.num_executors <= 0 or self.serial_cost <= 0.0:
            return 1.0
        return self.makespan / (self.serial_cost / self.num_executors)

    def report(self) -> str:
        # Explicit base call: the zero-arg ``super()`` cell does not
        # survive the ``slots=True`` dataclass class rebuild.
        lines = [
            ShardedStreamMetrics.report(self),
            f"elastic   executors={self.num_executors}->{self.final_executors} "
            f"migrations={len(self.migrations)} splits={self.splits} "
            f"merges={self.merges} map_version={self.map_version}",
            f"balance   {self.balance:.2f}x ideal over "
            f"{len(self.boundary_times)} lockstep ticks",
        ]
        for record in self.migrations:
            lines.append(
                f"  t={record.time:g} {record.kind} shard {record.shard}: "
                f"executor {record.source} -> {record.dest} "
                f"(replayed {record.records_replayed} records, "
                f"{record.events_replayed} events, v{record.map_version})"
            )
        return "\n".join(lines)


class ElasticStreamingServer(ShardedStreamingServer):
    """Sharded streaming with live split/merge/migration.

    Routing (task ownership, worker halos, refresh splitting) is the
    parent's, applied over ``num_executors * partitions_per_executor``
    logical shards.  ``controller`` decides placement changes at every
    settled boundary (defaults to an auto hysteresis
    :class:`~repro.elastic.controller.ElasticController`);
    ``snapshot_every`` bounds the catch-up suffix a migration must
    replay.  ``layer_factory(shard) -> layers`` attaches extra layers
    (telemetry) per logical core; the migration log layer is always
    installed first and survives re-hosting.
    """

    def __init__(
        self,
        bbox,
        *,
        num_executors: int,
        partitions_per_executor: int = DEFAULT_PARTITIONS,
        cells_per_side: int | None = None,
        halo_margin: str | float = "auto",
        controller: ElasticController | None = None,
        snapshot_every: int = 4,
        layer_factory=None,
        recorder=None,
        **server_kwargs,
    ):
        if num_executors < 1:
            raise ConfigurationError(
                f"num_executors must be >= 1, got {num_executors}"
            )
        if partitions_per_executor < 1:
            raise ConfigurationError(
                f"partitions_per_executor must be >= 1, "
                f"got {partitions_per_executor}"
            )
        if snapshot_every < 1:
            raise ConfigurationError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        self.num_executors = num_executors
        self.snapshot_every = snapshot_every
        #: Optional trace sink: placement changes become paired
        #: ``migrate-out`` / ``migrate-in`` records under the shard's
        #: causal span.  Everything recorded is virtual-time state, so
        #: the records mask-diff clean.
        self.recorder = recorder
        num_logical = num_executors * partitions_per_executor
        self._logs = [ShardLog(shard) for shard in range(num_logical)]
        self._extra_layers: dict[int, tuple] = {}
        self._layer_factory = layer_factory
        self._core_kwargs: dict = {}
        super().__init__(
            bbox,
            num_shards=num_logical,
            cells_per_side=cells_per_side,
            halo_margin=halo_margin,
            server_factory=self._make_core,
            **server_kwargs,
        )
        self.shard_map = ElasticShardMap(num_logical, num_executors)
        self.controller = (
            controller if controller is not None else ElasticController()
        )
        self._epochs_since_snapshot = [0] * num_logical

    def _make_core(self, shard, bbox, server_kwargs):
        """The factory seam: every logical core gets its migration log
        layer first, then any caller-supplied layers."""
        self._core_kwargs = dict(server_kwargs)
        extras = (
            tuple(self._layer_factory(shard))
            if self._layer_factory is not None
            else ()
        )
        self._extra_layers[shard] = extras
        log_layer = MigrationLogLayer(self._logs[shard])
        return StreamingTCSCServer(
            bbox, layers=(log_layer,) + extras, **server_kwargs
        )

    # ------------------------------------------------------------------
    # The lockstep drive
    # ------------------------------------------------------------------
    def run(self, events) -> ElasticStreamMetrics:
        """Route the trace, drive every core in lockstep, and apply the
        controller's placement decisions at each settled boundary."""
        if self._ran:
            raise SchedulingError(
                "ElasticStreamingServer.run is one-shot; "
                "create a new server per trace"
            )
        self._ran = True
        per_shard, routed = self.route(events)
        metrics = ElasticStreamMetrics(
            worker_routes=routed.worker_routes,
            tasks_routed=routed.tasks_routed,
            dropped_events=routed.dropped_events,
            num_executors=self.num_executors,
        )
        for shard, trace in enumerate(per_shard):
            self.servers[shard].begin(trace)
            self._logs[shard].take_snapshot(self.servers[shard])

        executor_costs: dict[int, float] = {
            executor: 0.0 for executor in self.shard_map.executors
        }
        tick = 0
        while True:
            live = [
                shard
                for shard in range(self.num_shards)
                if self.servers[shard].pending_work()
            ]
            if not live:
                break
            boundary = min(
                self.servers[shard].next_boundary() for shard in live
            )
            tick += 1
            tick_costs: dict[int, float] = {}
            tick_deltas: dict[int, float] = {}
            for shard in live:
                core = self.servers[shard]
                if core.next_boundary() != boundary:
                    continue
                before = core.counters.virtual_cost()
                core.step_epoch()
                delta = core.counters.virtual_cost() - before
                tick_deltas[shard] = delta
                executor = self.shard_map.executor_of(shard)
                tick_costs[executor] = tick_costs.get(executor, 0.0) + delta
                self._epochs_since_snapshot[shard] += 1
                if self._epochs_since_snapshot[shard] >= self.snapshot_every:
                    self._logs[shard].take_snapshot(core)
                    self._epochs_since_snapshot[shard] = 0
            metrics.boundary_times.append(boundary)
            metrics.makespan += max(tick_costs.values(), default=0.0)
            for executor, cost in tick_costs.items():
                executor_costs[executor] = (
                    executor_costs.get(executor, 0.0) + cost
                )
            signals = {
                shard: (
                    len(self.servers[shard]._pending),
                    tick_deltas.get(shard, 0.0),
                )
                for shard in range(self.num_shards)
            }
            for action in self.controller.decide(
                tick, boundary, signals, self.shard_map
            ):
                self._apply(action, metrics, boundary)

        # Realization accrues to whichever executor owns each core at
        # the end, behind the same per-tick barrier.
        final_costs: dict[int, float] = {}
        for shard in range(self.num_shards):
            core = self.servers[shard]
            before = core.counters.virtual_cost()
            metrics.per_shard.append(core.finish())
            delta = core.counters.virtual_cost() - before
            executor = self.shard_map.executor_of(shard)
            final_costs[executor] = final_costs.get(executor, 0.0) + delta
            executor_costs[executor] = executor_costs.get(executor, 0.0) + delta
        metrics.makespan += max(final_costs.values(), default=0.0)
        metrics.serial_cost = sum(
            core.counters.virtual_cost() for core in self.servers
        )
        metrics.executor_costs = {
            executor: executor_costs.get(executor, 0.0)
            for executor in sorted(executor_costs)
        }
        metrics.final_executors = len(self.shard_map.executors)
        metrics.map_version = self.shard_map.version
        return metrics

    # ------------------------------------------------------------------
    # Applying placement decisions
    # ------------------------------------------------------------------
    def _apply(
        self, action: ElasticAction, metrics: ElasticStreamMetrics, now: float
    ) -> None:
        if action.kind == "split":
            dest = self.shard_map.add_executor()
            metrics.splits += 1
            self._migrate(action.shard, dest, metrics, now, kind="split")
        elif action.kind == "merge":
            for shard in self.shard_map.shards_on(action.source):
                self._migrate(shard, action.dest, metrics, now, kind="merge")
            self.shard_map.remove_executor(action.source)
            metrics.merges += 1
        elif action.kind == "migrate":
            self._migrate(action.shard, action.dest, metrics, now)
        else:
            raise ConfigurationError(
                f"unknown elastic action kind {action.kind!r}"
            )

    def _migrate(
        self,
        shard: int,
        dest: int,
        metrics: ElasticStreamMetrics,
        now: float,
        kind: str = "migrate",
    ) -> None:
        """Snapshot-ship one logical shard's core to ``dest``.

        Rebuild from the last snapshot, catch up by verified replay of
        the record suffix, prove full state equality against the live
        core, then atomically flip ownership.  Raises
        :class:`~repro.errors.JournalReplayError` if the rebuilt core
        would have computed anything else — a failed verification
        leaves the placement map untouched.
        """
        old = self.servers[shard]
        log = self._logs[shard]
        if self.recorder is not None:
            source_executor = self.shard_map.executor_of(shard)
            self.recorder.record(
                "migrate-out",
                causal=f"shard/{shard}",
                shard=shard,
                source=source_executor,
                dest=dest,
                now=now,
                kind=kind,
            )
        suffix_events = [
            decode_event(payload)
            for record_kind, payload in log.suffix
            if record_kind == "event"
        ]
        remainder = []
        while True:
            event = old._queue.pop()
            if event is None:
                break
            remainder.append(event)

        replay_layer = MigrationLogLayer(log)
        replay_layer.begin_replay(log.suffix)
        fresh = StreamingTCSCServer(
            self.bbox, layers=(replay_layer,), **dict(self._core_kwargs)
        )
        restore_server_state(fresh, json.loads(json.dumps(log.snapshot)))
        fresh.begin(EventQueue(suffix_events + remainder))
        target = old.clock.now
        while fresh.pending_work() and fresh.clock.now < target:
            fresh.step_epoch()
        replay_layer.end_replay()
        if server_state(fresh) != server_state(old):
            raise JournalReplayError(
                f"elastic migration of shard {shard} diverged: the rebuilt "
                f"core's state does not match the live core at t={now:g}"
            )

        # Verified: flip ownership atomically (single-version bump) and
        # re-attach the caller's layers to the re-hosted core.
        records_replayed = len(log.suffix)
        extras = self._extra_layers.get(shard, ())
        fresh.layers = tuple(fresh.layers) + extras
        for layer in extras:
            layer.bind(fresh)
        source = self.shard_map.executor_of(shard)
        self.servers[shard] = fresh
        version = self.shard_map.migrate(shard, dest)
        log.take_snapshot(fresh)
        self._epochs_since_snapshot[shard] = 0
        metrics.migrations.append(
            MigrationRecord(
                time=now,
                shard=shard,
                source=source,
                dest=dest,
                map_version=version,
                records_replayed=records_replayed,
                events_replayed=len(suffix_events),
                kind=kind,
            )
        )
        if self.recorder is not None:
            self.recorder.record(
                "migrate-in",
                causal=f"shard/{shard}",
                shard=shard,
                source=source,
                dest=dest,
                now=now,
                kind=kind,
                map_version=version,
                records_replayed=records_replayed,
                events_replayed=len(suffix_events),
            )
