"""Per-shard migration log: snapshot + verified record suffix.

Live migration ships a logical shard to a fresh core as *snapshot +
catch-up replay*: restore the last settled snapshot (the PR-4 exact
codec, :mod:`repro.journal.snapshot`), then re-run the record suffix
accumulated since.  :class:`ShardLog` holds that pair;
:class:`MigrationLogLayer` maintains it through the PR-5 layer seam
in two modes:

* **append** (normal serving) — every hook fires a JSON-native record
  into the suffix, log-before-apply like
  :class:`~repro.journal.layer.JournalLayer`;
* **replay** (catch-up on the receiving core) — the same hooks
  *verify* the records the catch-up regenerates against the shipped
  suffix instead of re-appending them.  Any mismatch — wrong record,
  too few, too many — raises
  :class:`~repro.errors.JournalReplayError`, the same divergence
  semantics crash recovery uses.  A migration therefore cannot
  silently hand over a core that would have computed something else.
"""

from __future__ import annotations

import json

from repro.errors import JournalReplayError
from repro.journal.snapshot import server_state
from repro.journal.wal import encode_event
from repro.runtime.layers import ServingLayer

__all__ = ["MigrationLogLayer", "ShardLog"]


class ShardLog:
    """The migratable state of one logical shard.

    ``snapshot`` is the JSON-round-tripped
    :func:`~repro.journal.snapshot.server_state` at the last settled
    boundary the shard checkpointed; ``suffix`` is every record the
    layer observed since.  Together they are exactly what a receiving
    executor needs to rebuild the core bit-for-bit.
    """

    def __init__(self, shard: int):
        self.shard = shard
        self.snapshot: dict | None = None
        self.snapshot_clock = 0.0
        self.suffix: list[list] = []
        self.snapshots_taken = 0
        self.records_logged = 0

    def take_snapshot(self, server) -> None:
        """Checkpoint ``server`` and reset the suffix.

        The JSON round trip is deliberate: it proves the snapshot is
        wire-shippable and pins float identity to ``repr`` exactly as
        the on-disk journal does.
        """
        self.snapshot = json.loads(json.dumps(server_state(server)))
        self.snapshot_clock = server.clock.now
        self.suffix = []
        self.snapshots_taken += 1


class MigrationLogLayer(ServingLayer):
    """Append records in service, verify them during catch-up."""

    def __init__(self, log: ShardLog):
        self.log = log
        self._server = None
        #: Expected records while in replay mode; ``None`` = append.
        self._replay: list[list] | None = None
        self._cursor = 0

    def bind(self, server) -> None:
        self._server = server

    # -- mode switches ---------------------------------------------------
    def begin_replay(self, records: list[list]) -> None:
        """Enter verify mode against a shipped suffix."""
        self._replay = list(records)
        self._cursor = 0

    def end_replay(self) -> None:
        """Leave verify mode; the whole suffix must have been consumed."""
        if self._replay is None:
            return
        if self._cursor != len(self._replay):
            raise JournalReplayError(
                f"migration catch-up of shard {self.log.shard} consumed "
                f"{self._cursor} of {len(self._replay)} suffix records"
            )
        self._replay = None
        self._cursor = 0

    @property
    def replaying(self) -> bool:
        return self._replay is not None

    # -- the one record pipe --------------------------------------------
    def _emit(self, record: list) -> None:
        record = json.loads(json.dumps(record))
        if self._replay is not None:
            if self._cursor >= len(self._replay):
                raise JournalReplayError(
                    f"migration catch-up of shard {self.log.shard} generated "
                    f"more records than the shipped suffix "
                    f"({len(self._replay)}); first extra: {record!r}"
                )
            expected = self._replay[self._cursor]
            if expected != record:
                raise JournalReplayError(
                    f"migration catch-up of shard {self.log.shard} diverged "
                    f"at record {self._cursor}: expected {expected!r}, "
                    f"regenerated {record!r}"
                )
            self._cursor += 1
            return
        self.log.suffix.append(record)
        self.log.records_logged += 1

    # -- hook points (mirror the journal layer's log-before-apply) ------
    def before_event(self, event, metrics) -> None:
        self._emit(["event", encode_event(event)])

    def before_commit(self, session, worker_id, gslot, slot, cost) -> None:
        self._emit(
            ["commit", [session.task.task_id, worker_id, gslot, slot, cost]]
        )

    def before_finalize(self, session, metrics) -> None:
        self._emit(["finalize", [session.task.task_id]])

    def on_epoch_end(self, metrics, now) -> None:
        self._emit(["epoch", [metrics.epochs, now]])
