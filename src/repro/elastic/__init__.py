"""Elastic sharding: live shard split/merge/migration (PR 8).

The synthesis subsystem over four earlier seams: PR 3's spatial
partitioner and halos fix *what* each logical shard owns, PR 4's
exact snapshot codec and WAL encoding make a live core *shippable*,
PR 5's layer seam attaches the migration log without touching the
core, and PR 6/7's deterministic-signal policy idiom drives *when*
placement changes.  The result is rebalancing that provably never
changes what is computed: every migration is verified record-by-
record and state-by-state before ownership flips, and
``python -m repro bench-elastic`` sweeps a migration across every
event boundary asserting byte-identical plans, metrics, and op
counters against the never-migrated run.
"""

from repro.elastic.controller import ElasticAction, ElasticController
from repro.elastic.log import MigrationLogLayer, ShardLog
from repro.elastic.server import (
    DEFAULT_PARTITIONS,
    ElasticStreamMetrics,
    ElasticStreamingServer,
    MigrationRecord,
)
from repro.elastic.shardmap import ElasticShardMap

__all__ = [
    "DEFAULT_PARTITIONS",
    "ElasticAction",
    "ElasticController",
    "ElasticShardMap",
    "ElasticStreamMetrics",
    "ElasticStreamingServer",
    "MigrationLogLayer",
    "MigrationRecord",
    "ShardLog",
]
