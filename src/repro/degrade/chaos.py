"""Deterministic fault injection for the streaming runtime.

Three injection kinds cover the overload and failure axes the
degradation ladder must answer (``simulate --inject FILE``):

* ``flash_crowd`` — an event burst: ``tasks`` extra task arrivals at
  one instant, locations drawn from the scenario's own distribution
  under a label-addressed RNG stream, so the burst is a deterministic
  function of ``(scenario seed, injection index)``.
* ``region_outage`` — correlated worker departure: every worker
  present at ``at`` whose trajectory touches the disk of ``radius``
  around ``(x, y)`` leaves at ``at`` (its scheduled departure event is
  *moved*, never duplicated).
* ``slowdown`` — a degraded machine: :class:`ChaosLayer` caps the
  op-count budget (``OpCounters.virtual_cost`` units) one core's epoch
  assignment rounds may spend.  Throttling is op-count based, never
  wall clock, so a throttled run is exactly reproducible.

The first two are pure trace transforms (:func:`apply_injections`
returns a new :class:`~repro.workloads.streaming.StreamScenario`);
the third rides the PR-5 layer seam.  Injection files are JSON:
``{"injections": [{"kind": "flash_crowd", "at": 6.0, "tasks": 8}]}``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, fields
from pathlib import Path

from repro.errors import ConfigurationError
from repro.runtime.layers import ServingLayer
from repro.stream.events import TaskArrival, WorkerJoin, WorkerLeave
from repro.util.rng import derive_rng
from repro.workloads.streaming import StreamScenario

__all__ = [
    "INJECTION_KINDS",
    "InjectionSpec",
    "load_injections",
    "apply_injections",
    "ChaosLayer",
]

INJECTION_KINDS = ("flash_crowd", "region_outage", "slowdown")


@dataclass(frozen=True, slots=True)
class InjectionSpec:
    """One declarative fault (see the module docstring for kinds)."""

    kind: str
    at: float = 0.0
    tasks: int = 0          # flash_crowd: burst size
    x: float = 0.0          # region_outage: outage center
    y: float = 0.0
    radius: float = 0.0     # region_outage: outage radius
    op_budget: int = 0      # slowdown: per-epoch virtual-cost cap
    shard: int | None = None  # slowdown: target core (None = shard 0)

    def __post_init__(self):
        if self.kind not in INJECTION_KINDS:
            raise ConfigurationError(
                f"unknown injection kind {self.kind!r}; "
                f"choose one of {INJECTION_KINDS}"
            )
        if self.at < 0:
            raise ConfigurationError(f"injection at must be >= 0, got {self.at}")
        if self.kind == "flash_crowd" and self.tasks < 1:
            raise ConfigurationError(
                f"flash_crowd needs tasks >= 1, got {self.tasks}"
            )
        if self.kind == "region_outage" and self.radius <= 0:
            raise ConfigurationError(
                f"region_outage needs radius > 0, got {self.radius}"
            )
        if self.kind == "slowdown":
            if self.op_budget < 1:
                raise ConfigurationError(
                    f"slowdown needs op_budget >= 1, got {self.op_budget}"
                )
            if self.shard is not None and self.shard < 0:
                raise ConfigurationError(
                    f"slowdown shard must be >= 0, got {self.shard}"
                )

    @classmethod
    def from_dict(cls, data: dict) -> "InjectionSpec":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"an injection must be a JSON object, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"injection does not accept field(s) {unknown}; "
                f"known fields: {sorted(known)}"
            )
        if "kind" not in data:
            raise ConfigurationError("injection needs a 'kind' field")
        return cls(**data)


def load_injections(path: str | Path) -> tuple[InjectionSpec, ...]:
    """Parse one ``--inject`` JSON file into validated specs."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise ConfigurationError(f"cannot read injection file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or not isinstance(data.get("injections"), list):
        raise ConfigurationError(
            f"{path} must be a JSON object with an 'injections' array"
        )
    return tuple(InjectionSpec.from_dict(entry) for entry in data["injections"])


def apply_injections(
    scenario: StreamScenario, injections: tuple[InjectionSpec, ...]
) -> StreamScenario:
    """A new scenario with the trace-level injections applied.

    ``slowdown`` injections are runtime faults (:class:`ChaosLayer`)
    and leave the trace untouched.  The input scenario is never
    mutated.
    """
    from repro.model.task import Task
    from repro.workloads.spatial import generate_points

    events = list(scenario.events)
    config = scenario.config
    next_task_id = 1 + max(
        (e.task.task_id for e in events if isinstance(e, TaskArrival)),
        default=-1,
    )
    for index, spec in enumerate(injections):
        if spec.kind == "flash_crowd":
            locations = generate_points(
                spec.tasks,
                scenario.bbox,
                config.distribution,
                seed=derive_rng(config.seed, f"chaos-flash-{index}"),
            )
            start_slot = int(math.floor(spec.at)) + 1
            for loc in locations:
                task = Task(
                    task_id=next_task_id,
                    loc=loc,
                    num_slots=config.task_slots,
                    start_slot=start_slot,
                )
                events.append(TaskArrival(time=float(spec.at), task=task))
                next_task_id += 1
        elif spec.kind == "region_outage":
            joins: dict[int, WorkerJoin] = {}
            leave_at: dict[int, int] = {}
            for position, event in enumerate(events):
                if isinstance(event, WorkerJoin):
                    joins[event.worker.worker_id] = event
                elif isinstance(event, WorkerLeave):
                    leave_at[event.worker_id] = position
            for worker_id, join in joins.items():
                position = leave_at.get(worker_id)
                if position is None:
                    continue
                if not join.time <= spec.at < events[position].time:
                    continue  # not present when the region fails
                hit = any(
                    math.hypot(loc.x - spec.x, loc.y - spec.y) <= spec.radius
                    for loc in join.worker.availability.values()
                )
                if hit:
                    events[position] = WorkerLeave(
                        time=float(spec.at), worker_id=worker_id
                    )
    events.sort(key=lambda e: e.time)
    return StreamScenario(config=config, bbox=scenario.bbox, events=events)


class ChaosLayer(ServingLayer):
    """Apply one ``slowdown`` injection to a streaming core.

    At bind time it caps the core's per-epoch op budget
    (``server.op_epoch_budget``, in ``OpCounters.virtual_cost`` units);
    the server's step loop stops an epoch's assignment rounds once the
    cap is spent.  The layer itself performs no work per event and
    never reads wall clock.
    """

    def __init__(self, op_budget: int):
        self.op_budget = op_budget

    def bind(self, server) -> None:
        server.op_epoch_budget = self.op_budget
