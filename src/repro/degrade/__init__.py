"""Graceful degradation under overload (PR 7).

Three pieces turn "exact plan or dropped task" into a ladder:

* :mod:`repro.degrade.certify` — the gain-envelope quality bound that
  turns a degraded greedy plan into a *certified* one;
* :mod:`repro.degrade.policy` — the deterministic-hysteresis mode
  ladder (exact → top-c → top-c+floor → shed) and its serving layer;
* :mod:`repro.degrade.chaos` — deterministic fault injection (flash
  crowds, region outages, op-budget slowdowns) so degradation is
  testable and benchmarkable.

Everything is spec-driven (``RunSpec.approx`` and friends) and
composed by :func:`repro.runtime.build_runtime`; ``approx="off"``
leaves every runtime byte-identical to the exact solvers.
"""

from repro.degrade.certify import gain_envelope_bound
from repro.degrade.chaos import (
    INJECTION_KINDS,
    ChaosLayer,
    InjectionSpec,
    apply_injections,
    load_injections,
)
from repro.degrade.policy import (
    LEVEL_NAMES,
    DegradationController,
    DegradationLayer,
    DegradeDirective,
)

__all__ = [
    "gain_envelope_bound",
    "INJECTION_KINDS",
    "ChaosLayer",
    "InjectionSpec",
    "apply_injections",
    "load_injections",
    "LEVEL_NAMES",
    "DegradationController",
    "DegradationLayer",
    "DegradeDirective",
]
