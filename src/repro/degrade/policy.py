"""SLO-aware degradation: the mode ladder and its serving layer.

Under overload the runtime should not choose between "exact plan" and
"dropped task" — the ladder in between is

    level 0  exact          (the seed greedy, certificate 1.0)
    level 1  top-c          (bounded-candidate search, certified)
    level 2  top-c + floor  (also stop at the marginal-gain floor)
    level 3  shed           (reject *new* arrivals; active sessions
                             keep being served at level 2)

:class:`DegradationController` walks the ladder with deterministic
hysteresis driven by *virtual* load signals only — pending-queue depth
and (optionally) the exact p99 of the ``latency_slots`` histogram from
the PR-6 :class:`~repro.obs.metrics.MetricsRegistry` — never wall
clock, so a degraded run is a reproducible function of its spec and
scenario.  Escalation and de-escalation move one level per epoch:
escalate when the queue reaches ``queue_high`` (or p99 exceeds the
SLO), de-escalate only once it falls back to ``queue_low`` (and p99 is
back under the SLO), so the controller cannot flap between adjacent
levels on a boundary queue depth.

:class:`DegradationLayer` attaches the controller to the PR-5 layer
seam: it evaluates the policy at each epoch end (the only hook where
the queue depth is settled) and emits every transition as a ``degrade``
trace record plus ``degrade/*`` metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.runtime.layers import ServingLayer

__all__ = [
    "LEVEL_NAMES",
    "DegradeDirective",
    "DegradationController",
    "DegradationLayer",
]

LEVEL_NAMES = ("exact", "top_c", "top_c+floor", "shed")


@dataclass(frozen=True, slots=True)
class DegradeDirective:
    """What one epoch's sessions should do (read by the step loop)."""

    level: int = 0
    top_c: int | None = None
    floor: float | None = None
    shed: bool = False

    @property
    def name(self) -> str:
        return LEVEL_NAMES[self.level]


class DegradationController:
    """The deterministic hysteresis policy over the mode ladder."""

    def __init__(
        self,
        *,
        top_c: int,
        floor: float,
        queue_high: int,
        queue_low: int,
        slo_p99: float | None = None,
    ):
        if top_c < 1:
            raise ConfigurationError(f"top_c must be >= 1, got {top_c}")
        if not 0.0 < floor <= 1.0:
            raise ConfigurationError(f"floor must be in (0, 1], got {floor}")
        if not 0 <= queue_low < queue_high:
            raise ConfigurationError(
                f"hysteresis needs 0 <= queue_low < queue_high, "
                f"got low={queue_low} high={queue_high}"
            )
        self.top_c = top_c
        self.floor = floor
        self.queue_high = queue_high
        self.queue_low = queue_low
        self.slo_p99 = slo_p99
        self.level = 0
        self.pinned = False
        #: ``(epoch_index, old_level, new_level, queue_depth, p99)``
        #: per transition, in order — the layer mirrors these into the
        #: trace; kept here too so unlayered callers can assert policy.
        self.transitions: list[tuple[int, int, int, int, float | None]] = []
        self._epochs_seen = 0

    # -- construction helpers -------------------------------------------
    @classmethod
    def fixed(
        cls, *, top_c: int | None = None, floor: float | None = None
    ) -> "DegradationController":
        """A controller pinned to one static directive (``approx=
        'top_c'`` / ``'floor'``): :meth:`observe` never moves it."""
        controller = cls(
            top_c=top_c if top_c is not None else 1,
            floor=floor if floor is not None else 1.0,
            queue_high=1,
            queue_low=0,
        )
        controller.pinned = True
        controller._fixed_directive = DegradeDirective(
            level=2 if (top_c is not None and floor is not None)
            else (1 if top_c is not None else 2),
            top_c=top_c,
            floor=floor,
        )
        return controller

    # -- the policy ------------------------------------------------------
    @property
    def shedding(self) -> bool:
        """New arrivals are being rejected outright."""
        return not self.pinned and self.level == len(LEVEL_NAMES) - 1

    def directive(self) -> DegradeDirective:
        """The directive sessions should follow right now."""
        if self.pinned:
            return self._fixed_directive
        if self.level == 0:
            return DegradeDirective(level=0)
        if self.level == 1:
            return DegradeDirective(level=1, top_c=self.top_c)
        # Levels 2 and 3 both serve active sessions at top-c + floor;
        # level 3 additionally sheds new arrivals (the server checks
        # ``shedding`` at admission).
        return DegradeDirective(
            level=self.level,
            top_c=self.top_c,
            floor=self.floor,
            shed=self.level == 3,
        )

    def observe(
        self, queue_depth: int, p99: float | None = None
    ) -> tuple[int, int] | None:
        """Feed one epoch's load signals; returns ``(old, new)`` on a
        level transition, ``None`` otherwise."""
        self._epochs_seen += 1
        if self.pinned:
            return None
        overloaded = queue_depth >= self.queue_high
        calm = queue_depth <= self.queue_low
        if self.slo_p99 is not None and p99 is not None:
            overloaded = overloaded or p99 > self.slo_p99
            calm = calm and p99 <= self.slo_p99
        old = self.level
        if overloaded and self.level < len(LEVEL_NAMES) - 1:
            self.level += 1
        elif calm and self.level > 0:
            self.level -= 1
        if self.level == old:
            return None
        self.transitions.append(
            (self._epochs_seen, old, self.level, queue_depth, p99)
        )
        return (old, self.level)


class DegradationLayer(ServingLayer):
    """Attach a controller to a streaming core via the layer seam.

    ``bind`` hands the server its controller (the step loop and the
    admission path read directives from ``server.degradation``); each
    ``on_epoch_end`` feeds the policy the settled queue depth plus the
    exact p99 of the telemetry ``latency_slots`` histogram when one
    exists, and mirrors any transition into the trace and the
    ``degrade/*`` metrics.  Policy evaluation reads load state only —
    it never touches sessions, solver state, or op counters.
    """

    def __init__(self, controller, *, recorder=None, registry=None):
        self.controller = controller
        self.recorder = recorder
        self.registry = registry
        self._server = None

    def bind(self, server) -> None:
        self._server = server
        server.degradation = self.controller

    def _p99(self) -> float | None:
        if self.registry is None or "latency_slots" not in self.registry:
            return None
        histogram = self.registry.histogram("latency_slots")
        if histogram.count == 0:
            return None
        return histogram.percentile(99)

    def on_epoch_end(self, metrics, now) -> None:
        depth = len(self._server._pending)
        p99 = self._p99()
        change = self.controller.observe(depth, p99)
        if self.registry is not None:
            self.registry.gauge("degrade/level").set(self.controller.level)
        if change is None:
            return
        old, new = change
        if self.registry is not None:
            self.registry.counter("degrade/transitions").inc()
        if self.recorder is not None:
            self.recorder.record(
                "degrade",
                causal=f"epoch/{metrics.epochs}",
                epoch=metrics.epochs,
                now=now,
                from_level=LEVEL_NAMES[old],
                to_level=LEVEL_NAMES[new],
                queue_depth=depth,
                p99=p99,
            )
