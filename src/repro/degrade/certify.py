"""Certified quality bounds for degraded greedy plans.

For a monotone submodular quality function ``f`` and any feasible
assignment ``T`` under a knapsack budget, submodularity gives

    f(T) <= f(S) + sum_{e in T \\ S} gain(e | S)

for every set ``S`` — in particular for the greedy solver's *final*
set.  The right-hand sum over any feasible ``T`` is itself bounded by
the fractional-knapsack relaxation over the still-assignable slots'
marginal gains at ``S``, which is what :func:`gain_envelope_bound`
computes.  Adding ``f(S)`` yields an upper bound ``Q_bound >= OPT``,
so ``quality / Q_bound`` is a *certified* lower bound on the quality
ratio ``Q(approx) / Q(exact)`` — no exact solve required.

The bound is only sound when marginal gains are exact at the final
state, which holds under the same premises as CELF lazy search
(static costs, unit reliabilities); callers fall back to the exact
solver when the premises fail (the heterogeneous-reliability fallback
rule from DESIGN §5).

This module is deliberately standalone (no ``repro.core`` imports) so
the solver can import it lazily without a cycle.
"""

from __future__ import annotations

__all__ = ["gain_envelope_bound"]

_EPS = 1e-12


def gain_envelope_bound(
    gains_costs: list[tuple[float, float]], capacity: float
) -> float:
    """Fractional-knapsack upper bound on achievable residual gain.

    ``gains_costs`` holds ``(gain, cost)`` pairs for every
    still-assignable slot evaluated at the solver's final state;
    ``capacity`` is the budget available to a competing plan.  Items
    are taken greedily by gain density with the boundary item taken
    fractionally — the classic LP relaxation, an upper bound on any
    integral selection.

    Non-positive gains contribute nothing (monotone ``f``); zero-cost
    items with positive gain are taken in full.
    """
    if capacity <= 0.0:
        return 0.0
    remaining = capacity
    bound = 0.0
    ranked = sorted(
        ((gain, cost) for gain, cost in gains_costs if gain > 0.0),
        key=lambda item: (-(item[0] / max(item[1], _EPS)), item[1]),
    )
    for gain, cost in ranked:
        if cost <= 0.0:
            bound += gain
            continue
        if cost <= remaining:
            bound += gain
            remaining -= cost
            if remaining <= 0.0:
                break
        else:
            bound += gain * (remaining / cost)
            break
    return bound
