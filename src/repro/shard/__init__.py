"""Sharded serving layer: halo-partitioned multi-shard TCSC.

The solvers (and the streaming subsystem) assume one process sees
every worker and every task.  This package removes that assumption:

* :mod:`repro.shard.partitioner` — a deterministic spatial partitioner
  that maps grid (or kd) cells to shards, assigns each task to the
  shard owning its location, and replicates boundary workers into
  per-shard *halos* sized so that every task's affordable worker set
  is fully visible inside its own shard.
* :mod:`repro.shard.server` — :class:`ShardedTCSCServer`, the
  coordinator: per-shard optimistic solves, cross-shard conflict
  detection on halo-replicated workers (the
  :class:`~repro.multi.tables.ConflictingTable` machinery), and a
  deterministic reconciliation pass that makes the merged plan
  byte-identical to the unsharded sequential solve
  (:class:`SequentialServingSolver`).
* :mod:`repro.shard.streaming` — the sharded streaming mode:
  :class:`ShardedStreamingServer` routes task arrivals to the shard
  owning their location and worker churn to the shards whose halo
  region covers the worker, so each epoch loop runs on a fraction of
  the universe.

Shard-count scaling is accounted in deterministic op-count makespan
terms through :class:`~repro.parallel.simcluster.SimCluster`.
"""

from repro.shard.partitioner import (
    HALO_AUTO,
    ShardMap,
    SpatialPartitioner,
    TaskFootprint,
)
from repro.shard.server import (
    SequentialServingSolver,
    ShardedReport,
    ShardedTCSCServer,
    ShardSolveStats,
)
from repro.shard.streaming import ShardedStreamingServer, ShardedStreamMetrics

__all__ = [
    "HALO_AUTO",
    "ShardMap",
    "SpatialPartitioner",
    "TaskFootprint",
    "SequentialServingSolver",
    "ShardedReport",
    "ShardedTCSCServer",
    "ShardSolveStats",
    "ShardedStreamingServer",
    "ShardedStreamMetrics",
]
