"""Sharded streaming mode: epoch loops over a partitioned universe.

The batch coordinator (:mod:`repro.shard.server`) proves plan
identity; the streaming mode trades that guarantee for horizontal
scale of the *online* loop.  A :class:`ShardedStreamingServer` owns
``num_shards`` independent :class:`~repro.stream.online_server.StreamingTCSCServer`
instances and routes the event trace deterministically:

* **Task arrivals** go to the shard owning the task's location (grid
  cells -> shards; each :class:`~repro.stream.session.TaskSession` is
  therefore *pinned* to exactly one shard for its whole lifetime).
* **Worker joins** are replicated to every shard whose region lies
  within ``halo_margin`` of any point of the worker's trajectory —
  the streaming halo.  Worker churn therefore updates only the
  owning shards' registries and session indexes; all other shards
  never see the event.
* **Worker leaves** follow the join routing; **budget refreshes**
  split evenly across shards.

Because shards share no workers *logically* (each halo copy is an
independent registry entry), cross-shard conflicts are not resolved
here — two shards may assign the same halo-replicated worker at the
same slot.  ``halo_margin`` controls that risk: 0 disables
replication entirely (disjoint worker universes, no duplication,
lower recall near borders); ``"auto"`` scales the margin with the
per-task budget fraction of the domain diagonal.  With
``num_shards=1`` the trace is replayed unchanged and the run is
byte-identical to the plain streaming server.

Shard-count scaling is reported as deterministic op-count makespan
via :class:`~repro.parallel.simcluster.SimCluster.run_partitions`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SchedulingError
from repro.geo.bbox import BoundingBox
from repro.model.assignment import Assignment
from repro.parallel.simcluster import SimCluster, WorkItem
from repro.shard.partitioner import SpatialPartitioner
from repro.stream.events import (
    BudgetRefresh,
    Event,
    EventQueue,
    TaskArrival,
    WorkerJoin,
    WorkerLeave,
)
from repro.stream.metrics import StreamMetrics
from repro.stream.online_server import StreamingTCSCServer

__all__ = ["ShardedStreamMetrics", "ShardedStreamingServer"]


@dataclass(slots=True)
class ShardedStreamMetrics:
    """Merged view over the per-shard streaming runs."""

    per_shard: list[StreamMetrics] = field(default_factory=list)
    #: Worker id -> shard ids its join event was replicated to.
    worker_routes: dict[int, tuple[int, ...]] = field(default_factory=dict)
    tasks_routed: list[int] = field(default_factory=list)  # per shard
    dropped_events: int = 0
    #: Deterministic op-count makespan of the sharded run (LPT over
    #: per-shard totals) and the one-core equivalent.
    makespan: float = 0.0
    serial_cost: float = 0.0

    @property
    def speedup(self) -> float:
        """Serial op cost / sharded makespan."""
        if self.makespan <= 0.0:
            return 1.0
        return self.serial_cost / self.makespan

    @property
    def replicated_workers(self) -> int:
        """Workers whose join was fanned out to two or more shards."""
        return sum(1 for shards in self.worker_routes.values() if len(shards) > 1)

    def _sum(self, attr: str) -> int:
        return sum(getattr(metrics, attr) for metrics in self.per_shard)

    @property
    def tasks_arrived(self) -> int:
        return self._sum("tasks_arrived")

    @property
    def tasks_admitted(self) -> int:
        return self._sum("tasks_admitted")

    @property
    def tasks_rejected(self) -> int:
        return self._sum("tasks_rejected")

    @property
    def tasks_completed(self) -> int:
        return self._sum("tasks_completed")

    @property
    def tasks_starved(self) -> int:
        return self._sum("tasks_starved")

    @property
    def epochs(self) -> int:
        return self._sum("epochs")

    @property
    def promised_quality(self) -> dict[int, float]:
        merged: dict[int, float] = {}
        for metrics in self.per_shard:
            merged.update(metrics.promised_quality)
        return merged

    @property
    def realized_quality(self) -> dict[int, float]:
        merged: dict[int, float] = {}
        for metrics in self.per_shard:
            merged.update(metrics.realized_quality)
        return merged

    def shard_stats(self) -> dict:
        """Deterministic per-shard ownership summary (stable keys,
        JSON-serializable) — the streaming sibling of
        :meth:`~repro.shard.partitioner.ShardMap.stats`."""
        halo_entries = sum(len(shards) for shards in self.worker_routes.values())
        distinct_workers = len(self.worker_routes)
        return {
            "num_shards": len(self.per_shard),
            "tasks_per_shard": list(self.tasks_routed),
            "halo_workers_per_shard": [
                sum(1 for shards in self.worker_routes.values() if s in shards)
                for s in range(len(self.per_shard))
            ],
            "replicated_workers": self.replicated_workers,
            # Mean shard copies per worker (1.0 = no halo replication).
            "halo_replication_factor": (
                halo_entries / distinct_workers if distinct_workers else 0.0
            ),
        }

    def report(self) -> str:
        """Operator-facing summary of the sharded run."""
        lines = [
            "sharded streaming report",
            "------------------------",
            f"shards    {len(self.per_shard)} "
            f"tasks_per_shard={self.tasks_routed} "
            f"replicated_workers={self.replicated_workers}",
            f"tasks     arrived={self.tasks_arrived} admitted={self.tasks_admitted} "
            f"rejected={self.tasks_rejected} completed={self.tasks_completed} "
            f"starved={self.tasks_starved}",
            f"epochs    {self.epochs} (sum over shards)",
            f"makespan  {self.makespan:.0f} op-units "
            f"(serial {self.serial_cost:.0f}, speedup {self.speedup:.2f}x)",
        ]
        for shard, metrics in enumerate(self.per_shard):
            lines.append(
                f"  shard {shard}: events={metrics.total_events} "
                f"completed={metrics.tasks_completed} "
                f"promised={metrics.mean_promised_quality:.4f}"
            )
        return "\n".join(lines)


class ShardedStreamingServer:
    """Route an event trace over per-shard streaming servers.

    ``halo_margin`` is ``"auto"`` (``budget_fraction`` of the domain
    diagonal), or a non-negative radius in domain units.  All other
    keyword arguments are forwarded to every per-shard
    :class:`~repro.stream.online_server.StreamingTCSCServer`.

    ``server_factory`` is the composition seam: a callable
    ``(shard, bbox, server_kwargs) -> StreamingTCSCServer`` that
    builds each shard's core — the journal runtime passes a factory
    that attaches a per-shard
    :class:`~repro.journal.layer.JournalLayer`, so durability x
    sharding needs no subclass.  ``None`` builds plain cores.

    ``executor`` switches the drain from the in-process shard loop to
    :func:`repro.par.stream.drain_sharded`: each shard's sub-trace
    runs as a JSON work unit wherever the
    :class:`~repro.par.executor.Executor` runs it, and the returned
    exact snapshots are restored into this server's cores in shard-id
    order — byte-identical to the serial drain.  ``telemetry`` is the
    parent :class:`~repro.obs.layer.Telemetry` bundle the executor
    drain merges per-shard observations into (executor runs build
    bare cores; workers attach their own shard-scoped layers).
    """

    def __init__(
        self,
        bbox: BoundingBox,
        *,
        num_shards: int,
        cells_per_side: int | None = None,
        halo_margin: str | float = "auto",
        server_factory=None,
        executor=None,
        telemetry=None,
        **server_kwargs,
    ):
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        self.bbox = bbox
        self.num_shards = num_shards
        self.partitioner = SpatialPartitioner(
            bbox, num_shards=num_shards, method="grid", cells_per_side=cells_per_side
        )
        if isinstance(halo_margin, str):
            if halo_margin != "auto":
                raise ConfigurationError(
                    f"halo_margin must be 'auto' or a radius, got {halo_margin!r}"
                )
            fraction = server_kwargs.get("budget_fraction", 0.25)
            halo_margin = fraction * bbox.diagonal
        if halo_margin < 0:
            raise ConfigurationError(
                f"halo_margin must be >= 0, got {halo_margin}"
            )
        self.halo_margin = float(halo_margin)
        self._server_factory = server_factory
        if executor is not None and server_factory is not None:
            raise ConfigurationError(
                "server_factory composes layers into in-process cores; "
                "an executor builds its cores in the workers instead — "
                "pass one or the other"
            )
        self.executor = executor
        self.telemetry = telemetry
        # The executor drain re-creates each core in a worker from the
        # construction kwargs, so keep an unconsumed copy.
        self._server_kwargs = dict(server_kwargs)
        self.servers = self._build_servers(bbox, num_shards, server_kwargs)
        self._ran = False

    def _build_servers(
        self, bbox: BoundingBox, num_shards: int, server_kwargs: dict
    ) -> list[StreamingTCSCServer]:
        """One core per shard, through the factory seam when given."""
        if self._server_factory is not None:
            return [
                self._server_factory(shard, bbox, dict(server_kwargs))
                for shard in range(num_shards)
            ]
        return [StreamingTCSCServer(bbox, **server_kwargs) for _ in range(num_shards)]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route_worker(self, worker) -> tuple[int, ...]:
        """Shards whose region is within the halo margin of the
        worker's trajectory (always includes the owning shards)."""
        shards: set[int] = set()
        for loc in worker.availability.values():
            for shard, dist in enumerate(self.partitioner.shard_distances(loc)):
                if dist <= self.halo_margin:
                    shards.add(shard)
        return tuple(sorted(shards))

    def route(self, events) -> tuple[list[list[Event]], ShardedStreamMetrics]:
        """Split a trace into per-shard sub-traces (deterministic)."""
        queue = events if isinstance(events, EventQueue) else EventQueue(events)
        per_shard: list[list[Event]] = [[] for _ in range(self.num_shards)]
        metrics = ShardedStreamMetrics(tasks_routed=[0] * self.num_shards)
        while True:
            event = queue.pop()
            if event is None:
                break
            if isinstance(event, TaskArrival):
                shard = self.partitioner.shard_of_location(event.task.loc)
                per_shard[shard].append(event)
                metrics.tasks_routed[shard] += 1
            elif isinstance(event, WorkerJoin):
                shards = self._route_worker(event.worker)
                metrics.worker_routes[event.worker.worker_id] = shards
                for shard in shards:
                    per_shard[shard].append(event)
            elif isinstance(event, WorkerLeave):
                shards = metrics.worker_routes.get(event.worker_id)
                if shards is None:
                    metrics.dropped_events += 1
                    continue
                for shard in shards:
                    per_shard[shard].append(event)
            elif isinstance(event, BudgetRefresh):
                share = event.amount / self.num_shards
                for shard in range(self.num_shards):
                    per_shard[shard].append(BudgetRefresh(event.time, share))
            else:
                raise ConfigurationError(
                    f"unknown event type {type(event).__name__}"
                )
        return per_shard, metrics

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------
    def run(self, events) -> ShardedStreamMetrics:
        """Route the trace, drain every shard, merge the metrics."""
        if self._ran:
            raise SchedulingError(
                "ShardedStreamingServer.run is one-shot; create a new server per trace"
            )
        self._ran = True
        return self._drain(events, lambda server, trace: server.run(trace))

    def _drain(self, events, drive) -> ShardedStreamMetrics:
        """Route ``events`` and push each shard's sub-trace through
        ``drive(server, trace)``, merging metrics and the op-count
        makespan.  Shared by :meth:`run` and the journal layer's
        resume path so both report identical scaling numbers."""
        per_shard, metrics = self.route(events)
        if self.executor is not None:
            from repro.par.stream import drain_sharded

            return drain_sharded(self, per_shard, metrics)
        items: list[list[WorkItem]] = []
        for shard, (server, trace) in enumerate(zip(self.servers, per_shard)):
            metrics.per_shard.append(drive(server, trace))
            items.append(
                [WorkItem(owner=shard, cost=server.counters.virtual_cost())]
            )
        cluster = SimCluster(self.num_shards)
        cluster.run_partitions(items)
        metrics.makespan = cluster.clock
        metrics.serial_cost = sum(item.cost for row in items for item in row)
        return metrics

    def assignment(self) -> Assignment:
        """Merged plan of every finished session across shards."""
        combined = Assignment()
        for server in self.servers:
            for record in server.assignment():
                combined.add(record)
        return combined
