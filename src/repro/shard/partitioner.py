"""Deterministic spatial partitioning with budget-radius halos.

The partitioner answers two questions for the sharded serving layer:

* **Which shard owns a task?**  The spatial domain is cut into cells
  (a uniform grid, or balanced kd median splits of the task
  locations); cells map to shards deterministically, and a task
  belongs to the shard owning the cell containing its location.
* **Which workers must a shard see?**  Every worker-slot pair
  ``(w, t)`` whose location lies within ``halo_radius(tau)`` of some
  owned task ``tau`` (with ``t`` inside ``tau``'s window) is
  replicated into the shard's *halo*.

The halo rule is what makes sharding *exact* rather than approximate.
With ``halo="auto"`` the radius of task ``tau`` is its budget
``b(tau)``: every committed assignment record costs at most the
task's remaining budget, and cost is the travel distance, so a worker
farther than ``b(tau)`` can never be executed for ``tau`` — and the
budgeted-greedy solvers filter such offers identically whether they
are "present but unaffordable" or absent (see DESIGN.md §6 for the
closure proof sketch).  A shard that holds every worker within
``b(tau)`` of each owned task therefore answers every *plan-relevant*
registry query exactly as the global registry would.

Everything is deterministic in the inputs: same tasks, pool, budgets,
and configuration produce the same :class:`ShardMap`, byte for byte.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.geo.bbox import BoundingBox
from repro.geo.grid import GridIndex
from repro.geo.point import Point
from repro.model.task import Task, TaskSet
from repro.model.worker import Worker, WorkerPool

__all__ = ["HALO_AUTO", "TaskFootprint", "ShardMap", "SpatialPartitioner"]

#: Sentinel: size each task's halo radius from its budget (exact mode).
HALO_AUTO = "auto"

#: Slack added to halo radii so the partitioner's closed ``<=`` test
#: dominates the solvers' affordability epsilon (``cost <= b + 1e-12``).
_RADIUS_EPSILON = 1e-9

_METHODS = ("grid", "kd")


@dataclass(frozen=True, slots=True)
class TaskFootprint:
    """The halo-visible universe of one task.

    ``pairs`` holds every ``(worker_id, global_slot)`` within
    ``radius`` of the task's location at that slot — the only
    worker-slot pairs whose availability state can influence the
    task's plan.  The reconciliation pass compares consumption
    *restricted to this set* to decide whether an optimistic per-shard
    plan is already exact.
    """

    task_id: int
    shard: int
    radius: float
    pairs: frozenset[tuple[int, int]]


@dataclass(slots=True)
class ShardMap:
    """The partitioner's output: task ownership, halos, shard pools."""

    num_shards: int
    method: str
    cells_per_side: int
    shard_of_task: dict[int, int]
    #: Ascending task ids per shard (the per-shard service order).
    shard_tasks: list[list[int]]
    footprints: dict[int, TaskFootprint]
    #: Halo-restricted worker pool per shard (availability filtered to
    #: the replicated slots; worker ids and reliabilities preserved).
    shard_pools: list[WorkerPool] = field(default_factory=list)
    #: worker_id -> sorted shard ids holding (part of) the worker.
    worker_shards: dict[int, tuple[int, ...]] = field(default_factory=dict)

    @property
    def replicated_worker_ids(self) -> list[int]:
        """Workers present in two or more shard halos (sorted)."""
        return sorted(
            wid for wid, shards in self.worker_shards.items() if len(shards) > 1
        )

    def stats(self) -> dict:
        """Deterministic partition-shape summary (for reports)."""
        pair_total = sum(len(fp.pairs) for fp in self.footprints.values())
        halo_pairs = sum(
            sum(len(w.availability) for w in pool) for pool in self.shard_pools
        )
        halo_entries = sum(len(pool) for pool in self.shard_pools)
        distinct_workers = len(self.worker_shards)
        return {
            "num_shards": self.num_shards,
            "method": self.method,
            "cells_per_side": self.cells_per_side,
            "tasks_per_shard": [len(tasks) for tasks in self.shard_tasks],
            "halo_workers_per_shard": [len(pool) for pool in self.shard_pools],
            "replicated_workers": len(self.replicated_worker_ids),
            # Mean shard copies per worker: 1.0 = no replication at
            # all; the halo's memory overhead factor.
            "halo_replication_factor": (
                halo_entries / distinct_workers if distinct_workers else 0.0
            ),
            "footprint_pairs": pair_total,
            "halo_pairs": halo_pairs,
        }


class SpatialPartitioner:
    """Deterministic cells-to-shards partitioner with halo replication.

    Parameters:
        bbox: the spatial domain.
        num_shards: shard count (>= 1).
        method: ``"grid"`` (uniform cells in row-major contiguous
            blocks — supports routing arbitrary points, e.g. streaming
            arrivals) or ``"kd"`` (balanced median splits of the task
            locations — better load balance for skewed workloads).
        cells_per_side: grid resolution; defaults to
            ``max(4, ceil(sqrt(num_shards)))`` so every shard owns at
            least one cell.
        halo: :data:`HALO_AUTO` (radius = each task's budget; the
            exact, plan-preserving mode) or a fixed radius in domain
            units (approximate; property tests use it to probe closure
            violations).
    """

    def __init__(
        self,
        bbox: BoundingBox,
        *,
        num_shards: int,
        method: str = "grid",
        cells_per_side: int | None = None,
        halo: str | float = HALO_AUTO,
    ):
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        if method not in _METHODS:
            raise ConfigurationError(
                f"unknown partition method {method!r}; choose one of {_METHODS}"
            )
        if isinstance(halo, str):
            if halo != HALO_AUTO:
                raise ConfigurationError(
                    f"halo must be {HALO_AUTO!r} or a positive radius, got {halo!r}"
                )
        elif halo <= 0:
            raise ConfigurationError(f"halo radius must be positive, got {halo}")
        if cells_per_side is None:
            cells_per_side = max(4, int(math.ceil(math.sqrt(num_shards))))
        if cells_per_side < 1:
            raise ConfigurationError(
                f"cells_per_side must be >= 1, got {cells_per_side}"
            )
        self.bbox = bbox
        self.num_shards = num_shards
        self.method = method
        self.cells_per_side = cells_per_side
        self.halo = halo

    # ------------------------------------------------------------------
    # Cell geometry (grid method; also used by the streaming router)
    # ------------------------------------------------------------------
    def cell_of(self, p: Point) -> tuple[int, int]:
        """Grid cell ``(col, row)`` containing ``p`` (clamped)."""
        n = self.cells_per_side
        col = int((p.x - self.bbox.min_x) / max(self.bbox.width, 1e-12) * n)
        row = int((p.y - self.bbox.min_y) / max(self.bbox.height, 1e-12) * n)
        return (min(max(col, 0), n - 1), min(max(row, 0), n - 1))

    def shard_of_cell(self, col: int, row: int) -> int:
        """Row-major contiguous block assignment of cells to shards."""
        n = self.cells_per_side
        index = row * n + col
        return index * self.num_shards // (n * n)

    def shard_of_location(self, p: Point) -> int:
        """The shard owning an arbitrary location (grid method only)."""
        if self.method != "grid":
            raise ConfigurationError(
                "shard_of_location requires the grid method; kd splits are "
                "derived from a concrete task set"
            )
        return self.shard_of_cell(*self.cell_of(p))

    def shard_distances(self, p: Point) -> list[float]:
        """Distance from ``p`` to every shard's region, in one cell scan.

        Entry ``s`` is 0.0 when ``p`` lies inside shard ``s``'s region.
        Used by the streaming router to decide which shards a worker's
        trajectory is halo-relevant to — folding each cell's
        point-to-rectangle distance into its owning shard's minimum
        keeps routing at O(cells) per location rather than
        O(shards x cells).
        """
        n = self.cells_per_side
        cw = self.bbox.width / n
        ch = self.bbox.height / n
        best = [math.inf] * self.num_shards
        for row in range(n):
            min_y = self.bbox.min_y + row * ch
            dy = max(min_y - p.y, 0.0, p.y - (min_y + ch))
            for col in range(n):
                min_x = self.bbox.min_x + col * cw
                dx = max(min_x - p.x, 0.0, p.x - (min_x + cw))
                shard = self.shard_of_cell(col, row)
                dist = math.hypot(dx, dy)
                if dist < best[shard]:
                    best[shard] = dist
        return best

    def shard_region_distance(self, shard: int, p: Point) -> float:
        """Distance from ``p`` to the nearest cell owned by ``shard``."""
        return self.shard_distances(p)[shard]

    # ------------------------------------------------------------------
    # Task assignment
    # ------------------------------------------------------------------
    def _assign_tasks(self, tasks: TaskSet) -> dict[int, int]:
        if self.method == "grid":
            return {
                task.task_id: self.shard_of_cell(*self.cell_of(task.loc))
                for task in tasks
            }
        return self._kd_assign(tasks)

    def _kd_assign(self, tasks: TaskSet) -> dict[int, int]:
        """Balanced kd splits: median cuts alternate x/y, shard counts
        divide proportionally, ties broken by task id."""
        out: dict[int, int] = {}

        def split(group: list[Task], shard_lo: int, shard_count: int, depth: int):
            if shard_count == 1 or not group:
                for task in group:
                    out[task.task_id] = shard_lo
                return
            left_shards = shard_count // 2
            if depth % 2 == 0:
                key = lambda t: (t.loc.x, t.loc.y, t.task_id)  # noqa: E731
            else:
                key = lambda t: (t.loc.y, t.loc.x, t.task_id)  # noqa: E731
            ordered = sorted(group, key=key)
            cut = round(len(ordered) * left_shards / shard_count)
            split(ordered[:cut], shard_lo, left_shards, depth + 1)
            split(ordered[cut:], shard_lo + left_shards, shard_count - left_shards, depth + 1)

        split(list(tasks), 0, self.num_shards, 0)
        return out

    # ------------------------------------------------------------------
    # Halo construction
    # ------------------------------------------------------------------
    def task_radius(self, task_id: int, budgets: dict[int, float]) -> float:
        """The halo radius of one task under the configured policy."""
        if self.halo == HALO_AUTO:
            try:
                budget = budgets[task_id]
            except KeyError:
                raise ConfigurationError(
                    f"halo='auto' needs a budget for task {task_id}"
                ) from None
            return float(budget) + _RADIUS_EPSILON
        return float(self.halo) + _RADIUS_EPSILON

    def partition(
        self,
        tasks: TaskSet,
        pool: WorkerPool,
        budgets: dict[int, float],
    ) -> ShardMap:
        """Build the full shard map for one serving round.

        ``budgets`` maps each task id to its per-task budget (the
        halo-auto radius source; ignored under a fixed-radius halo).
        """
        shard_of_task = self._assign_tasks(tasks)

        # Per-slot spatial indexes over the whole pool, built once for
        # exactly the global slots some task's window touches.
        slot_items: dict[int, list[tuple[int, Point]]] = {}
        needed: set[int] = set()
        for task in tasks:
            for local in task.slots:
                needed.add(task.global_slot(local))
        for worker in pool:
            for gslot, loc in worker.availability.items():
                if gslot in needed:
                    slot_items.setdefault(gslot, []).append((worker.worker_id, loc))
        slot_index: dict[int, GridIndex] = {}

        def index_for(gslot: int) -> GridIndex:
            index = slot_index.get(gslot)
            if index is None:
                index = GridIndex.from_items(self.bbox, slot_items.get(gslot, []))
                slot_index[gslot] = index
            return index

        footprints: dict[int, TaskFootprint] = {}
        # Per shard: worker_id -> {global_slot: location}.
        halo_slots: list[dict[int, dict[int, Point]]] = [
            {} for _ in range(self.num_shards)
        ]
        for task in tasks:
            shard = shard_of_task[task.task_id]
            radius = self.task_radius(task.task_id, budgets)
            pairs: set[tuple[int, int]] = set()
            halo = halo_slots[shard]
            for local in task.slots:
                gslot = task.global_slot(local)
                for wid, _ in index_for(gslot).within(task.loc, radius):
                    pairs.add((wid, gslot))
                    slots = halo.get(wid)
                    if slots is None:
                        slots = halo[wid] = {}
                    slots[gslot] = index_for(gslot).location_of(wid)
            footprints[task.task_id] = TaskFootprint(
                task.task_id, shard, radius, frozenset(pairs)
            )

        by_id = {w.worker_id: w for w in pool}
        shard_pools: list[WorkerPool] = []
        worker_shards: dict[int, list[int]] = {}
        for shard, halo in enumerate(halo_slots):
            workers = []
            for wid in sorted(halo):
                workers.append(
                    Worker(
                        worker_id=wid,
                        availability=dict(sorted(halo[wid].items())),
                        reliability=by_id[wid].reliability,
                    )
                )
                worker_shards.setdefault(wid, []).append(shard)
            shard_pools.append(WorkerPool(workers))

        shard_tasks: list[list[int]] = [[] for _ in range(self.num_shards)]
        for task_id in sorted(shard_of_task):
            shard_tasks[shard_of_task[task_id]].append(task_id)

        return ShardMap(
            num_shards=self.num_shards,
            method=self.method,
            cells_per_side=self.cells_per_side,
            shard_of_task=shard_of_task,
            shard_tasks=shard_tasks,
            footprints=footprints,
            shard_pools=shard_pools,
            worker_shards={
                wid: tuple(shards) for wid, shards in sorted(worker_shards.items())
            },
        )
