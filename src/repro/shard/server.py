"""The sharded serving coordinator and its unsharded reference.

Serving semantics
-----------------
A *serving round* assigns a batch of tasks, each under its own budget
(``budget_fraction`` of its full nearest-worker cost unless an
explicit budget is given), in **canonical order** — ascending task id
— against one shared worker registry: task ``i`` sees every worker
consumed by tasks ``j < i``.  :class:`SequentialServingSolver` is that
reference, implemented literally.

:class:`ShardedTCSCServer` produces the byte-identical plan in three
phases:

1. **Optimistic phase** — each shard solves its owned tasks (in
   canonical order) against its private halo registry, consuming
   workers locally.  Shards never communicate; this is the parallel
   bulk of the work, accounted as one
   :meth:`~repro.parallel.simcluster.SimCluster.run_partitions` round.
2. **Conflict detection** — worker-slot pairs claimed by two or more
   tasks across shards are recorded in a
   :class:`~repro.multi.tables.ConflictingTable` (the paper's
   master-thread machinery): these are exactly the halo-replicated
   workers both sides believed they owned.
3. **Reconciliation** — one deterministic forward pass in canonical
   order.  A task's optimistic plan is *exact* iff the committed
   consumption of all earlier tasks, restricted to the task's halo
   footprint, equals what its shard's registry showed at solve time
   (consumption by earlier same-shard tasks).  Matching tasks keep
   their parallel plans; mismatched tasks — conflict losers and their
   downstream dependents — are re-solved serially against the true
   registry state.  By induction the merged plan equals the
   sequential reference exactly (DESIGN.md §6).

Cost accounting is deterministic op-count makespan: per-shard solve
costs spread over ``cores`` simulated cores via LPT, the
reconciliation chain and its coordination messages charged serially.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.greedy import SolverResult
from repro.core.instrumentation import OpCounters
from repro.engine.costs import SingleTaskCostTable
from repro.engine.registry import WorkerRegistry
from repro.errors import ConfigurationError
from repro.geo.bbox import BoundingBox
from repro.model.assignment import Assignment
from repro.model.task import Task, TaskSet
from repro.model.worker import WorkerPool
from repro.multi.tables import ConflictingTable
from repro.parallel.simcluster import SimCluster, WorkItem
from repro.runtime.factory import build_single_task_solver
from repro.runtime.spec import SolverVariant
from repro.shard.partitioner import HALO_AUTO, ShardMap, SpatialPartitioner

__all__ = [
    "compute_budgets",
    "ShardSolveStats",
    "ServingReport",
    "ShardedReport",
    "SequentialServingSolver",
    "ShardedTCSCServer",
]

_ENGINES = ("greedy", "indexed")


def compute_budgets(
    tasks: TaskSet,
    pool: WorkerPool,
    bbox: BoundingBox,
    *,
    budget_fraction: float = 0.25,
) -> dict[int, float]:
    """Per-task budgets: ``fraction`` of each task's full serve cost.

    Computed against an unconsumed global registry — the admission
    step a serving layer runs before any partitioning, so budgets
    (and therefore halo radii) never depend on the shard count.
    """
    if not 0.0 < budget_fraction <= 1.0:
        raise ConfigurationError(
            f"budget_fraction must be in (0, 1], got {budget_fraction}"
        )
    registry = WorkerRegistry(pool, bbox)
    return {
        task.task_id: budget_fraction
        * SingleTaskCostTable(task, registry).total_cost
        for task in tasks
    }


@dataclass(frozen=True, slots=True)
class ShardSolveStats:
    """One shard's optimistic-phase summary."""

    shard: int
    task_ids: tuple[int, ...]
    virtual_cost: float
    records: int
    halo_workers: int


@dataclass(slots=True)
class ServingReport:
    """Outcome of a sequential (unsharded) serving round."""

    assignment: Assignment
    qualities: dict[int, float]
    budgets: dict[int, float]
    counters: OpCounters
    #: Canonical-order per-task op cost (the serial cost breakdown).
    per_task_cost: dict[int, float] = field(default_factory=dict)
    #: task_id -> certified quality ratio (``repro.degrade``); all 1.0
    #: unless an approximate solver variant ran.
    certificates: dict[int, float] = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        """Total travel cost of the merged plan."""
        return self.assignment.total_cost

    @property
    def serial_cost(self) -> float:
        """Total virtual op cost of the round (one-core makespan)."""
        return sum(self.per_task_cost.values())

    def plan_signature(self):
        """Hashable plan summary (byte-identity checks)."""
        return self.assignment.plan_signature()


@dataclass(slots=True)
class ShardedReport(ServingReport):
    """Outcome of a sharded serving round, with scaling accounting."""

    shard_map: ShardMap | None = None
    conflict_table: ConflictingTable = field(default_factory=ConflictingTable)
    #: Tasks whose optimistic plans were discarded and re-solved.
    reconciled_task_ids: tuple[int, ...] = ()
    #: Tasks kept after the offer-revalidation check (footprint
    #: consumption changed, but no plan-relevant offer did).
    revalidated_task_ids: tuple[int, ...] = ()
    shard_stats: tuple[ShardSolveStats, ...] = ()
    #: Virtual-clock makespan of the sharded round (op-count units).
    makespan: float = 0.0
    #: Coordination messages charged during reconciliation.
    messages: int = 0
    utilization: float = 0.0

    @property
    def speedup(self) -> float:
        """Serial op cost / sharded makespan (>= 1.0 means it paid off)."""
        if self.makespan <= 0.0:
            return 1.0
        return self.serial_cost / self.makespan

    @property
    def conflicts(self) -> int:
        """Cross-shard contested (worker, slot) pairs."""
        return len(self.conflict_table)


class _ServingBase:
    """Shared solver-variant plumbing for both serving solvers."""

    def __init__(
        self,
        pool: WorkerPool,
        bbox: BoundingBox,
        *,
        k: int = 3,
        ts: int = 4,
        engine: str = "greedy",
        search: str = "lazy",
        backend: str = "python",
        top_c: int | None = None,
        floor: float | None = None,
    ):
        if engine not in _ENGINES:
            raise ConfigurationError(
                f"unknown engine {engine!r}; choose one of {_ENGINES}"
            )
        self.pool = pool
        self.bbox = bbox
        self.k = k
        self.ts = ts
        self.engine = engine
        self.search = search
        self.backend = backend
        self.variant = SolverVariant(
            backend=backend,
            search=search,
            use_index=(engine == "indexed"),
            top_c=top_c,
            floor=floor,
        )

    def _solve_task(
        self,
        task: Task,
        registry: WorkerRegistry,
        budget: float,
        counters: OpCounters,
    ) -> tuple[SolverResult, SingleTaskCostTable]:
        """One per-task solve with the configured PR-2 solver variant.

        Returns the result *and* the cost table it was computed from:
        the plan is a deterministic function of the table's per-slot
        offers, which is what reconciliation validates against.
        """
        costs = SingleTaskCostTable(task, registry, counters=counters)
        solver = build_single_task_solver(
            self.variant, task, costs,
            budget=budget, k=self.k, ts=self.ts, counters=counters,
        )
        return solver.solve(), costs

    def _budgets(
        self,
        tasks: TaskSet,
        budgets: dict[int, float] | None,
        budget_fraction: float,
    ) -> dict[int, float]:
        if budgets is not None:
            missing = [t.task_id for t in tasks if t.task_id not in budgets]
            if missing:
                raise ConfigurationError(f"budgets missing for tasks {missing}")
            return {t.task_id: float(budgets[t.task_id]) for t in tasks}
        return compute_budgets(
            tasks, self.pool, self.bbox, budget_fraction=budget_fraction
        )

    @staticmethod
    def _canonical(tasks: TaskSet) -> list[Task]:
        return sorted(tasks, key=lambda t: t.task_id)


class SequentialServingSolver(_ServingBase):
    """The unsharded reference: canonical-order service, one registry."""

    def assign(
        self,
        tasks: TaskSet,
        *,
        budget_fraction: float = 0.25,
        budgets: dict[int, float] | None = None,
        profiler=None,
    ) -> ServingReport:
        """Serve every task in canonical order against one registry.

        ``profiler`` (a :class:`~repro.obs.profile.PhaseProfiler`)
        attributes each per-task solve to a ``solve`` span; spans only
        read the counters, so the report is identical either way.
        """
        budgets = self._budgets(tasks, budgets, budget_fraction)
        registry = WorkerRegistry(self.pool, self.bbox)
        counters = OpCounters()
        assignment = Assignment()
        qualities: dict[int, float] = {}
        per_task_cost: dict[int, float] = {}
        certificates: dict[int, float] = {}
        for task in self._canonical(tasks):
            before = counters.snapshot()
            if profiler is None:
                result, _ = self._solve_task(
                    task, registry, budgets[task.task_id], counters
                )
            else:
                with profiler.phase(
                    "solve", counters=counters, task_id=task.task_id
                ) as span:
                    result, _ = self._solve_task(
                        task, registry, budgets[task.task_id], counters
                    )
                    span["quality"] = result.quality
            per_task_cost[task.task_id] = counters.delta_since(before).virtual_cost()
            qualities[task.task_id] = result.quality
            certificates[task.task_id] = result.certificate
            for record in result.assignment:
                registry.consume(record.worker_id, task.global_slot(record.slot))
                assignment.add(record)
        return ServingReport(
            assignment=assignment,
            qualities=qualities,
            budgets=budgets,
            counters=counters,
            per_task_cost=per_task_cost,
            certificates=certificates,
        )


class ShardedTCSCServer(_ServingBase):
    """Halo-partitioned multi-shard serving with exact reconciliation.

    Parameters beyond :class:`SequentialServingSolver`:
        num_shards: shard count.
        method / cells_per_side: partitioner configuration
            (:class:`~repro.shard.partitioner.SpatialPartitioner`).
        halo: :data:`~repro.shard.partitioner.HALO_AUTO` for the exact
            budget-radius halos (plan identity guaranteed) or a fixed
            radius (approximate halos — plans may diverge; only the
            property tests use this).
        cores: simulated cores for makespan accounting (defaults to
            ``num_shards`` — one core per shard).
        per_message_cost: virtual cost of one coordination message.
        executor: a :class:`~repro.par.executor.Executor` to run the
            phase-1 optimistic solves as per-shard JSON work units
            (threads or worker processes); ``None`` keeps the
            in-process loop.  Either way the merged plan, counters,
            and report are byte-identical — phases 2 and 3 always run
            on the coordinator.
    """

    def __init__(
        self,
        pool: WorkerPool,
        bbox: BoundingBox,
        *,
        num_shards: int,
        method: str = "grid",
        cells_per_side: int | None = None,
        halo: str | float = HALO_AUTO,
        k: int = 3,
        ts: int = 4,
        engine: str = "greedy",
        search: str = "lazy",
        backend: str = "python",
        cores: int | None = None,
        per_message_cost: float = 1.0,
        executor=None,
    ):
        super().__init__(
            pool, bbox, k=k, ts=ts, engine=engine, search=search, backend=backend
        )
        self.partitioner = SpatialPartitioner(
            bbox,
            num_shards=num_shards,
            method=method,
            cells_per_side=cells_per_side,
            halo=halo,
        )
        self.num_shards = num_shards
        self.cores = num_shards if cores is None else cores
        self.per_message_cost = per_message_cost
        self.executor = executor

    # ------------------------------------------------------------------
    # Reconciliation helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _offers_unchanged(
        task: Task,
        budget: float,
        costs: SingleTaskCostTable,
        registry: WorkerRegistry,
        counters: OpCounters,
    ) -> bool:
        """True iff every *plan-relevant* offer survives the true state.

        An offer matters to the plan only when it is affordable under
        the task's budget limit (the solvers filter
        ``cost > budget + 1e-12`` everywhere, so present-but-
        unaffordable and absent are interchangeable).  If the
        affordable offer of every slot is unchanged against the
        committed registry, the re-solve would rebuild the identical
        cost table and — the solvers being deterministic — the
        identical plan, so the optimistic one can be kept.
        """
        for local in task.slots:
            hit = registry.nearest_available(task.loc, task.global_slot(local))
            counters.worker_cost_lookups += 1
            offer = costs.offer(local)
            offer_relevant = offer is not None and offer.cost <= budget + 1e-12
            hit_relevant = hit is not None and hit[1] <= budget + 1e-12
            if offer_relevant != hit_relevant:
                return False
            if offer_relevant and offer.worker_id != hit[0].worker_id:
                return False
        return True

    # ------------------------------------------------------------------
    # The three-phase round
    # ------------------------------------------------------------------
    def assign(
        self,
        tasks: TaskSet,
        *,
        budget_fraction: float = 0.25,
        budgets: dict[int, float] | None = None,
        profiler=None,
    ) -> ShardedReport:
        """Run one sharded serving round over the task batch.

        ``profiler`` attributes phase-1 optimistic solves to ``solve``
        spans (stamped with their shard) and phase-3 revalidations and
        re-solves to ``reconcile`` spans; the free fast path stays
        unspanned — it does no counted work.
        """
        budgets = self._budgets(tasks, budgets, budget_fraction)
        shard_map = self.partitioner.partition(tasks, self.pool, budgets)

        # Phase 1 — optimistic per-shard solves (parallel).
        counters = OpCounters()
        optimistic: dict[int, SolverResult] = {}
        opt_offers: dict[int, SingleTaskCostTable] = {}
        opt_cost: dict[int, float] = {}
        #: (worker_id, global_slot) pairs consumed by same-shard
        #: predecessors before each task's optimistic solve — the
        #: consumption context the plan was computed under.
        prefix_claims: dict[int, frozenset[tuple[int, int]]] = {}
        shard_items: list[list[WorkItem]] = []
        shard_stats: list[ShardSolveStats] = []
        if self.executor is not None and profiler is None:
            # Per-shard JSON work units, run wherever the executor
            # runs them, merged in shard-id order — the byte-identical
            # parallel spelling of the loop below.  Profiled rounds
            # keep the in-process loop: a span's counter attribution
            # cannot cross a process boundary.
            self._phase1_units(
                tasks, budgets, shard_map, counters,
                optimistic, opt_offers, opt_cost, prefix_claims,
                shard_items, shard_stats,
            )
            return self._merge_phases(
                tasks, budgets, shard_map, counters,
                optimistic, opt_offers, opt_cost, prefix_claims,
                shard_items, shard_stats, profiler,
            )
        for shard, task_ids in enumerate(shard_map.shard_tasks):
            registry = WorkerRegistry(shard_map.shard_pools[shard], self.bbox)
            shard_counters = OpCounters()
            claimed: set[tuple[int, int]] = set()
            items: list[WorkItem] = []
            records = 0
            for task_id in task_ids:
                task = tasks.by_id(task_id)
                prefix_claims[task_id] = frozenset(claimed)
                before = shard_counters.snapshot()
                if profiler is None:
                    result, costs = self._solve_task(
                        task, registry, budgets[task_id], shard_counters
                    )
                else:
                    with profiler.phase(
                        "solve", counters=shard_counters,
                        shard=shard, task_id=task_id,
                    ) as span:
                        result, costs = self._solve_task(
                            task, registry, budgets[task_id], shard_counters
                        )
                        span["quality"] = result.quality
                cost = shard_counters.delta_since(before).virtual_cost()
                optimistic[task_id] = result
                opt_offers[task_id] = costs
                opt_cost[task_id] = cost
                items.append(WorkItem(owner=task_id, cost=cost))
                for record in result.assignment:
                    gslot = task.global_slot(record.slot)
                    registry.consume(record.worker_id, gslot)
                    claimed.add((record.worker_id, gslot))
                    records += 1
            counters.merge(shard_counters)
            shard_items.append(items)
            shard_stats.append(
                ShardSolveStats(
                    shard=shard,
                    task_ids=tuple(task_ids),
                    virtual_cost=sum(item.cost for item in items),
                    records=records,
                    halo_workers=len(shard_map.shard_pools[shard]),
                )
            )

        return self._merge_phases(
            tasks, budgets, shard_map, counters,
            optimistic, opt_offers, opt_cost, prefix_claims,
            shard_items, shard_stats, profiler,
        )

    def _phase1_units(
        self, tasks, budgets, shard_map, counters,
        optimistic, opt_offers, opt_cost, prefix_claims,
        shard_items, shard_stats,
    ) -> None:
        """Phase 1 as executor-run JSON work units (exact merge).

        Each shard's halo roster, owned tasks (canonical order), and
        budgets ship out; plans, per-slot offer tables, op costs, and
        shard counters ship back.  The merge replays the returned
        records to rebuild ``prefix_claims`` exactly as the in-process
        loop accumulates them, and folds shard counters in shard-id
        order — so every downstream phase sees identical state.
        """
        # Imported lazily: repro.par.work imports the runtime spec,
        # which this module's importers already have in flight.
        from repro.model.assignment import AssignmentRecord
        from repro.par.work import (
            OfferView,
            decode_plain_result,
            encode_plain_unit,
            run_plain_unit,
        )

        payloads = [
            encode_plain_unit(
                shard=shard,
                bbox=self.bbox,
                workers=list(shard_map.shard_pools[shard]),
                tasks=[tasks.by_id(task_id) for task_id in task_ids],
                budgets=budgets,
                variant=self.variant,
                k=self.k,
                ts=self.ts,
            )
            for shard, task_ids in enumerate(shard_map.shard_tasks)
        ]
        results = self.executor.map_units(run_plain_unit, payloads)
        for shard, (task_ids, result) in enumerate(
            zip(shard_map.shard_tasks, results)
        ):
            data = decode_plain_result(result)
            claimed: set[tuple[int, int]] = set()
            items: list[WorkItem] = []
            records = 0
            for entry in data["tasks"]:
                task_id = entry["task_id"]
                task = tasks.by_id(task_id)
                prefix_claims[task_id] = frozenset(claimed)
                plan = Assignment()
                for record_state in entry["records"]:
                    plan.add(AssignmentRecord.from_dict(record_state))
                optimistic[task_id] = SolverResult(
                    assignment=plan,
                    quality=entry["quality"],
                    spent=entry["spent"],
                    counters=OpCounters(),
                    certificate=entry["certificate"],
                )
                opt_offers[task_id] = OfferView(entry["offers"])
                opt_cost[task_id] = entry["cost"]
                items.append(WorkItem(owner=task_id, cost=entry["cost"]))
                for record in plan:
                    claimed.add((record.worker_id, task.global_slot(record.slot)))
                    records += 1
            counters.merge(data["counters"])
            shard_items.append(items)
            shard_stats.append(
                ShardSolveStats(
                    shard=shard,
                    task_ids=tuple(task_ids),
                    virtual_cost=sum(item.cost for item in items),
                    records=records,
                    halo_workers=len(shard_map.shard_pools[shard]),
                )
            )

    def _merge_phases(
        self, tasks, budgets, shard_map, counters,
        optimistic, opt_offers, opt_cost, prefix_claims,
        shard_items, shard_stats, profiler,
    ) -> ShardedReport:
        """Phases 2 and 3 over the phase-1 state, however it was run."""
        # Phase 2 — cross-shard conflict detection (Conflicting Table).
        claims: dict[tuple[int, int], list[int]] = {}
        for task_id in sorted(optimistic):
            task = tasks.by_id(task_id)
            for record in optimistic[task_id].assignment:
                key = (record.worker_id, task.global_slot(record.slot))
                claims.setdefault(key, []).append(task_id)
        conflict_table = ConflictingTable()
        for (worker_id, gslot), claimants in sorted(claims.items()):
            if len(claimants) > 1:
                conflict_table.record(
                    tuple(sorted(claimants)),
                    gslot,
                    worker_id,
                    rank=conflict_table.bump_rank(gslot),
                    time=0.0,
                )
                counters.conflicts_detected += 1

        # Phase 3 — deterministic reconciliation (canonical order).
        #
        # A task's plan is a deterministic function of its per-slot
        # offer table, so exactness has a two-tier check: (a) free fast
        # path — committed consumption restricted to the task's halo
        # footprint equals the consumption its shard showed at solve
        # time; (b) offer revalidation — re-derive the plan-relevant
        # offer of every slot against the true registry and compare.
        # Only an actual offer change forces a serial re-solve.
        final_registry = WorkerRegistry(self.pool, self.bbox)
        final_claims: set[tuple[int, int]] = set()
        assignment = Assignment()
        qualities: dict[int, float] = {}
        per_task_cost: dict[int, float] = {}
        certificates: dict[int, float] = {}
        reconciled: list[int] = []
        revalidated: list[int] = []
        recon_counters = OpCounters()
        for task in self._canonical(tasks):
            task_id = task.task_id
            footprint = shard_map.footprints[task_id].pairs
            seen = prefix_claims[task_id] & footprint
            truth = final_claims & footprint

            def _reconcile_one():
                """Revalidate or re-solve; same calls either way the
                profiler is attached, so counters stay identical."""
                if self._offers_unchanged(
                    task, budgets[task_id], opt_offers[task_id],
                    final_registry, recon_counters,
                ):
                    return optimistic[task_id], opt_cost[task_id], "revalidate"
                before = recon_counters.snapshot()
                solved, _ = self._solve_task(
                    task, final_registry, budgets[task_id], recon_counters
                )
                solved_cost = recon_counters.delta_since(before).virtual_cost()
                return solved, solved_cost, "re-solve"

            if seen == truth:
                result = optimistic[task_id]
                cost = opt_cost[task_id]
            else:
                if profiler is None:
                    result, cost, action = _reconcile_one()
                else:
                    with profiler.phase(
                        "reconcile", counters=recon_counters, task_id=task_id
                    ) as span:
                        result, cost, action = _reconcile_one()
                        span["action"] = action
                if action == "revalidate":
                    revalidated.append(task_id)
                else:
                    reconciled.append(task_id)
            per_task_cost[task_id] = cost
            qualities[task_id] = result.quality
            certificates[task_id] = result.certificate
            for record in result.assignment:
                gslot = task.global_slot(record.slot)
                final_registry.consume(record.worker_id, gslot)
                final_claims.add((record.worker_id, gslot))
                assignment.add(record)
        counters.merge(recon_counters)

        # Makespan accounting: parallel shard round, then the serial
        # reconciliation chain (re-solves + offer revalidation queries)
        # plus its coordination messages.
        cluster = SimCluster(self.cores, per_message_cost=self.per_message_cost)
        cluster.run_partitions(shard_items)
        recon_cost = recon_counters.virtual_cost()
        messages = len(conflict_table) + len(reconciled)
        if recon_cost > 0.0 or messages > 0:
            cluster.run_round(
                [WorkItem(owner="reconcile", cost=recon_cost)], messages=messages
            )

        return ShardedReport(
            assignment=assignment,
            qualities=qualities,
            budgets=budgets,
            counters=counters,
            per_task_cost=per_task_cost,
            certificates=certificates,
            shard_map=shard_map,
            conflict_table=conflict_table,
            reconciled_task_ids=tuple(reconciled),
            revalidated_task_ids=tuple(revalidated),
            shard_stats=tuple(shard_stats),
            makespan=cluster.clock,
            messages=cluster.messages,
            utilization=cluster.utilization,
        )
