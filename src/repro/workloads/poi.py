"""Clustered POI generator — the Beijing POI dataset stand-in.

Urban POI datasets are strongly multi-modal: points concentrate around
a handful of hotspots (commercial centres) with a diffuse background.
:class:`ClusteredPOIGenerator` reproduces that structure with a
Gaussian mixture over randomly placed hotspots plus a uniform
background component, which is all the assignment algorithms observe
of the real data (they only consume task locations).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.util.rng import make_rng

__all__ = ["ClusteredPOIGenerator"]


class ClusteredPOIGenerator:
    """Gaussian-mixture hotspots plus a uniform urban background."""

    def __init__(
        self,
        bbox: BoundingBox,
        *,
        num_hotspots: int = 8,
        hotspot_sigma_fraction: float = 0.04,
        background_fraction: float = 0.2,
        seed: int | np.random.Generator | None = 0,
    ):
        if num_hotspots < 1:
            raise ConfigurationError(f"num_hotspots must be >= 1, got {num_hotspots}")
        if not 0.0 <= background_fraction <= 1.0:
            raise ConfigurationError(
                f"background_fraction must be in [0, 1], got {background_fraction}"
            )
        self.bbox = bbox
        self.background_fraction = background_fraction
        self._rng = make_rng(seed)
        scale = max(bbox.width, bbox.height)
        self._sigma = hotspot_sigma_fraction * scale
        self._centers = np.column_stack(
            [
                self._rng.uniform(bbox.min_x, bbox.max_x, num_hotspots),
                self._rng.uniform(bbox.min_y, bbox.max_y, num_hotspots),
            ]
        )
        # Hotspot popularity follows a Zipf-like decay, as in real POI data.
        ranks = np.arange(1, num_hotspots + 1, dtype=float)
        weights = ranks**-1.0
        self._weights = weights / weights.sum()

    def generate(self, n: int) -> list[Point]:
        """Sample ``n`` POI locations."""
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        rng = self._rng
        bbox = self.bbox
        points: list[Point] = []
        is_background = rng.uniform(0.0, 1.0, n) < self.background_fraction
        hotspot_ids = rng.choice(len(self._weights), size=n, p=self._weights)
        for i in range(n):
            if is_background[i]:
                x = rng.uniform(bbox.min_x, bbox.max_x)
                y = rng.uniform(bbox.min_y, bbox.max_y)
            else:
                cx, cy = self._centers[hotspot_ids[i]]
                x = np.clip(rng.normal(cx, self._sigma), bbox.min_x, bbox.max_x)
                y = np.clip(rng.normal(cy, self._sigma), bbox.min_y, bbox.max_y)
            points.append(Point(float(x), float(y)))
        return points
