"""Spatial point generators: uniform, Gaussian, Zipfian.

Mirrors the chorochronos ``SpatialDataGenerator`` settings the paper
uses (Section V-A): for the Gaussian distribution "the mean is set as
the domain center and the sigma is set as 1/6 of the domain
sidelength"; for the Zipfian distribution "the exponent is set to 1".

Zipfian points follow the generator's convention: each coordinate is a
Zipf-distributed rank mapped onto the domain side, producing the heavy
corner-skew the paper's skewed workloads exhibit.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import ConfigurationError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.util.rng import make_rng

__all__ = ["Distribution", "generate_points"]


class Distribution(str, enum.Enum):
    """Task/worker location distributions used in the experiments."""

    UNIFORM = "uniform"
    GAUSSIAN = "gaussian"
    ZIPFIAN = "zipfian"
    #: The "real dataset" stand-in: clustered POIs (see repro.workloads.poi).
    REAL = "real"


def generate_points(
    n: int,
    bbox: BoundingBox,
    distribution: Distribution | str = Distribution.UNIFORM,
    *,
    seed: int | np.random.Generator | None = 0,
    zipf_exponent: float = 1.0,
    zipf_levels: int = 1000,
) -> list[Point]:
    """Sample ``n`` points inside ``bbox`` from a named distribution.

    Gaussian samples are clamped to the box (the paper chooses sigma so
    "most of generated data are within the domain space"; clamping
    handles the tail).  ``zipf_levels`` discretizes each axis for the
    Zipfian rank mapping.
    """
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    distribution = Distribution(distribution)
    if distribution is Distribution.REAL:
        # Delegated to the POI generator to keep this module dependency-free.
        from repro.workloads.poi import ClusteredPOIGenerator

        return ClusteredPOIGenerator(bbox, seed=seed).generate(n)
    rng = make_rng(seed)
    if distribution is Distribution.UNIFORM:
        xs = rng.uniform(bbox.min_x, bbox.max_x, n)
        ys = rng.uniform(bbox.min_y, bbox.max_y, n)
    elif distribution is Distribution.GAUSSIAN:
        center = bbox.center
        sigma_x = bbox.width / 6.0
        sigma_y = bbox.height / 6.0
        xs = np.clip(rng.normal(center.x, sigma_x, n), bbox.min_x, bbox.max_x)
        ys = np.clip(rng.normal(center.y, sigma_y, n), bbox.min_y, bbox.max_y)
    elif distribution is Distribution.ZIPFIAN:
        if zipf_exponent <= 0:
            raise ConfigurationError(f"zipf_exponent must be > 0, got {zipf_exponent}")
        xs = _zipf_axis(rng, n, bbox.min_x, bbox.max_x, zipf_exponent, zipf_levels)
        ys = _zipf_axis(rng, n, bbox.min_y, bbox.max_y, zipf_exponent, zipf_levels)
    else:  # pragma: no cover - exhaustive enum
        raise ConfigurationError(f"unknown distribution {distribution}")
    return [Point(float(x), float(y)) for x, y in zip(xs, ys)]


def _zipf_axis(
    rng: np.random.Generator,
    n: int,
    lo: float,
    hi: float,
    exponent: float,
    levels: int,
) -> np.ndarray:
    """Zipf-ranked coordinates: rank r (1 = most popular) maps to the
    fraction (r-1)/levels of the axis, so mass piles up near ``lo``."""
    ranks = np.arange(1, levels + 1, dtype=float)
    weights = ranks ** (-exponent)
    weights /= weights.sum()
    chosen = rng.choice(levels, size=n, p=weights)
    # Jitter inside each level's bucket to avoid exact collisions.
    jitter = rng.uniform(0.0, 1.0, n)
    fraction = (chosen + jitter) / levels
    return lo + fraction * (hi - lo)
