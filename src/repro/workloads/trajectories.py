"""Synthetic taxi trajectories — the T-Drive stand-in.

The paper uses 10,357 T-Drive taxi trajectories for worker movements
and "randomly cut[s] out a set of pieces, ranging from 1 to 5 time
slots, as a worker's active slots".  The assignment algorithms consume
only two things from a trajectory: the worker's location at each
active slot and the set of active slots.  The generator reproduces
both: workers follow a random-waypoint model (drive toward a target,
pick a new one on arrival — a standard mobility model for taxis) over
a configurable horizon, and active windows of 1-5 consecutive slots
are cut from the trajectory exactly as the paper describes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.model.worker import Worker, WorkerPool
from repro.util.rng import make_rng

__all__ = ["TaxiTrajectoryGenerator"]


class TaxiTrajectoryGenerator:
    """Random-waypoint worker trajectories with 1-5-slot active windows."""

    def __init__(
        self,
        bbox: BoundingBox,
        *,
        horizon: int,
        speed_fraction: float = 0.02,
        min_window: int = 1,
        max_window: int = 5,
        windows_per_worker: tuple[int, int] = (1, 4),
        hotspot_bias: float = 0.0,
        seed: int | np.random.Generator | None = 0,
    ):
        """``horizon`` is the number of global time slots covered.

        ``speed_fraction`` scales per-slot travel to the domain side;
        ``hotspot_bias`` (0..1) makes waypoint choice prefer a few
        hotspots, mimicking taxi flows toward busy areas.
        """
        if horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        if not 1 <= min_window <= max_window:
            raise ConfigurationError(
                f"invalid window range [{min_window}, {max_window}]"
            )
        if not 0.0 <= hotspot_bias <= 1.0:
            raise ConfigurationError(f"hotspot_bias must be in [0, 1], got {hotspot_bias}")
        lo, hi = windows_per_worker
        if not 1 <= lo <= hi:
            raise ConfigurationError(f"invalid windows_per_worker {windows_per_worker}")
        self.bbox = bbox
        self.horizon = horizon
        self.speed = speed_fraction * max(bbox.width, bbox.height)
        self.min_window = min_window
        self.max_window = max_window
        self.windows_per_worker = windows_per_worker
        self.hotspot_bias = hotspot_bias
        self._rng = make_rng(seed)
        self._hotspots = [
            Point(
                float(self._rng.uniform(bbox.min_x, bbox.max_x)),
                float(self._rng.uniform(bbox.min_y, bbox.max_y)),
            )
            for _ in range(5)
        ]

    # ------------------------------------------------------------------
    # Trajectory synthesis
    # ------------------------------------------------------------------
    def _waypoint(self) -> Point:
        rng = self._rng
        if self.hotspot_bias > 0.0 and rng.uniform() < self.hotspot_bias:
            hotspot = self._hotspots[int(rng.integers(len(self._hotspots)))]
            sigma = 0.05 * max(self.bbox.width, self.bbox.height)
            return self.bbox.clamp(
                Point(
                    float(rng.normal(hotspot.x, sigma)),
                    float(rng.normal(hotspot.y, sigma)),
                )
            )
        return Point(
            float(rng.uniform(self.bbox.min_x, self.bbox.max_x)),
            float(rng.uniform(self.bbox.min_y, self.bbox.max_y)),
        )

    def trajectory(self) -> list[Point]:
        """One full trajectory: a location per slot ``1..horizon``."""
        rng = self._rng
        position = self._waypoint()
        target = self._waypoint()
        path = []
        for _ in range(self.horizon):
            path.append(position)
            dx = target.x - position.x
            dy = target.y - position.y
            dist = math.hypot(dx, dy)
            step = float(self.speed * rng.uniform(0.5, 1.5))
            if dist <= step:
                position = target
                target = self._waypoint()
            else:
                position = Point(
                    position.x + dx / dist * step, position.y + dy / dist * step
                )
        return path

    def _cut_windows(self) -> list[tuple[int, int]]:
        """Random non-overlapping active windows of 1-5 slots."""
        rng = self._rng
        lo, hi = self.windows_per_worker
        count = int(rng.integers(lo, hi + 1))
        windows: list[tuple[int, int]] = []
        occupied: set[int] = set()
        attempts = 0
        while len(windows) < count and attempts < 20 * count:
            attempts += 1
            length = int(rng.integers(self.min_window, self.max_window + 1))
            if length > self.horizon:
                length = self.horizon
            start = int(rng.integers(1, self.horizon - length + 2))
            slots = range(start, start + length)
            if any(s in occupied for s in slots):
                continue
            # Reserve a one-slot gap so two windows never fuse into a
            # single longer active run.
            occupied.update(range(start - 1, start + length + 1))
            windows.append((start, start + length - 1))
        windows.sort()
        return windows

    # ------------------------------------------------------------------
    # Worker construction
    # ------------------------------------------------------------------
    def worker(self, worker_id: int, *, reliability: float = 1.0) -> Worker:
        """Generate one worker: trajectory + cut active windows."""
        path = self.trajectory()
        availability: dict[int, Point] = {}
        for start, end in self._cut_windows():
            for slot in range(start, end + 1):
                availability[slot] = path[slot - 1]
        return Worker(worker_id, availability, reliability)

    def pool(
        self,
        n: int,
        *,
        reliability_range: tuple[float, float] = (1.0, 1.0),
    ) -> WorkerPool:
        """Generate a pool of ``n`` workers with ids ``0..n-1``.

        ``reliability_range`` draws each worker's lambda uniformly —
        ``(1.0, 1.0)`` (the default) disables the reliability extension.
        """
        lo, hi = reliability_range
        if not 0.0 <= lo <= hi <= 1.0:
            raise ConfigurationError(f"invalid reliability range {reliability_range}")
        workers = []
        for worker_id in range(n):
            lam = float(self._rng.uniform(lo, hi)) if hi > lo else lo
            workers.append(self.worker(worker_id, reliability=lam))
        return WorkerPool(workers)
