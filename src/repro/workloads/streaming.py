"""Streaming scenario generator: arrival processes for the online mode.

The batch :class:`~repro.workloads.scenario.ScenarioConfig` materializes
one fully-known instance; a streaming scenario is instead an *event
trace*: task submissions from a (possibly bursty) Poisson process,
worker joins from a Poisson process with exponentially-distributed
advertised lifetimes, early departures (churn that cancels advertised
availability), and optional periodic budget refreshes.

Everything is deterministic in ``config.seed`` via the same
label-addressed stream derivation the batch builder uses: arrival
times, task locations, worker trajectories, lifetimes, and churn each
draw from independent streams, so changing one axis never reshuffles
another.

Burstiness is a two-phase Markov-modulated Poisson process: phases of
mean length ``burst_cycle`` alternate between a high rate
``task_rate * (1 + 3 * burstiness)`` and a low rate
``task_rate * (1 - burstiness)`` (floored at 5% of nominal), so
``burstiness=0`` degenerates to a plain Poisson process with the same
mean rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.geo.bbox import BoundingBox
from repro.model.task import Task
from repro.model.worker import Worker
from repro.stream.events import BudgetRefresh, Event, TaskArrival, WorkerJoin, WorkerLeave
from repro.util.rng import derive_rng
from repro.workloads.poi import ClusteredPOIGenerator
from repro.workloads.spatial import Distribution, generate_points
from repro.workloads.trajectories import TaxiTrajectoryGenerator

__all__ = ["StreamScenarioConfig", "StreamScenario", "build_stream_events"]


@dataclass(frozen=True, slots=True)
class StreamScenarioConfig:
    """Declarative description of one streaming TCSC scenario."""

    horizon: int = 100             # arrival window in global slots
    task_rate: float = 0.15        # mean task arrivals per slot
    burstiness: float = 0.0        # 0 = Poisson; (0, 1] = on/off bursts
    burst_cycle: float = 20.0      # mean burst-phase length in slots
    task_slots: int = 24           # m of every arriving task
    initial_workers: int = 40      # workers present at t = 0
    worker_join_rate: float = 1.0  # worker joins per slot
    mean_worker_lifetime: float = 25.0  # exponential advertised lifetime
    early_leave_prob: float = 0.3  # chance a worker churns out early
    budget_refresh_interval: float = 0.0  # 0 disables refresh events
    budget_refresh_amount: float = 0.0
    distribution: Distribution = Distribution.UNIFORM
    #: Hotspot-drift arrival preset (the elastic skew input): with
    #: drift ``d``, an arrival at time ``t`` relocates onto a single
    #: :class:`~repro.workloads.poi.ClusteredPOIGenerator` hotspot
    #: with probability ``d * t / horizon`` — spatial intensity
    #: concentrates onto the hotspot as the trace progresses.  0
    #: disables the preset (byte-identical to the plain trace).
    hotspot_drift: float = 0.0
    domain_side: float = 100.0
    reliability_range: tuple[float, float] = (1.0, 1.0)
    seed: int = 7

    def __post_init__(self):
        if self.horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {self.horizon}")
        if self.task_rate < 0:
            raise ConfigurationError(f"task_rate must be >= 0, got {self.task_rate}")
        if not 0.0 <= self.burstiness <= 1.0:
            raise ConfigurationError(
                f"burstiness must be in [0, 1], got {self.burstiness}"
            )
        if self.burst_cycle <= 0:
            raise ConfigurationError(
                f"burst_cycle must be > 0, got {self.burst_cycle}"
            )
        if self.task_slots < 3:
            raise ConfigurationError(
                f"task_slots must be >= 3, got {self.task_slots}"
            )
        if self.initial_workers < 0:
            raise ConfigurationError(
                f"initial_workers must be >= 0, got {self.initial_workers}"
            )
        if self.worker_join_rate < 0:
            raise ConfigurationError(
                f"worker_join_rate must be >= 0, got {self.worker_join_rate}"
            )
        if self.mean_worker_lifetime <= 0:
            raise ConfigurationError(
                f"mean_worker_lifetime must be > 0, got {self.mean_worker_lifetime}"
            )
        if not 0.0 <= self.early_leave_prob <= 1.0:
            raise ConfigurationError(
                f"early_leave_prob must be in [0, 1], got {self.early_leave_prob}"
            )
        if not 0.0 <= self.hotspot_drift <= 1.0:
            raise ConfigurationError(
                f"hotspot_drift must be in [0, 1], got {self.hotspot_drift}"
            )
        if self.budget_refresh_interval < 0:
            raise ConfigurationError(
                f"budget_refresh_interval must be >= 0, got {self.budget_refresh_interval}"
            )
        lo, hi = self.reliability_range
        if not 0.0 <= lo <= hi <= 1.0:
            raise ConfigurationError(
                f"invalid reliability range {self.reliability_range}"
            )

    def with_overrides(self, **kwargs) -> "StreamScenarioConfig":
        """A copy with selected fields replaced."""
        return replace(self, **kwargs)


@dataclass(slots=True)
class StreamScenario:
    """A materialized streaming scenario: the trace plus its domain."""

    config: StreamScenarioConfig
    bbox: BoundingBox
    events: list[Event] = field(default_factory=list)

    @property
    def task_count(self) -> int:
        """Tasks arriving over the horizon."""
        return sum(1 for e in self.events if isinstance(e, TaskArrival))

    @property
    def worker_count(self) -> int:
        """Workers joining over the horizon (initial included)."""
        return sum(1 for e in self.events if isinstance(e, WorkerJoin))

    def signature(self) -> tuple:
        """Hashable trace summary for determinism tests."""
        parts = []
        for event in self.events:
            if isinstance(event, TaskArrival):
                task = event.task
                parts.append(
                    ("task", round(event.time, 9), task.task_id, task.start_slot,
                     round(task.loc.x, 9), round(task.loc.y, 9))
                )
            elif isinstance(event, WorkerJoin):
                worker = event.worker
                parts.append(
                    ("join", round(event.time, 9), worker.worker_id,
                     len(worker.availability), round(worker.reliability, 9))
                )
            elif isinstance(event, WorkerLeave):
                parts.append(("leave", round(event.time, 9), event.worker_id))
            else:
                parts.append(("refresh", round(event.time, 9)))
        return tuple(parts)


def _poisson_times(rng, rate: float, horizon: float) -> list[float]:
    """Arrival instants of a homogeneous Poisson process on [0, horizon)."""
    times: list[float] = []
    if rate <= 0:
        return times
    t = float(rng.exponential(1.0 / rate))
    while t < horizon:
        times.append(t)
        t += float(rng.exponential(1.0 / rate))
    return times


def _modulated_times(
    rng, rate: float, horizon: float, burstiness: float, cycle: float
) -> list[float]:
    """On/off Markov-modulated Poisson arrivals (see module docstring)."""
    if burstiness <= 0.0:
        return _poisson_times(rng, rate, horizon)
    times: list[float] = []
    high_rate = rate * (1.0 + 3.0 * burstiness)
    low_rate = rate * max(0.05, 1.0 - burstiness)
    t = 0.0
    high = True
    while t < horizon:
        phase_end = t + float(rng.exponential(cycle))
        phase_rate = high_rate if high else low_rate
        tick = t + float(rng.exponential(1.0 / phase_rate))
        while tick < min(phase_end, horizon):
            times.append(tick)
            tick += float(rng.exponential(1.0 / phase_rate))
        t = phase_end
        high = not high
    return times


def build_stream_events(config: StreamScenarioConfig) -> StreamScenario:
    """Materialize the deterministic event trace of a configuration.

    The trace covers arrivals in ``[0, horizon)``; worker availability
    extends up to ``horizon + task_slots`` so tasks arriving late in
    the window can still be served.
    """
    bbox = BoundingBox.square(config.domain_side)
    total_horizon = config.horizon + config.task_slots
    events: list[Event] = []

    # -- workers -------------------------------------------------------
    join_rng = derive_rng(config.seed, "stream-worker-joins")
    life_rng = derive_rng(config.seed, "stream-worker-lifetimes")
    churn_rng = derive_rng(config.seed, "stream-worker-churn")
    rel_rng = derive_rng(config.seed, "stream-worker-reliability")
    traj_gen = TaxiTrajectoryGenerator(
        bbox,
        horizon=total_horizon,
        seed=derive_rng(config.seed, "stream-worker-trajectories"),
    )
    join_times = [0.0] * config.initial_workers
    join_times += _poisson_times(join_rng, config.worker_join_rate, config.horizon)
    rel_lo, rel_hi = config.reliability_range
    for worker_id, join_time in enumerate(join_times):
        join_slot = int(math.floor(join_time)) + 1
        lifetime = max(1, int(round(life_rng.exponential(config.mean_worker_lifetime))))
        end_slot = min(join_slot + lifetime - 1, total_horizon)
        path = traj_gen.trajectory()
        availability = {
            slot: path[slot - join_slot] for slot in range(join_slot, end_slot + 1)
        }
        reliability = (
            float(rel_rng.uniform(rel_lo, rel_hi)) if rel_hi > rel_lo else rel_lo
        )
        worker = Worker(worker_id, availability, reliability)
        events.append(WorkerJoin(time=join_time, worker=worker))
        advertised = end_slot - join_slot + 1
        if advertised > 1 and float(churn_rng.uniform()) < config.early_leave_prob:
            # Early churn: the worker cancels part of its advertised
            # availability (at least one slot is served first).
            served = int(churn_rng.integers(1, advertised))
            leave_time = float(join_slot + served)
        else:
            leave_time = float(end_slot + 1)
        events.append(WorkerLeave(time=leave_time, worker_id=worker_id))

    # -- tasks ---------------------------------------------------------
    arrival_rng = derive_rng(config.seed, "stream-task-arrivals")
    arrival_times = _modulated_times(
        arrival_rng,
        config.task_rate,
        float(config.horizon),
        config.burstiness,
        config.burst_cycle,
    )
    locations = generate_points(
        len(arrival_times),
        bbox,
        config.distribution,
        seed=derive_rng(config.seed, "stream-task-locations"),
    )
    if config.hotspot_drift > 0.0:
        # Hotspot drift: late arrivals relocate onto one POI hotspot
        # with probability growing linearly in time.  Both draws use
        # their own labelled streams, so enabling drift never
        # reshuffles the base locations or any other axis.
        drift_rng = derive_rng(config.seed, "stream-task-hotspot")
        hotspot_gen = ClusteredPOIGenerator(
            bbox,
            num_hotspots=1,
            # Wide enough that the hotspot spans several partitioner
            # cells — a whole region heats up, not a single point.
            hotspot_sigma_fraction=0.10,
            background_fraction=0.0,
            seed=derive_rng(config.seed, "stream-task-hotspot-locations"),
        )
        hotspot_points = hotspot_gen.generate(len(arrival_times))
        for index, time in enumerate(arrival_times):
            share = config.hotspot_drift * (time / config.horizon)
            if float(drift_rng.uniform()) < share:
                locations[index] = hotspot_points[index]
    for task_id, (time, loc) in enumerate(zip(arrival_times, locations)):
        task = Task(
            task_id=task_id,
            loc=loc,
            num_slots=config.task_slots,
            start_slot=int(math.floor(time)) + 1,
        )
        events.append(TaskArrival(time=time, task=task))

    # -- budget refreshes ----------------------------------------------
    if config.budget_refresh_interval > 0:
        tick = config.budget_refresh_interval
        while tick < config.horizon:
            events.append(
                BudgetRefresh(time=float(tick), amount=config.budget_refresh_amount)
            )
            tick += config.budget_refresh_interval

    events.sort(key=lambda e: e.time)
    return StreamScenario(config=config, bbox=bbox, events=events)
