"""Workload generators: the paper's datasets, synthesized.

The paper evaluates on (i) T-Drive taxi trajectories for worker
movements, (ii) a public spatial data generator (uniform / Gaussian /
Zipfian) for task locations, and (iii) a Beijing POI dataset as the
"real" task workload.  None of these can ship with the library, so
this package provides faithful synthetic stand-ins (see DESIGN.md
section 3 for the substitution argument):

* :mod:`repro.workloads.spatial` — the three point distributions with
  the paper's exact parameterization.
* :mod:`repro.workloads.trajectories` — random-waypoint taxi
  trajectories cut into 1-5-slot active windows.
* :mod:`repro.workloads.poi` — clustered (Gaussian-mixture) POIs
  standing in for the Beijing POI dataset.
* :mod:`repro.workloads.scenario` — the one-stop builder assembling
  tasks, workers, registry, and budgets for a named configuration.
* :mod:`repro.workloads.streaming` — event traces for the online mode:
  Poisson/bursty task arrivals and worker churn over a virtual clock.
"""

from repro.workloads.poi import ClusteredPOIGenerator
from repro.workloads.scenario import Scenario, ScenarioConfig, build_scenario
from repro.workloads.spatial import Distribution, generate_points
from repro.workloads.streaming import (
    StreamScenario,
    StreamScenarioConfig,
    build_stream_events,
)
from repro.workloads.trajectories import TaxiTrajectoryGenerator

__all__ = [
    "ClusteredPOIGenerator",
    "Distribution",
    "Scenario",
    "ScenarioConfig",
    "StreamScenario",
    "StreamScenarioConfig",
    "TaxiTrajectoryGenerator",
    "build_scenario",
    "build_stream_events",
    "generate_points",
]
