"""Scenario builder: one call from named configuration to solvable input.

A *scenario* bundles everything a solver needs: the task set, the
worker pool, a fresh worker registry, and the spatial domain.  The
defaults mirror the paper's Section V-A setup (k=3, ts=4, trajectory
workers with 1-5-slot active windows, budgets expressed as a fraction
of the average task cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.engine.costs import SingleTaskCostTable
from repro.engine.registry import WorkerRegistry
from repro.errors import ConfigurationError
from repro.geo.bbox import BoundingBox
from repro.model.task import Task, TaskSet
from repro.model.worker import WorkerPool
from repro.util.rng import derive_rng
from repro.workloads.spatial import Distribution, generate_points
from repro.workloads.trajectories import TaxiTrajectoryGenerator

__all__ = ["ScenarioConfig", "Scenario", "build_scenario"]


@dataclass(frozen=True, slots=True)
class ScenarioConfig:
    """Declarative description of a TCSC experiment instance.

    The paper's defaults are encoded as this class's defaults; each
    benchmark overrides the axis it sweeps.
    """

    num_tasks: int = 1
    num_slots: int = 300          # m, the paper's default task length
    num_workers: int = 1000
    distribution: Distribution = Distribution.UNIFORM
    k: int = 3                    # k-NN interpolation (paper default)
    ts: int = 4                   # tree fanout knob (paper default)
    budget: float | None = None   # absolute budget; None -> use fraction
    budget_fraction: float = 0.25  # of the average full-task cost (paper: 25%)
    domain_side: float = 100.0
    seed: int = 7
    reliability_range: tuple[float, float] = (1.0, 1.0)
    worker_hotspot_bias: float = 0.0

    def __post_init__(self):
        if self.num_tasks < 1:
            raise ConfigurationError(f"num_tasks must be >= 1, got {self.num_tasks}")
        if self.num_workers < 1:
            raise ConfigurationError(f"num_workers must be >= 1, got {self.num_workers}")
        if self.budget is None and not 0.0 < self.budget_fraction <= 1.0:
            raise ConfigurationError(
                f"budget_fraction must be in (0, 1], got {self.budget_fraction}"
            )

    def with_overrides(self, **kwargs) -> "ScenarioConfig":
        """A copy with selected fields replaced."""
        return replace(self, **kwargs)


@dataclass(slots=True)
class Scenario:
    """A fully-materialized experiment instance."""

    config: ScenarioConfig
    bbox: BoundingBox
    tasks: TaskSet
    pool: WorkerPool
    budget: float
    registry: WorkerRegistry = field(init=False)

    def __post_init__(self):
        self.registry = WorkerRegistry(self.pool, self.bbox)

    def fresh_registry(self) -> WorkerRegistry:
        """A new registry with no consumed workers (one per solver run)."""
        return WorkerRegistry(self.pool, self.bbox)

    @property
    def single_task(self) -> Task:
        """The task of a single-task scenario."""
        if len(self.tasks) != 1:
            raise ConfigurationError(
                f"scenario has {len(self.tasks)} tasks; expected exactly 1"
            )
        return self.tasks[0]


def build_scenario(config: ScenarioConfig) -> Scenario:
    """Materialize a :class:`Scenario` from its configuration.

    Deterministic in ``config.seed``: task locations, worker
    trajectories, and reliabilities each draw from independent derived
    streams, so e.g. changing ``num_tasks`` does not reshuffle worker
    trajectories.
    """
    bbox = BoundingBox.square(config.domain_side)
    task_points = generate_points(
        config.num_tasks,
        bbox,
        config.distribution,
        seed=derive_rng(config.seed, "task-locations"),
    )
    tasks = TaskSet(
        [
            Task(task_id=i, loc=point, num_slots=config.num_slots, start_slot=1)
            for i, point in enumerate(task_points)
        ]
    )
    generator = TaxiTrajectoryGenerator(
        bbox,
        horizon=config.num_slots,
        hotspot_bias=config.worker_hotspot_bias,
        seed=derive_rng(config.seed, "worker-trajectories"),
    )
    pool = generator.pool(config.num_workers, reliability_range=config.reliability_range)

    budget = config.budget
    if budget is None:
        budget = config.budget_fraction * _average_task_cost(tasks, pool, bbox)
    scenario = Scenario(config=config, bbox=bbox, tasks=tasks, pool=pool, budget=budget)
    return scenario


def _average_task_cost(tasks: TaskSet, pool: WorkerPool, bbox: BoundingBox) -> float:
    """Average cost of fully executing a task (nearest-worker costs).

    The paper expresses budgets as percentages of "the average cost of
    a TCSC task in the default setting"; this computes that reference.
    """
    registry = WorkerRegistry(pool, bbox)
    totals = []
    for task in tasks:
        table = SingleTaskCostTable(task, registry)
        totals.append(table.total_cost)
    average = sum(totals) / len(totals) if totals else 0.0
    if average <= 0.0:
        # Degenerate pool (no worker overlaps any task): give the
        # caller a usable budget anyway rather than 0.
        average = bbox.diagonal
    return average
