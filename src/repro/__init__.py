"""repro — Time-Continuous Spatial Crowdsourcing (TCSC).

A from-scratch reproduction of "On Efficient and Scalable
Time-Continuous Spatial Crowdsourcing" (ICDE 2021): the entropy-based
quality metric, budgeted single-task assignment (``Approx`` and the
tree-indexed ``Approx*``), multi-task summation-/minimum-quality
assignment with worker-conflict-aware parallelization, and the
spatiotemporal (STCC) extension — plus the *streaming* subsystem
(:mod:`repro.stream`): an event-driven online server with worker
churn, admission control, and incrementally-maintained indexes — the
*sharded serving layer* (:mod:`repro.shard`): halo-partitioned
multi-shard assignment whose merged plans are byte-identical to the
single-node solve — and the *durability layer* (:mod:`repro.journal`):
a checksummed write-ahead journal with snapshots whose crash recovery
is provably exact (byte-identical plans, metrics, and op counters).
The *composable runtime* (:mod:`repro.runtime`) ties them together:
one declarative :class:`RunSpec` names the workload, solver variant,
serving mode, sharding, and durability, and
:func:`~repro.runtime.build_runtime` assembles the stack as layers —
capability pairings are spec fields, not subclasses, and
``python -m repro matrix`` proves every composition byte-identical to
the legacy class it replaced.  The *observability subsystem*
(:mod:`repro.obs`) rides the same layer seam: structured
deterministic trace records, a metrics registry with exact log2
percentiles, and phase-attributed profiling — provably free
(``python -m repro bench-obs`` gates telemetry-off byte-identity and
zero op-count overhead).  The *degradation subsystem*
(:mod:`repro.degrade`) makes overload a first-class mode: certified
bounded-candidate and quality-floor approximation, an SLO-aware
exact → top-c → floor → shed ladder with deterministic hysteresis,
and a fault-injection harness (flash crowds, region outages,
op-budget slowdowns) — ``python -m repro bench-degrade`` gates
approx-off byte-identity, per-task certificate soundness, and
degrading-beats-shedding useful work.

Quickstart::

    from repro import ScenarioConfig, build_scenario, TCSCServer

    scenario = build_scenario(ScenarioConfig(num_slots=300, num_workers=1000))
    server = TCSCServer(scenario.pool, scenario.bbox)
    report = server.assign_single(scenario.single_task, budget=scenario.budget)
    print(report.qualities)

Streaming quickstart::

    from repro import StreamScenarioConfig, StreamingTCSCServer, build_stream_events

    scenario = build_stream_events(StreamScenarioConfig(seed=7))
    server = StreamingTCSCServer(scenario.bbox, index_mode="incremental")
    print(server.run(scenario.events).report())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproduction index.
"""

from repro.core.baselines import OptimalSolver, RandomAssignmentSolver, RandomSummary
from repro.core.cover import CoverResult, MinCostCoverSolver
from repro.core.evaluator import SlotChange, TemporalQualityEvaluator
from repro.core.greedy import (
    GreedyStep,
    IndexedSingleTaskGreedy,
    SingleTaskGreedy,
    SolverResult,
)
from repro.core.instrumentation import OpCounters
from repro.core.quality import (
    entropy_term,
    error_ratio,
    finishing_probability,
    max_quality,
    task_quality,
)
from repro.core.spatiotemporal import (
    LazySpatioTemporalGreedy,
    SpatioTemporalEvaluator,
    SpatioTemporalGreedy,
    score_assignment,
    spatiotemporal_opt,
)
from repro.core.tree_index import BestCandidate, TreeIndex
from repro.core.voronoi import OrderKVoronoi, VoronoiCell
from repro.engine.batches import BatchReport, BatchTCSCServer
from repro.engine.costs import DynamicCostProvider, SingleTaskCostTable, SlotOffer
from repro.engine.field import SpatioTemporalField
from repro.engine.interpolation import idw_series, reconstruction_rmse
from repro.engine.realization import (
    RealizationOutcome,
    expected_realized_quality,
    simulate_execution,
)
from repro.engine.registry import WorkerRegistry
from repro.engine.server import ServerReport, TCSCServer
from repro.errors import (
    BudgetExhaustedError,
    ConfigurationError,
    InfeasibleAssignmentError,
    JournalCorruptionError,
    JournalError,
    JournalReplayError,
    SchedulingError,
    SpecError,
    TCSCError,
    WorkerUnavailableError,
)
from repro.journal.layer import (
    CrashBudget,
    InjectedCrash,
    JournalLayer,
    RecoveryInfo,
)
from repro.journal.server import JournaledStreamingServer
from repro.runtime import (
    RunOutcome,
    RunSpec,
    ServingLayer,
    SolverVariant,
    WorkloadSpec,
    build_runtime,
    recover_runtime,
)
from repro.journal.sharded import JournaledShardedStreamingServer
from repro.journal.wal import Journal, WriteAheadLog
from repro.obs import (
    LogHistogram,
    MetricsRegistry,
    PhaseProfiler,
    Telemetry,
    TelemetryLayer,
    TraceRecorder,
)
from repro.degrade import (
    ChaosLayer,
    DegradationController,
    DegradationLayer,
    DegradeDirective,
    InjectionSpec,
    apply_injections,
    gain_envelope_bound,
    load_injections,
)
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.model.assignment import Assignment, AssignmentRecord, Budget
from repro.model.task import Task, TaskSet
from repro.model.worker import Worker, WorkerPool
from repro.stream.clock import VirtualClock
from repro.stream.events import (
    BudgetRefresh,
    EventQueue,
    TaskArrival,
    WorkerJoin,
    WorkerLeave,
)
from repro.stream.metrics import StreamMetrics
from repro.stream.online_server import BudgetPool, StreamingTCSCServer
from repro.stream.session import TaskSession
from repro.multi.conflicts import ConflictRecord, detect_conflicts, independent_groups
from repro.multi.grouping import GroupLevelParallelSolver
from repro.multi.mmqm import MinQualityGreedy
from repro.multi.msqm import SumQualityGreedy
from repro.multi.result import MultiSolverResult, MultiStep
from repro.multi.scheduler import TaskLevelParallelSolver, ThreadedTaskLevelSolver
from repro.shard.partitioner import SpatialPartitioner
from repro.shard.server import (
    SequentialServingSolver,
    ShardedReport,
    ShardedTCSCServer,
)
from repro.shard.streaming import ShardedStreamingServer
from repro.workloads.scenario import Scenario, ScenarioConfig, build_scenario
from repro.workloads.spatial import Distribution, generate_points
from repro.workloads.streaming import (
    StreamScenario,
    StreamScenarioConfig,
    build_stream_events,
)

__version__ = "1.9.0"

__all__ = [
    "Assignment",
    "AssignmentRecord",
    "BatchReport",
    "BatchTCSCServer",
    "BestCandidate",
    "BoundingBox",
    "Budget",
    "BudgetExhaustedError",
    "BudgetPool",
    "BudgetRefresh",
    "EventQueue",
    "ChaosLayer",
    "ConfigurationError",
    "ConflictRecord",
    "CoverResult",
    "CrashBudget",
    "DegradationController",
    "DegradationLayer",
    "DegradeDirective",
    "Distribution",
    "DynamicCostProvider",
    "GreedyStep",
    "GroupLevelParallelSolver",
    "IndexedSingleTaskGreedy",
    "InfeasibleAssignmentError",
    "InjectedCrash",
    "InjectionSpec",
    "Journal",
    "JournalCorruptionError",
    "JournalError",
    "JournalLayer",
    "JournalReplayError",
    "JournaledShardedStreamingServer",
    "JournaledStreamingServer",
    "LazySpatioTemporalGreedy",
    "LogHistogram",
    "MetricsRegistry",
    "MinCostCoverSolver",
    "MinQualityGreedy",
    "MultiSolverResult",
    "MultiStep",
    "OpCounters",
    "PhaseProfiler",
    "OptimalSolver",
    "OrderKVoronoi",
    "Point",
    "RandomAssignmentSolver",
    "RealizationOutcome",
    "RandomSummary",
    "RecoveryInfo",
    "RunOutcome",
    "RunSpec",
    "Scenario",
    "ScenarioConfig",
    "SchedulingError",
    "SequentialServingSolver",
    "ServerReport",
    "ServingLayer",
    "SolverVariant",
    "ShardedReport",
    "ShardedStreamingServer",
    "ShardedTCSCServer",
    "SingleTaskCostTable",
    "SingleTaskGreedy",
    "SlotChange",
    "SlotOffer",
    "SolverResult",
    "SpatialPartitioner",
    "SpatioTemporalEvaluator",
    "SpatioTemporalField",
    "SpatioTemporalGreedy",
    "StreamMetrics",
    "StreamScenario",
    "StreamScenarioConfig",
    "StreamingTCSCServer",
    "SumQualityGreedy",
    "TCSCError",
    "TCSCServer",
    "Task",
    "TaskArrival",
    "TaskLevelParallelSolver",
    "TaskSession",
    "TaskSet",
    "Telemetry",
    "TelemetryLayer",
    "TemporalQualityEvaluator",
    "TraceRecorder",
    "ThreadedTaskLevelSolver",
    "TreeIndex",
    "VirtualClock",
    "VoronoiCell",
    "SpecError",
    "Worker",
    "WorkerJoin",
    "WorkloadSpec",
    "WriteAheadLog",
    "WorkerLeave",
    "WorkerPool",
    "WorkerRegistry",
    "WorkerUnavailableError",
    "apply_injections",
    "build_runtime",
    "build_scenario",
    "build_stream_events",
    "recover_runtime",
    "detect_conflicts",
    "entropy_term",
    "error_ratio",
    "expected_realized_quality",
    "finishing_probability",
    "gain_envelope_bound",
    "generate_points",
    "load_injections",
    "idw_series",
    "independent_groups",
    "max_quality",
    "reconstruction_rmse",
    "score_assignment",
    "simulate_execution",
    "spatiotemporal_opt",
    "task_quality",
]
