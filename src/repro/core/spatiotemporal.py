"""Spatiotemporal interpolation — the STCC extension (Appendix C).

In the multi-task setting, an unprobed subtask ``tau_i^(j)`` can be
*temporally* interpolated from executed subtasks of the same task, or
*spatially* interpolated from subtasks of other tasks executed at the
same time slot ``j``.  The combined error ratio weighs the two:

    rho_err = ws * rho_s + wt * rho_t          (ws + wt = 1, Eq. 14)
    rho_s(tau_i^(j)) = sum_{e in S^s_kNN} |tau_i, e|_space / (k |D|)

where ``|D|`` is the spatial domain size (the bounding-box diagonal)
normalizing the spatial ratio into ``[0, 1]`` and missing spatial
neighbours contribute distance ``|D|`` (mirroring footnote 2).  The
subtask probability becomes ``p = (1/m)(1 - rho_err)`` and both parts
remain submodular and non-decreasing, so Algorithm 1's framework (and
its ratio) carries over — the solver here, ``SApprox``, is exactly
that greedy with the combined gains.

Setting ``wt = 1`` degenerates to the purely temporal metric, making
:class:`SpatioTemporalGreedy` a drop-in superset of the temporal
multi-task greedy (the paper's ``Approx`` line in Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instrumentation import OpCounters
from repro.core.quality import entropy_term
from typing import TYPE_CHECKING

from repro.core.tree_index import COST_EPSILON
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.engine.registry import WorkerRegistry
from repro.geo.bbox import BoundingBox
from repro.model.assignment import Assignment, AssignmentRecord, Budget
from repro.model.task import Task, TaskSet
from repro.multi.result import MultiSolverResult, MultiStep
from repro.util.sorted_slots import SortedSlots

__all__ = [
    "LazySpatioTemporalGreedy",
    "SpatioTemporalEvaluator",
    "SpatioTemporalGreedy",
    "score_assignment",
    "spatiotemporal_opt",
]


def score_assignment(
    tasks: TaskSet,
    bbox: BoundingBox,
    assignment: Assignment,
    *,
    k: int = 3,
    wt: float = 0.7,
    ws: float = 0.3,
    reliabilities: dict[int, float] | None = None,
) -> dict[int, float]:
    """Score an existing assignment under the combined STCC metric.

    Figure 11 plots temporally-optimized ``Approx`` and combined-
    optimized ``SApprox`` on the same quality axis: both assignments
    are *evaluated* with the spatiotemporal metric; they only differ
    in what they optimized.  ``reliabilities`` maps worker id ->
    lambda (default 1.0).  Returns task_id -> quality.
    """
    ev = SpatioTemporalEvaluator(tasks, bbox, k=k, wt=wt, ws=ws)
    for record in assignment:
        lam = 1.0 if reliabilities is None else reliabilities.get(record.worker_id, 1.0)
        ev.execute(record.task_id, record.slot, lam)
    return ev.qualities()


class SpatioTemporalEvaluator:
    """Incremental STCC quality bookkeeping for a task set.

    All tasks must share the same slot count ``m`` and start slot (the
    paper's batch model): spatial interpolation pairs subtasks at the
    same local slot index.
    """

    def __init__(
        self,
        tasks: TaskSet,
        bbox: BoundingBox,
        *,
        k: int = 3,
        wt: float = 0.7,
        ws: float = 0.3,
        counters: OpCounters | None = None,
    ):
        if abs(wt + ws - 1.0) > 1e-9:
            raise ConfigurationError(f"wt + ws must equal 1, got {wt} + {ws}")
        if not tasks:
            raise ConfigurationError("task set is empty")
        m = tasks[0].num_slots
        start = tasks[0].start_slot
        for task in tasks:
            if task.num_slots != m or task.start_slot != start:
                raise ConfigurationError(
                    "STCC requires tasks with identical slot ranges"
                )
        if bbox.diagonal <= 0.0:
            raise ConfigurationError("spatial domain must have positive extent")
        self.tasks = tasks
        self.m = m
        self.k = k
        self.wt = wt
        self.ws = ws
        self.domain_size = bbox.diagonal
        self.counters = counters if counters is not None else OpCounters()
        self._ids = [task.task_id for task in tasks]
        self._by_id: dict[int, Task] = {task.task_id: task for task in tasks}
        self._executed: dict[int, SortedSlots] = {tid: SortedSlots() for tid in self._ids}
        self._reliability: dict[tuple[int, int], float] = {}
        # Executed task ids per slot (for spatial k-NN), kept sorted.
        self._at_slot: dict[int, list[int]] = {j: [] for j in range(1, m + 1)}
        self._p: dict[tuple[int, int], float] = {
            (tid, j): 0.0 for tid in self._ids for j in range(1, m + 1)
        }
        self._quality: dict[int, float] = {tid: 0.0 for tid in self._ids}

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    def quality(self, task_id: int) -> float:
        """Current q(tau_i)."""
        return self._quality[task_id]

    @property
    def sum_quality(self) -> float:
        """qsum over the task set."""
        return sum(self._quality.values())

    @property
    def min_quality(self) -> float:
        """qmin over the task set."""
        return min(self._quality.values())

    def qualities(self) -> dict[int, float]:
        """Copy of the per-task qualities."""
        return dict(self._quality)

    def is_executed(self, task_id: int, slot: int) -> bool:
        """True iff ``(task, slot)`` has been executed."""
        return slot in self._executed[task_id]

    def p(self, task_id: int, slot: int) -> float:
        """Current finishing probability of ``(task, slot)``."""
        return self._p[(task_id, slot)]

    # ------------------------------------------------------------------
    # Error ratios
    # ------------------------------------------------------------------
    def temporal_rho(self, task_id: int, slot: int) -> float:
        """rho_t: temporal interpolation error within the task (Eq. 3)."""
        executed = self._executed[task_id]
        self.counters.knn_queries += 1
        neighbors = executed.k_nearest(slot, self.k, exclude=slot)
        total = sum(
            self._reliability[(task_id, e)] * abs(e - slot) for e in neighbors
        )
        total += (self.k - len(neighbors)) * self.m
        return total / (self.k * self.m)

    def spatial_rho(self, task_id: int, slot: int) -> float:
        """rho_s: spatial error from other tasks' executions at ``slot``
        (Eq. 13), missing neighbours at the domain size."""
        loc = self._by_id[task_id].loc
        self.counters.knn_queries += 1
        nearest = sorted(
            (loc.distance_to(self._by_id[other].loc), other)
            for other in self._at_slot[slot]
            if other != task_id
        )[: self.k]
        total = sum(self._reliability[(other, slot)] * d for d, other in nearest)
        total += (self.k - len(nearest)) * self.domain_size
        return total / (self.k * self.domain_size)

    def temporal_confidence(self, task_id: int, slot: int) -> float:
        """Eq. 4's temporal term ``mean(lambda) - rho_t`` in unified
        per-neighbour form ``sum lambda_e (m - d_e) / (k m)``: each
        neighbour contributes its reliability scaled by proximity, and
        a missing neighbour contributes zero.  Under unit reliability
        this equals ``1 - rho_t``."""
        executed = self._executed[task_id]
        self.counters.knn_queries += 1
        neighbors = executed.k_nearest(slot, self.k, exclude=slot)
        total = sum(
            self._reliability[(task_id, e)] * (self.m - abs(e - slot))
            for e in neighbors
        )
        return total / (self.k * self.m)

    def spatial_confidence(self, task_id: int, slot: int) -> float:
        """Spatial analogue over the domain size ``|D|``; equals
        ``1 - rho_s`` under unit reliability."""
        loc = self._by_id[task_id].loc
        self.counters.knn_queries += 1
        nearest = sorted(
            (loc.distance_to(self._by_id[other].loc), other)
            for other in self._at_slot[slot]
            if other != task_id
        )[: self.k]
        total = sum(
            self._reliability[(other, slot)] * (self.domain_size - d)
            for d, other in nearest
        )
        return total / (self.k * self.domain_size)

    def _p_of(self, task_id: int, slot: int) -> float:
        if slot in self._executed[task_id]:
            return self._reliability[(task_id, slot)] / self.m
        self.counters.slot_evaluations += 1
        confidence = self.wt * self.temporal_confidence(
            task_id, slot
        ) + self.ws * self.spatial_confidence(task_id, slot)
        return confidence / self.m

    # ------------------------------------------------------------------
    # Gains and mutation
    # ------------------------------------------------------------------
    def _affected(self, task_id: int, slot: int) -> list[tuple[int, int]]:
        """(task, slot) pairs whose p may change if (task_id, slot)
        executes: the task's own temporal window plus every other
        task's same-slot subtask (spatial coupling)."""
        executed = self._executed[task_id]
        e_k = executed.kth_left(slot, self.k)
        f_k = executed.kth_right(slot, self.k)
        lo = 1 if e_k is None else max(1, (e_k + slot + 1) // 2)
        hi = self.m if f_k is None else min(self.m, (f_k + slot) // 2)
        pairs = [(task_id, u) for u in range(lo, hi + 1)]
        pairs.extend((other, slot) for other in self._ids if other != task_id)
        return pairs

    def gain_if_executed(self, task_id: int, slot: int, reliability: float = 1.0) -> float:
        """Quality increment of tentatively executing ``(task, slot)``."""
        if slot in self._executed[task_id]:
            raise ConfigurationError(f"({task_id}, {slot}) already executed")
        self.counters.gain_evaluations += 1
        # Tentatively apply, measure, roll back.
        changes = self.execute(task_id, slot, reliability)
        gain = sum(delta for _, _, delta in changes)
        self._rollback(task_id, slot, changes)
        return gain

    def execute(
        self, task_id: int, slot: int, reliability: float = 1.0
    ) -> list[tuple[tuple[int, int], float, float]]:
        """Execute ``(task, slot)``; returns [(pair, old_p, quality_delta)]."""
        if slot in self._executed[task_id]:
            raise ConfigurationError(f"({task_id}, {slot}) already executed")
        affected = self._affected(task_id, slot)
        self._executed[task_id].add(slot)
        self._reliability[(task_id, slot)] = reliability
        self._at_slot[slot].append(task_id)
        self._at_slot[slot].sort()
        changes: list[tuple[tuple[int, int], float, float]] = []
        for pair in affected:
            old_p = self._p[pair]
            new_p = self._p_of(*pair)
            if new_p != old_p:
                delta = entropy_term(new_p) - entropy_term(old_p)
                self._p[pair] = new_p
                self._quality[pair[0]] += delta
                changes.append((pair, old_p, delta))
        return changes

    def _rollback(
        self,
        task_id: int,
        slot: int,
        changes: list[tuple[tuple[int, int], float, float]],
    ) -> None:
        self._executed[task_id].remove(slot)
        del self._reliability[(task_id, slot)]
        self._at_slot[slot].remove(task_id)
        for pair, old_p, delta in changes:
            self._p[pair] = old_p
            self._quality[pair[0]] -= delta

    def recompute_quality(self, task_id: int) -> float:
        """Oracle: full recomputation of one task's quality."""
        return sum(self._p_and_entropy(task_id, j) for j in range(1, self.m + 1))

    def _p_and_entropy(self, task_id: int, slot: int) -> float:
        return entropy_term(self._p_of(task_id, slot))


class SpatioTemporalGreedy:
    """``SApprox``: budgeted greedy over the combined STCC metric."""

    def __init__(
        self,
        tasks: TaskSet,
        registry: "WorkerRegistry",
        bbox: BoundingBox,
        *,
        k: int = 3,
        budget: float,
        wt: float = 0.7,
        ws: float = 0.3,
        counters: OpCounters | None = None,
    ):
        from repro.engine.costs import DynamicCostProvider

        self.tasks = tasks
        self.registry = registry
        self.budget_limit = float(budget)
        self.counters = counters if counters is not None else OpCounters()
        self.ev = SpatioTemporalEvaluator(
            tasks, bbox, k=k, wt=wt, ws=ws, counters=self.counters
        )
        self.providers = {
            task.task_id: DynamicCostProvider(task, registry, counters=self.counters)
            for task in tasks
        }

    def solve(self) -> MultiSolverResult:
        """Greedy stream over all (task, slot) pairs under the budget."""
        budget = Budget(self.budget_limit)
        assignment = Assignment()
        steps: list[MultiStep] = []
        conflicts = 0

        while True:
            best: tuple[float, int, int, float, float] | None = None
            for task in self.tasks:
                provider = self.providers[task.task_id]
                for slot in task.slots:
                    if self.ev.is_executed(task.task_id, slot):
                        continue
                    offer = provider.offer(slot)
                    if offer is None or offer.cost > budget.remaining + 1e-12:
                        continue
                    gain = self.ev.gain_if_executed(task.task_id, slot, offer.reliability)
                    if gain <= 0.0:
                        continue
                    heuristic = gain / max(offer.cost, COST_EPSILON)
                    key = (heuristic, -task.task_id, -slot)
                    if best is None or key > (best[0], -best[1], -best[2]):
                        best = (heuristic, task.task_id, slot, gain, offer.cost)
            if best is None:
                break
            heuristic, task_id, slot, gain, cost = best
            provider = self.providers[task_id]
            offer = provider.offer(slot)
            self.ev.execute(task_id, slot, offer.reliability)
            budget.charge(cost)
            task = next(t for t in self.tasks if t.task_id == task_id)
            global_slot = task.global_slot(slot)
            self.registry.consume(offer.worker_id, global_slot)
            assignment.add(AssignmentRecord(task_id, slot, offer.worker_id, cost))
            steps.append(MultiStep(task_id, slot, gain, cost, heuristic, offer.worker_id))
            self.counters.iterations += 1
            for other_id, other_provider in self.providers.items():
                if other_id != task_id and other_provider.invalidate_worker(
                    offer.worker_id, global_slot
                ):
                    conflicts += 1
                    self.counters.conflicts_detected += 1

        return MultiSolverResult(
            assignment=assignment,
            qualities=self.ev.qualities(),
            spent=budget.spent,
            counters=self.counters,
            steps=steps,
            conflict_count=conflicts,
        )


def spatiotemporal_opt(
    tasks: TaskSet,
    registry: "WorkerRegistry",
    bbox: BoundingBox,
    *,
    k: int = 3,
    budget: float,
    wt: float = 0.7,
    ws: float = 0.3,
    max_pairs: int = 16,
) -> tuple[float, tuple[tuple[int, int], ...]]:
    """Exhaustive STCC optimum over small instances (Fig. 11's OPT).

    Enumerates all subsets of assignable (task, slot) pairs within the
    budget; refuses instances with more than ``max_pairs`` pairs.
    Workers are treated as non-exclusive (each pair priced at its
    nearest worker), matching the baseline's definition.
    Returns ``(best qsum, chosen pairs)``.
    """
    from repro.engine.costs import DynamicCostProvider

    pairs: list[tuple[int, int, float, float]] = []
    for task in tasks:
        provider = DynamicCostProvider(task, registry)
        for slot in task.slots:
            offer = provider.offer(slot)
            if offer is not None:
                pairs.append((task.task_id, slot, offer.cost, offer.reliability))
    if len(pairs) > max_pairs:
        raise ConfigurationError(
            f"{len(pairs)} assignable pairs exceed the exhaustive cap of {max_pairs}"
        )

    best_quality = 0.0
    best_chosen: tuple[tuple[int, int], ...] = ()
    n = len(pairs)
    for mask in range(1 << n):
        cost = 0.0
        feasible = True
        for i in range(n):
            if mask >> i & 1:
                cost += pairs[i][2]
                if cost > budget + 1e-12:
                    feasible = False
                    break
        if not feasible:
            continue
        ev = SpatioTemporalEvaluator(tasks, bbox, k=k, wt=wt, ws=ws)
        for i in range(n):
            if mask >> i & 1:
                task_id, slot, _, reliability = pairs[i]
                ev.execute(task_id, slot, reliability)
        quality = ev.sum_quality
        if quality > best_quality + 1e-15:
            best_quality = quality
            best_chosen = tuple(
                (pairs[i][0], pairs[i][1]) for i in range(n) if mask >> i & 1
            )
    return best_quality, best_chosen


class LazySpatioTemporalGreedy:
    """``SApprox*``: the STCC greedy with lazy (CELF-style) evaluation.

    The paper's conclusion leaves "indexing structures ... [for] the
    multi-dimensional weighted order-k Voronoi diagram" as future work;
    this solver implements the submodularity-based half of that
    acceleration, which needs no geometric index at all:

    * the combined quality is submodular and non-decreasing (Appendix
      C), so a pair's marginal gain can only *shrink* as other pairs
      execute;
    * worker consumption can only *raise* a pair's cost;

    hence a stale heuristic value is always an upper bound and a lazy
    max-heap suffices: pop the stale maximum, re-evaluate it exactly,
    and execute it if it still beats the next stale bound.  Instead of
    re-scoring all O(|T| m) pairs per iteration, only a handful are
    touched, while the produced plan matches the exhaustive
    :class:`SpatioTemporalGreedy` (ties aside).

    Two permanent-drop rules are sound under the same monotonicities
    (and keep the heap shrinking): a popped pair whose gain is
    non-positive stays non-positive forever, and one whose cost exceeds
    the remaining budget can never become affordable again.
    """

    def __init__(
        self,
        tasks: TaskSet,
        registry: "WorkerRegistry",
        bbox: BoundingBox,
        *,
        k: int = 3,
        budget: float,
        wt: float = 0.7,
        ws: float = 0.3,
        counters: OpCounters | None = None,
    ):
        from repro.engine.costs import DynamicCostProvider

        self.tasks = tasks
        self.registry = registry
        self.budget_limit = float(budget)
        self.counters = counters if counters is not None else OpCounters()
        self.ev = SpatioTemporalEvaluator(
            tasks, bbox, k=k, wt=wt, ws=ws, counters=self.counters
        )
        self.providers = {
            task.task_id: DynamicCostProvider(task, registry, counters=self.counters)
            for task in tasks
        }

    def _score(self, task_id: int, slot: int, remaining: float):
        """Exact (gain, cost, heuristic) for a pair, or None if the
        pair is permanently out (unassignable, unaffordable, or
        non-positive gain)."""
        offer = self.providers[task_id].offer(slot)
        if offer is None or offer.cost > remaining + 1e-12:
            return None
        gain = self.ev.gain_if_executed(task_id, slot, offer.reliability)
        if gain <= 0.0:
            return None
        return gain, offer.cost, gain / max(offer.cost, COST_EPSILON)

    def solve(self) -> MultiSolverResult:
        """Run the lazy greedy to budget exhaustion."""
        from repro.util.heaps import LazyMaxHeap

        budget = Budget(self.budget_limit)
        assignment = Assignment()
        steps: list[MultiStep] = []
        conflicts = 0

        heap = LazyMaxHeap()
        iteration = 0
        for task in self.tasks:
            for slot in task.slots:
                scored = self._score(task.task_id, slot, budget.remaining)
                if scored is not None:
                    pair = (task.task_id, slot)
                    heap.push(scored[2], pair, (iteration, scored))

        while heap:
            popped = heap.pop()
            if popped is None:
                break
            _, pair, (scored_at, cached) = popped
            task_id, slot = pair
            if scored_at == iteration:
                # Nothing executed since this exact score was computed.
                scored = cached
            else:
                scored = self._score(task_id, slot, budget.remaining)
                if scored is None:
                    continue
            gain, cost, heuristic = scored
            top = heap.peek()
            if top is not None and top[0] > heuristic:
                # A stale bound beats our exact value; requeue and let
                # the heap decide (classic CELF step).
                heap.push(heuristic, pair, (iteration, scored))
                continue
            if cost > budget.remaining + 1e-12:
                continue  # permanently unaffordable

            offer = self.providers[task_id].offer(slot)
            self.ev.execute(task_id, slot, offer.reliability)
            budget.charge(cost)
            task = self.tasks.by_id(task_id)
            global_slot = task.global_slot(slot)
            self.registry.consume(offer.worker_id, global_slot)
            assignment.add(AssignmentRecord(task_id, slot, offer.worker_id, cost))
            steps.append(MultiStep(task_id, slot, gain, cost, heuristic, offer.worker_id))
            self.counters.iterations += 1
            iteration += 1  # all cached scores are now stale upper bounds
            # Invalidate offer caches of competitors sharing the
            # consumed worker; heap entries stay as (valid) bounds.
            for other_id, provider in self.providers.items():
                if other_id != task_id:
                    if provider.invalidate_worker(offer.worker_id, global_slot):
                        conflicts += 1
                        self.counters.conflicts_detected += 1

        return MultiSolverResult(
            assignment=assignment,
            qualities=self.ev.qualities(),
            spent=budget.spent,
            counters=self.counters,
            steps=steps,
            conflict_count=conflicts,
        )
