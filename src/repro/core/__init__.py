"""The paper's core contribution: quality metric, indexes, and solvers.

Modules:

* :mod:`repro.core.quality` — Eq. 1-5: interpolation error ratio,
  subtask finishing probability, entropy task quality, and the worker-
  reliability extension.
* :mod:`repro.core.evaluator` — incremental single-task quality
  evaluator with local (affected-interval) updates and selectable
  scalar/vectorized backends.
* :mod:`repro.core.kernels` — the vectorized (NumPy) quality kernels:
  batch temporal k-NN, the Eq.-6 merge rule as array arithmetic, and
  the precomputed entropy table over the ``O(m*k)`` distinct
  unit-reliability probabilities.
* :mod:`repro.core.voronoi` — exact 1-D order-k Voronoi diagram over
  the slot line (validation oracle).
* :mod:`repro.core.tree_index` — the aggregated-binary-tree
  approximation of the order-k Voronoi diagram (Section III-C) with
  best-first search and upper-bound pruning.
* :mod:`repro.core.greedy` — Algorithm 1 (``Approx``) and the indexed
  ``Approx*`` solver, plus a local-update ablation.
* :mod:`repro.core.baselines` — ``Rand`` baselines and the exhaustive
  ``OPT`` solver used in the quality experiments.
* :mod:`repro.core.spatiotemporal` — Appendix C: spatiotemporal
  interpolation (STCC) and the ``SApprox`` solver.
"""

from repro.core.evaluator import (
    EVALUATOR_BACKENDS,
    SlotChange,
    TemporalQualityEvaluator,
)
from repro.core.kernels import QualityKernel, get_kernel, phi_array
from repro.core.quality import (
    entropy_term,
    error_ratio,
    finishing_probability,
    max_quality,
    task_quality,
)

__all__ = [
    "EVALUATOR_BACKENDS",
    "QualityKernel",
    "SlotChange",
    "TemporalQualityEvaluator",
    "entropy_term",
    "error_ratio",
    "finishing_probability",
    "get_kernel",
    "max_quality",
    "phi_array",
    "task_quality",
]
