"""Exact one-dimensional order-k Voronoi diagrams over the slot line.

Section III-C observes that the solution space of temporal k-NN
searching over the ``m`` slots of a task is a 1-D *order-k Voronoi
diagram*: the slot line splits into maximal intervals (cells) such that
every query slot inside a cell has the same k-NN *set* of executed
slots.

Because the sites live on a line, the order-k diagram has a simple
structure: the k-NN set of any query is a *contiguous window* of ``k``
consecutive executed slots, and the boundary between window
``E[i..i+k-1]`` and window ``E[i+1..i+k]`` lies at the midpoint of
``E[i]`` and ``E[i+k]`` (the two sites that differ).  With the
library's deterministic tie-break (ties prefer the smaller slot index),
a query at the exact midpoint belongs to the left window.

This module provides both the O(|E|) sliding-window construction and a
brute-force construction; the test suite checks they agree, and the
diagram serves as the correctness oracle for the tree index.

For the streaming subsystem the diagram is also maintainable *online*:
:meth:`OrderKVoronoi.insert_site` and :meth:`OrderKVoronoi.remove_site`
rebuild only the cells whose defining site windows involve the mutated
site — at most ``k + 2`` windows plus the catch-all, independent of
``|E|`` — and fall back to a full rebuild when the affected span
exceeds ``rebuild_threshold`` of all windows.  (Cell *construction*
is O(k) per update; the list splice itself still copies O(|cells|)
references at slice speed.)  ``cells_built`` counts cell
constructions so callers can verify the incremental path does less
work than rebuild-from-scratch.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["VoronoiCell", "OrderKVoronoi"]


@dataclass(frozen=True, slots=True)
class VoronoiCell:
    """A maximal interval of slots sharing one k-NN set."""

    lo: int
    hi: int
    sites: tuple[int, ...]  # the shared k-NN set, ascending

    def __contains__(self, slot: int) -> bool:
        return self.lo <= slot <= self.hi

    @property
    def width(self) -> int:
        """Number of slots covered by the cell."""
        return self.hi - self.lo + 1


class OrderKVoronoi:
    """Exact order-k Voronoi diagram of executed slots on ``[1, m]``."""

    def __init__(
        self,
        m: int,
        k: int,
        executed: list[int] | tuple[int, ...],
        *,
        rebuild_threshold: float = 0.5,
    ):
        if m < 1:
            raise ConfigurationError(f"m must be >= 1, got {m}")
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if not 0.0 < rebuild_threshold <= 1.0:
            raise ConfigurationError(
                f"rebuild_threshold must be in (0, 1], got {rebuild_threshold}"
            )
        self.m = m
        self.k = k
        self.rebuild_threshold = rebuild_threshold
        self.sites = sorted(set(executed))
        for site in self.sites:
            if not 1 <= site <= m:
                raise ConfigurationError(f"site {site} outside 1..{m}")
        #: Cells constructed so far (full builds + splices) — the work
        #: measure incremental-maintenance tests assert on.
        self.cells_built = 0
        #: Full reconstructions, including threshold fallbacks.
        self.full_rebuilds = 0
        self.cells = self._build()
        self._boundaries = [cell.hi for cell in self.cells]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _make_cell(self, lo: int, hi: int, sites: tuple[int, ...]) -> VoronoiCell:
        self.cells_built += 1
        return VoronoiCell(lo, hi, sites)

    def _cells_for_windows(
        self, first: int, last: int, lo: int, include_tail: bool
    ) -> list[VoronoiCell]:
        """Cells of site windows ``first..last``, chaining from slot ``lo``.

        Window i covers queries up to floor((sites[i] + sites[i+k]) / 2):
        beyond that, sites[i+k] is strictly closer than sites[i] (or
        tied, in which case the tie-break keeps the smaller index and
        the boundary slot still belongs to the left window).  With
        ``include_tail`` the last-k-sites catch-all cell is appended.
        Shared by the full build and the incremental splice so the
        boundary chaining cannot diverge between them.
        """
        sites, m, k = self.sites, self.m, self.k
        cells: list[VoronoiCell] = []
        for i in range(first, last + 1):
            boundary = (sites[i] + sites[i + k]) // 2
            hi = min(boundary, m)
            if hi >= lo:
                cells.append(self._make_cell(lo, hi, tuple(sites[i : i + k])))
                lo = hi + 1
            if lo > m:
                break
        if include_tail and lo <= m:
            cells.append(self._make_cell(lo, m, tuple(sites[len(sites) - k :])))
        return cells

    def _build(self) -> list[VoronoiCell]:
        sites, m, k = self.sites, self.m, self.k
        n = len(sites)
        self.full_rebuilds += 1
        if n == 0:
            return [self._make_cell(1, m, ())]
        if n <= k:
            # Every query sees all sites: a single cell.
            return [self._make_cell(1, m, tuple(sites))]
        return self._cells_for_windows(0, n - k - 1, 1, True)

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def insert_site(self, site: int) -> None:
        """Add an executed slot, splicing only the affected cells.

        Windows whose site set or boundary involves the new site have
        indices in ``[idx - k, idx + 1]`` (``idx`` the insertion
        position), so the splice constructs at most ``k + 2`` cells
        plus the catch-all — independent of the number of sites.
        """
        if not 1 <= site <= self.m:
            raise ConfigurationError(f"site {site} outside 1..{self.m}")
        idx = bisect_left(self.sites, site)
        if idx < len(self.sites) and self.sites[idx] == site:
            raise ConfigurationError(f"site {site} already present")
        insort(self.sites, site)
        self._splice(idx)

    def remove_site(self, site: int) -> None:
        """Remove an executed slot, splicing only the affected cells."""
        idx = bisect_left(self.sites, site)
        if idx >= len(self.sites) or self.sites[idx] != site:
            raise ConfigurationError(f"site {site} not present")
        del self.sites[idx]
        self._splice(idx)

    def _rebuild(self) -> None:
        self.cells = self._build()
        self._boundaries = [cell.hi for cell in self.cells]

    def _splice(self, idx: int) -> None:
        """Recompute the cell run around mutated site position ``idx``.

        Windows with index < ``idx - k`` keep both their site sets and
        their boundaries; windows beyond ``idx + 1`` are index-shifted
        copies of pre-mutation windows with identical cell intervals.
        Only the run in between is rebuilt and spliced over the old
        cells it tiles.
        """
        sites, m, k = self.sites, self.m, self.k
        n = len(sites)
        windows = n - k
        if windows <= 1 or not self.cells:
            # Trivial diagrams (<= 1 regular window): a full rebuild is
            # already O(1) cells.
            self._rebuild()
            return
        a = min(max(0, idx - k), windows - 1)
        b = min(idx + 1, windows - 1)
        if (b - a + 1) > max(1.0, self.rebuild_threshold * windows):
            # Fallback: the affected span is a large fraction of the
            # diagram; splicing would not beat rebuilding.
            self._rebuild()
            return

        left_edge = 1 if a == 0 else min((sites[a - 1] + sites[a - 1 + k]) // 2, m) + 1
        tail = b >= windows - 1
        middle: list[VoronoiCell] = []
        right_edge = m
        if left_edge <= m:
            middle = self._cells_for_windows(a, b, left_edge, tail)
            if not tail:
                right_edge = min((sites[b] + sites[b + k]) // 2, m)
        # Splice: prefix cells end before the rebuilt run, suffix cells
        # start after it (boundaries there are unchanged by the edit,
        # so both cut points fall on existing cell edges and bisect on
        # the hi-sorted boundary list finds them).
        i = bisect_left(self._boundaries, left_edge)
        j = len(self.cells) if tail else bisect_left(self._boundaries, right_edge + 1)
        self.cells = self.cells[:i] + middle + self.cells[j:]
        self._boundaries = (
            self._boundaries[:i]
            + [cell.hi for cell in middle]
            + self._boundaries[j:]
        )

    @staticmethod
    def site_knn(slot: int, sites: list[int], k: int) -> tuple[int, ...]:
        """Direct k-NN of ``slot`` among ``sites`` (the query itself is a
        valid site — the diagram is over *sites*, not over interpolation
        targets), ties toward the smaller index.  Returns sorted."""
        ordered = sorted(set(sites), key=lambda e: (abs(e - slot), e))
        return tuple(sorted(ordered[:k]))

    @classmethod
    def brute_force_cells(cls, m: int, k: int, executed: list[int]) -> list[VoronoiCell]:
        """O(m log m) construction by direct k-NN evaluation per slot.

        Used by tests as the oracle for :meth:`_build`.
        """
        cells: list[VoronoiCell] = []
        prev_set: tuple[int, ...] | None = None
        lo = 1
        for slot in range(1, m + 1):
            knn = cls.site_knn(slot, executed, k)
            if prev_set is None:
                prev_set = knn
            elif knn != prev_set:
                cells.append(VoronoiCell(lo, slot - 1, prev_set))
                lo = slot
                prev_set = knn
        cells.append(VoronoiCell(lo, m, prev_set if prev_set is not None else ()))
        return cells

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cells)

    def cell_of(self, slot: int) -> VoronoiCell:
        """The cell containing ``slot`` — the O(1)-ish lookup the paper
        uses to avoid repeated k-NN searches (here O(log #cells))."""
        if not 1 <= slot <= self.m:
            raise ConfigurationError(f"slot {slot} outside 1..{self.m}")
        i = bisect_right(self._boundaries, slot - 1)
        return self.cells[i]

    def knn(self, slot: int) -> tuple[int, ...]:
        """The k-NN set of ``slot`` via the diagram."""
        return self.cell_of(slot).sites

    def average_cell_count_bound(self) -> int:
        """The O(k (m - k)) bound on the number of order-k cells the
        paper cites when motivating the approximate tree index."""
        return self.k * max(self.m - self.k, 1)
