"""Exact one-dimensional order-k Voronoi diagrams over the slot line.

Section III-C observes that the solution space of temporal k-NN
searching over the ``m`` slots of a task is a 1-D *order-k Voronoi
diagram*: the slot line splits into maximal intervals (cells) such that
every query slot inside a cell has the same k-NN *set* of executed
slots.

Because the sites live on a line, the order-k diagram has a simple
structure: the k-NN set of any query is a *contiguous window* of ``k``
consecutive executed slots, and the boundary between window
``E[i..i+k-1]`` and window ``E[i+1..i+k]`` lies at the midpoint of
``E[i]`` and ``E[i+k]`` (the two sites that differ).  With the
library's deterministic tie-break (ties prefer the smaller slot index),
a query at the exact midpoint belongs to the left window.

This module provides both the O(|E|) sliding-window construction and a
brute-force construction; the test suite checks they agree, and the
diagram serves as the correctness oracle for the tree index.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["VoronoiCell", "OrderKVoronoi"]


@dataclass(frozen=True, slots=True)
class VoronoiCell:
    """A maximal interval of slots sharing one k-NN set."""

    lo: int
    hi: int
    sites: tuple[int, ...]  # the shared k-NN set, ascending

    def __contains__(self, slot: int) -> bool:
        return self.lo <= slot <= self.hi

    @property
    def width(self) -> int:
        """Number of slots covered by the cell."""
        return self.hi - self.lo + 1


class OrderKVoronoi:
    """Exact order-k Voronoi diagram of executed slots on ``[1, m]``."""

    def __init__(self, m: int, k: int, executed: list[int] | tuple[int, ...]):
        if m < 1:
            raise ConfigurationError(f"m must be >= 1, got {m}")
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.m = m
        self.k = k
        self.sites = sorted(set(executed))
        for site in self.sites:
            if not 1 <= site <= m:
                raise ConfigurationError(f"site {site} outside 1..{m}")
        self.cells = self._build()
        self._boundaries = [cell.hi for cell in self.cells]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> list[VoronoiCell]:
        sites, m, k = self.sites, self.m, self.k
        n = len(sites)
        if n == 0:
            return [VoronoiCell(1, m, ())]
        if n <= k:
            # Every query sees all sites: a single cell.
            return [VoronoiCell(1, m, tuple(sites))]
        cells: list[VoronoiCell] = []
        lo = 1
        # Window i covers queries up to floor((sites[i] + sites[i+k]) / 2):
        # beyond that, sites[i+k] is strictly closer than sites[i] (or
        # tied, in which case the tie-break keeps the smaller index and
        # the boundary slot still belongs to the left window).
        for i in range(n - k):
            boundary = (sites[i] + sites[i + k]) // 2
            hi = min(boundary, m)
            if hi >= lo:
                cells.append(VoronoiCell(lo, hi, tuple(sites[i : i + k])))
                lo = hi + 1
            if lo > m:
                break
        if lo <= m:
            cells.append(VoronoiCell(lo, m, tuple(sites[n - k :])))
        return cells

    @staticmethod
    def site_knn(slot: int, sites: list[int], k: int) -> tuple[int, ...]:
        """Direct k-NN of ``slot`` among ``sites`` (the query itself is a
        valid site — the diagram is over *sites*, not over interpolation
        targets), ties toward the smaller index.  Returns sorted."""
        ordered = sorted(set(sites), key=lambda e: (abs(e - slot), e))
        return tuple(sorted(ordered[:k]))

    @classmethod
    def brute_force_cells(cls, m: int, k: int, executed: list[int]) -> list[VoronoiCell]:
        """O(m log m) construction by direct k-NN evaluation per slot.

        Used by tests as the oracle for :meth:`_build`.
        """
        cells: list[VoronoiCell] = []
        prev_set: tuple[int, ...] | None = None
        lo = 1
        for slot in range(1, m + 1):
            knn = cls.site_knn(slot, executed, k)
            if prev_set is None:
                prev_set = knn
            elif knn != prev_set:
                cells.append(VoronoiCell(lo, slot - 1, prev_set))
                lo = slot
                prev_set = knn
        cells.append(VoronoiCell(lo, m, prev_set if prev_set is not None else ()))
        return cells

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cells)

    def cell_of(self, slot: int) -> VoronoiCell:
        """The cell containing ``slot`` — the O(1)-ish lookup the paper
        uses to avoid repeated k-NN searches (here O(log #cells))."""
        if not 1 <= slot <= self.m:
            raise ConfigurationError(f"slot {slot} outside 1..{self.m}")
        i = bisect_right(self._boundaries, slot - 1)
        return self.cells[i]

    def knn(self, slot: int) -> tuple[int, ...]:
        """The k-NN set of ``slot`` via the diagram."""
        return self.cell_of(slot).sites

    def average_cell_count_bound(self) -> int:
        """The O(k (m - k)) bound on the number of order-k cells the
        paper cites when motivating the approximate tree index."""
        return self.k * max(self.m - self.k, 1)
