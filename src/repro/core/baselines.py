"""Baselines for the quality experiments: ``Rand`` and ``OPT``.

The paper's Figures 6, 7, and 11 compare ``Approx`` against:

* ``Rand`` — "accomplishes a task by randomly assigning a subtask to
  its nearest worker"; being non-deterministic it is reported as
  RandMin / RandMax / RandAvg over repeated runs.
* ``OPT`` — "offers the optimal result by traversing the solution
  space"; exhaustive search, only feasible for small ``m``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

from repro.core.evaluator import TemporalQualityEvaluator
from repro.core.instrumentation import OpCounters
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.engine.costs import SingleTaskCostTable
from repro.model.assignment import Assignment, AssignmentRecord, Budget
from repro.model.task import Task
from repro.util.rng import make_rng

__all__ = ["RandomSummary", "RandomAssignmentSolver", "OptimalSolver", "OptResult"]


@dataclass(frozen=True, slots=True)
class RandomSummary:
    """Statistics over repeated random-assignment trials."""

    qualities: tuple[float, ...]

    @property
    def min(self) -> float:
        """RandMin of the paper's plots."""
        return min(self.qualities)

    @property
    def max(self) -> float:
        """RandMax of the paper's plots."""
        return max(self.qualities)

    @property
    def avg(self) -> float:
        """RandAvg of the paper's plots."""
        return sum(self.qualities) / len(self.qualities)


class RandomAssignmentSolver:
    """The ``Rand`` baseline: random affordable subtasks, nearest worker."""

    def __init__(
        self,
        task: Task,
        costs: "SingleTaskCostTable",
        *,
        k: int = 3,
        budget: float,
        seed: int | np.random.Generator | None = 0,
    ):
        self.task = task
        self.costs = costs
        self.k = k
        self.budget_limit = float(budget)
        self._rng = make_rng(seed)

    def run_once(self) -> tuple[float, Assignment]:
        """One random trial; returns (quality, assignment)."""
        ev = TemporalQualityEvaluator(self.task.num_slots, self.k)
        budget = Budget(self.budget_limit)
        assignment = Assignment()
        candidates = [
            slot for slot in self.task.slots if self.costs.cost(slot) is not None
        ]
        order = list(self._rng.permutation(len(candidates)))
        for idx in order:
            slot = candidates[idx]
            cost = self.costs.cost(slot)
            if not budget.can_afford(cost):
                continue
            offer = self.costs.offer(slot)
            ev.execute(slot, offer.reliability)
            budget.charge(cost)
            assignment.add(AssignmentRecord(self.task.task_id, slot, offer.worker_id, cost))
        return ev.quality, assignment

    def run_trials(self, trials: int = 20) -> RandomSummary:
        """Run several trials (the paper averages 20 runs)."""
        if trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {trials}")
        qualities = tuple(self.run_once()[0] for _ in range(trials))
        return RandomSummary(qualities)


@dataclass(frozen=True, slots=True)
class OptResult:
    """Outcome of the exhaustive search."""

    slots: tuple[int, ...]
    quality: float
    cost: float


class OptimalSolver:
    """``OPT``: exhaustive search over subtask subsets under the budget.

    Complexity is ``O(2^a)`` in the number of assignable slots ``a``;
    construction refuses instances with ``a`` above ``max_slots``
    (default 18) to keep runs tractable, mirroring the paper's use of
    OPT only in small-quality experiments.
    """

    def __init__(
        self,
        task: Task,
        costs: "SingleTaskCostTable",
        *,
        k: int = 3,
        budget: float,
        max_slots: int = 18,
    ):
        self.task = task
        self.costs = costs
        self.k = k
        self.budget = float(budget)
        self.counters = OpCounters()
        assignable = costs.assignable_slots
        if len(assignable) > max_slots:
            raise ConfigurationError(
                f"OPT is exhaustive; {len(assignable)} assignable slots exceed "
                f"the cap of {max_slots}"
            )
        self._assignable = assignable

    def solve(self) -> OptResult:
        """Enumerate all feasible subsets and return the best."""
        from repro.core.quality import task_quality

        best = OptResult((), 0.0, 0.0)
        slots = self._assignable
        n = len(slots)
        costs = [self.costs.cost(s) for s in slots]
        rels = [self.costs.reliability(s) for s in slots]

        # Depth-first enumeration with running cost pruning.
        chosen: list[int] = []

        def dfs(i: int, cost_so_far: float):
            nonlocal best
            if i == n:
                executed = {slots[j]: rels[j] for j in chosen}
                quality = task_quality(self.task.num_slots, self.k, executed)
                self.counters.gain_evaluations += 1
                if quality > best.quality + 1e-15 or (
                    abs(quality - best.quality) <= 1e-15
                    and cost_so_far < best.cost
                ):
                    best = OptResult(
                        tuple(sorted(slots[j] for j in chosen)), quality, cost_so_far
                    )
                return
            # Branch 1: take slot i if affordable.
            if cost_so_far + costs[i] <= self.budget + 1e-12:
                chosen.append(i)
                dfs(i + 1, cost_so_far + costs[i])
                chosen.pop()
            # Branch 2: skip slot i.
            dfs(i + 1, cost_so_far)

        dfs(0, 0.0)
        return best
