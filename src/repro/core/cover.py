"""The dual problem: minimum cost under a quality constraint.

Section IV's footnote 4 notes that "a dual version of our problem can
be minimizing the task costs with quality constraints", reducible to
the primal.  This module implements that dual directly with the
classic *submodular cover* greedy: repeatedly execute the subtask with
the best quality-increment-per-cost until the target quality is
reached.  Because the quality metric is monotone submodular (Lemma 2),
this greedy carries Wolsey's logarithmic approximation guarantee for
submodular set cover.

The solver shares all the machinery of the primal: the incremental
evaluator and, optionally, the ``Approx*`` tree index for the argmax.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.evaluator import TemporalQualityEvaluator
from repro.core.instrumentation import OpCounters
from repro.core.quality import max_quality
from repro.core.tree_index import COST_EPSILON, TreeIndex
from repro.errors import ConfigurationError, InfeasibleAssignmentError
from repro.model.assignment import Assignment, AssignmentRecord
from repro.model.task import Task

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.engine.costs import SingleTaskCostTable

__all__ = ["CoverResult", "MinCostCoverSolver"]


@dataclass(slots=True)
class CoverResult:
    """Outcome of a minimum-cost cover run."""

    assignment: Assignment
    quality: float
    target: float
    cost: float
    counters: OpCounters
    steps: list[tuple[int, float, float]] = field(default_factory=list)  # (slot, gain, cost)

    @property
    def reached(self) -> bool:
        """True iff the quality target was met."""
        return self.quality >= self.target - 1e-12


class MinCostCoverSolver:
    """Greedy submodular cover: cheapest assignment reaching a target quality."""

    def __init__(
        self,
        task: Task,
        costs: "SingleTaskCostTable",
        *,
        k: int = 3,
        target_quality: float,
        use_index: bool = True,
        ts: int = 4,
        backend: str = "python",
        counters: OpCounters | None = None,
    ):
        if target_quality < 0:
            raise ConfigurationError(f"target quality must be >= 0, got {target_quality}")
        upper = max_quality(task.num_slots)
        if target_quality > upper + 1e-12:
            raise ConfigurationError(
                f"target {target_quality:.4f} exceeds the metric maximum "
                f"log2(m) = {upper:.4f}"
            )
        self.task = task
        self.costs = costs
        self.k = k
        self.target = float(target_quality)
        self.use_index = use_index
        self.ts = ts
        self.backend = backend
        self.counters = counters if counters is not None else OpCounters()

    def solve(self) -> CoverResult:
        """Run the cover greedy.

        Raises :class:`InfeasibleAssignmentError` when even executing
        every assignable slot cannot reach the target (e.g. worker
        coverage gaps or imperfect reliabilities).
        """
        ev = TemporalQualityEvaluator(
            self.task.num_slots, self.k, counters=self.counters, backend=self.backend
        )
        index = (
            TreeIndex(ev, self.costs, ts=self.ts, counters=self.counters)
            if self.use_index
            else None
        )
        assignment = Assignment()
        steps: list[tuple[int, float, float]] = []
        total_cost = 0.0

        while ev.quality < self.target - 1e-12:
            best = self._find_best(ev, index)
            if best is None:
                raise InfeasibleAssignmentError(
                    f"quality target {self.target:.4f} unreachable: stalled at "
                    f"{ev.quality:.4f} after {len(steps)} executions"
                )
            slot, gain, cost = best
            window = ev.affected_window(slot)
            ev.execute(slot, self.costs.reliability(slot))
            if index is not None:
                index.refresh_range(*window)
            offer = self.costs.offer(slot)
            assignment.add(AssignmentRecord(self.task.task_id, slot, offer.worker_id, cost))
            steps.append((slot, gain, cost))
            total_cost += cost
            self.counters.iterations += 1

        return CoverResult(
            assignment=assignment,
            quality=ev.quality,
            target=self.target,
            cost=total_cost,
            counters=self.counters,
            steps=steps,
        )

    def _find_best(self, ev, index):
        if index is not None:
            best = index.find_best(float("inf"))
            if best is None:
                return None
            return best.slot, best.gain, best.cost
        best = None
        for slot in self.task.slots:
            if ev.is_executed(slot):
                continue
            cost = self.costs.cost(slot)
            if cost is None:
                continue
            gain = ev.gain_if_executed(slot, self.costs.reliability(slot))
            if gain <= 0.0:
                continue
            heuristic = gain / max(cost, COST_EPSILON)
            if best is None or heuristic > best[3] or (
                heuristic == best[3] and slot < best[0]
            ):
                best = (slot, gain, cost, heuristic)
        if best is None:
            return None
        return best[0], best[1], best[2]
