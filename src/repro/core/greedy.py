"""Single-task assignment solvers (Section III).

Three solvers share the budgeted-greedy skeleton of Algorithm 1 —
repeatedly execute the subtask maximizing ``quality increment / cost``
until the budget is exhausted, and return the better of that stream and
the best single affordable subtask (lines 3 and 10), which yields the
``(1 - 1/sqrt(e))`` approximation of Krause & Guestrin:

* :class:`SingleTaskGreedy` with ``strategy="full"`` — the paper's
  ``Approx``: every candidate's heuristic value recomputes the
  probability of all ``m`` slots (``O(m^3 log m)`` overall).
* :class:`SingleTaskGreedy` with ``strategy="local"`` — an ablation
  between the two: candidate gains only re-evaluate the affected k-NN
  window, but the argmax still enumerates every candidate.
* :class:`IndexedSingleTaskGreedy` — the paper's ``Approx*``: the
  tree-structured approximate order-k Voronoi index finds the argmax
  by best-first search with upper-bound pruning.

All three produce *identical assignments* (the index's bounds are
sound and ties break identically); the test suite enforces this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

from repro.core.evaluator import TemporalQualityEvaluator
from repro.core.instrumentation import OpCounters
from repro.core.quality import entropy_term
from typing import TYPE_CHECKING

from repro.core.tree_index import COST_EPSILON, TreeIndex
from repro.errors import ConfigurationError
from repro.util.heaps import LazyMaxHeap

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.engine.costs import SingleTaskCostTable
from repro.model.assignment import Assignment, AssignmentRecord, Budget
from repro.model.task import Task

__all__ = [
    "GreedyStep",
    "SolverResult",
    "SingleTaskGreedy",
    "IndexedSingleTaskGreedy",
    "single_slot_quality",
    "single_slot_quality_table",
]


@dataclass(frozen=True, slots=True)
class GreedyStep:
    """One committed greedy iteration (for traceability and tests)."""

    slot: int
    gain: float
    cost: float
    heuristic: float


@dataclass(slots=True)
class SolverResult:
    """Outcome of one solver run."""

    assignment: Assignment
    quality: float
    spent: float
    counters: OpCounters
    steps: list[GreedyStep] = field(default_factory=list)
    #: Certified lower bound on ``quality / OPT`` (``repro.degrade``):
    #: 1.0 for exact solves; degraded solves report the ratio against
    #: the gain-envelope upper bound on any feasible plan.
    certificate: float = 1.0

    @property
    def executed_slots(self) -> list[int]:
        """Sorted executed slots of the (single) task."""
        return sorted(step.slot for step in self.steps)


def single_slot_quality(m: int, k: int, slot: int, reliability: float = 1.0) -> float:
    """Closed-form ``q({slot})``: quality when only one slot executes.

    With a single executed slot ``h``, every other slot ``u`` has
    exactly one neighbour at distance ``|u - h|``, so
    ``p(u) = lambda (m - |u-h|) / (k m^2)`` and the task quality is a
    sum of entropy terms over the two distance runs left and right of
    ``h``.
    """
    if not 1 <= slot <= m:
        raise ConfigurationError(f"slot {slot} outside 1..{m}")
    total = entropy_term(reliability / m)
    for d in range(1, slot):
        total += entropy_term(reliability * (m - d) / (k * m * m))
    for d in range(1, m - slot + 1):
        total += entropy_term(reliability * (m - d) / (k * m * m))
    return total


@lru_cache(maxsize=1024)
def _single_slot_quality_table_cached(
    m: int, k: int, reliability: float
) -> tuple[float, ...]:
    """Cached body of :func:`single_slot_quality_table`.

    Serving layers solve many tasks of the same shape back to back
    (batch rounds, streaming epochs), so the ``(m, k, reliability)``
    key amortizes the O(m) entropy prefix scan across all of them.
    """
    prefix = [0.0] * m  # prefix[t] = G(t) for t in 0..m-1
    for d in range(1, m):
        prefix[d] = prefix[d - 1] + entropy_term(reliability * (m - d) / (k * m * m))
    base = entropy_term(reliability / m)
    table = [0.0] * (m + 1)
    for h in range(1, m + 1):
        table[h] = base + prefix[h - 1] + prefix[m - h]
    return tuple(table)


def single_slot_quality_table(m: int, k: int, reliability: float = 1.0) -> list[float]:
    """``q({h})`` for every ``h`` in ``1..m`` in ``O(m)`` total.

    Uses the prefix-sum identity
    ``q({h}) = phi(lambda/m) + G(h-1) + G(m-h)`` with
    ``G(t) = sum_{d=1..t} phi(lambda (m-d) / (k m^2))``.  Index 0 of the
    returned list is unused (slots are 1-based).  Results are cached
    per ``(m, k, reliability)``; callers get a fresh list copy.
    """
    return list(_single_slot_quality_table_cached(m, k, reliability))


class _GreedyBase:
    """Shared skeleton: line 3 (best single), the stream, the final max."""

    def __init__(
        self,
        task: Task,
        costs: "SingleTaskCostTable",
        *,
        k: int = 3,
        budget: float,
        backend: str = "python",
        counters: OpCounters | None = None,
    ):
        self.task = task
        self.costs = costs
        self.k = k
        self.budget_limit = float(budget)
        self.backend = backend
        self.counters = counters if counters is not None else OpCounters()
        # Degradation state (exact solvers leave all three untouched):
        # a marginal-gain floor relative to the first committed gain, a
        # bounded candidate set, and the final-state evaluator kept for
        # certificate computation.
        self.gain_floor: float | None = None
        self._allowed: set[int] | None = None
        self._last_ev: TemporalQualityEvaluator | None = None

    # -- line 3: the best single affordable subtask --------------------
    def _best_single(self) -> tuple[int, float] | None:
        """``(slot, q({slot}))`` of the best affordable single subtask."""
        m = self.task.num_slots
        best: tuple[float, int] | None = None
        tables: dict[float, list[float]] = {}
        for slot in self.task.slots:
            if self._allowed is not None and slot not in self._allowed:
                continue
            cost = self.costs.cost(slot)
            if cost is None or cost > self.budget_limit + 1e-12:
                continue
            lam = self.costs.reliability(slot)
            table = tables.get(lam)
            if table is None:
                table = single_slot_quality_table(m, self.k, lam)
                tables[lam] = table
            quality = table[slot]
            if best is None or quality > best[0] or (quality == best[0] and slot < best[1]):
                best = (quality, slot)
        if best is None:
            return None
        return best[1], best[0]

    # -- the solve driver ----------------------------------------------
    def solve(self) -> SolverResult:
        """Run Algorithm 1 and return the better of stream and single."""
        single = self._best_single()
        stream = self._solve_stream()
        if single is not None and single[1] > stream.quality:
            slot, quality = single
            offer = self.costs.offer(slot)
            assignment = Assignment()
            assignment.add(AssignmentRecord(self.task.task_id, slot, offer.worker_id, offer.cost))
            heur = quality / max(offer.cost, COST_EPSILON)
            result = SolverResult(
                assignment=assignment,
                quality=quality,
                spent=offer.cost,
                counters=self.counters,
                steps=[GreedyStep(slot, quality, offer.cost, heur)],
            )
        else:
            result = stream
        certificate = self._certify(result)
        if certificate is not None:
            result.certificate = certificate
        return result

    def _solve_stream(self) -> SolverResult:
        ev = TemporalQualityEvaluator(
            self.task.num_slots, self.k, counters=self.counters, backend=self.backend
        )
        self._last_ev = ev
        budget = Budget(self.budget_limit)
        assignment = Assignment()
        steps: list[GreedyStep] = []
        first_gain: float | None = None
        self._prepare(ev)
        while True:
            best = self._find_best(ev, budget.remaining)
            if best is None:
                break
            slot, gain, cost, heuristic = best
            if (
                self.gain_floor is not None
                and first_gain is not None
                and gain < self.gain_floor * first_gain
            ):
                # Quality-floor early termination: marginal gains are
                # non-increasing under the approx premises, so nothing
                # later can clear the floor either.  Relative to the
                # first committed gain, so the floor never blocks the
                # opening step.
                break
            window = ev.affected_window(slot)
            ev.execute(slot, self.costs.reliability(slot))
            budget.charge(cost)
            offer = self.costs.offer(slot)
            assignment.add(AssignmentRecord(self.task.task_id, slot, offer.worker_id, cost))
            steps.append(GreedyStep(slot, gain, cost, heuristic))
            if first_gain is None:
                first_gain = gain
            self.counters.iterations += 1
            self._after_execute(window)
        return SolverResult(
            assignment=assignment,
            quality=ev.quality,
            spent=budget.spent,
            counters=self.counters,
            steps=steps,
        )

    def _certify(self, result: SolverResult) -> float | None:
        """Certified quality ratio, or ``None`` for exact solves."""
        return None

    # -- hooks implemented by the variants ------------------------------
    def _prepare(self, ev: TemporalQualityEvaluator) -> None:
        raise NotImplementedError

    def _find_best(self, ev, remaining: float):
        raise NotImplementedError

    def _after_execute(self, window: tuple[int, int]) -> None:
        raise NotImplementedError


class SingleTaskGreedy(_GreedyBase):
    """Algorithm 1 (``Approx``) with enumerated or lazy candidate search.

    ``strategy="full"`` recomputes every slot per candidate (the
    paper's naive complexity); ``strategy="local"`` re-evaluates only
    the affected k-NN window (ablation).

    ``search="enumerate"`` re-scores every candidate each greedy round
    (the seed behaviour); ``search="lazy"`` runs a CELF-style lazy
    argmax over a max-heap of stale heuristic values.  Because the
    quality metric is submodular and non-decreasing (Lemma 2) and
    single-task costs are static, a candidate's heuristic only ever
    shrinks, so a stale heap priority is a sound upper bound: pop the
    stale maximum, re-score it exactly, and commit once no stale bound
    can beat the best exact value seen — ties resolved by re-scoring
    every tied entry so the smallest-index winner matches the
    enumerated argmax exactly.  Plans are identical by construction;
    only ``gain_evaluations`` drops (to near O(1) per round).

    The lazy-bound argument needs two premises.  Costs must be static
    (the heap caches them), which cost providers assert via a
    ``static_costs`` attribute.  And gains must never increase, which
    holds for unit-reliability workers; with heterogeneous
    reliabilities a close low-reliability execution can *evict* a far
    high-reliability neighbour, lowering a slot's probability into a
    steeper region of phi where a later candidate's marginal gain
    grows.  If either premise fails the solver silently falls back to
    enumeration, preserving plan identity over raw speed.
    """

    def __init__(
        self,
        task,
        costs,
        *,
        k=3,
        budget,
        strategy="full",
        search="enumerate",
        backend="python",
        counters=None,
        top_c=None,
        gain_floor=None,
    ):
        super().__init__(
            task, costs, k=k, budget=budget, backend=backend, counters=counters
        )
        if strategy not in ("full", "local"):
            raise ConfigurationError(f"unknown strategy {strategy!r}")
        if search not in ("enumerate", "lazy"):
            raise ConfigurationError(f"unknown search {search!r}")
        if top_c is not None and top_c < 1:
            raise ConfigurationError(f"top_c must be >= 1, got {top_c}")
        if gain_floor is not None and not 0.0 < gain_floor <= 1.0:
            raise ConfigurationError(
                f"gain_floor must be in (0, 1], got {gain_floor}"
            )
        self.strategy = strategy
        self.search = search
        self._ev: TemporalQualityEvaluator | None = None
        self._heap: LazyMaxHeap | None = None
        # Degradation modes (``repro.degrade``) are only *certifiable*
        # under the same premises as CELF lazy search: static costs and
        # unit reliabilities keep marginal gains exact and
        # non-increasing at any later state, which both the envelope
        # bound and the floor's early-exit argument rely on.  If either
        # premise fails, fall back to the exact solver (the
        # heterogeneous-reliability fallback rule from DESIGN §5) —
        # correctness over speed, certificate 1.0.
        self.degraded = False
        if top_c is not None or gain_floor is not None:
            certifiable = getattr(self.costs, "static_costs", False) and all(
                self.costs.reliability(slot) == 1.0
                for slot in self.task.slots
                if self.costs.cost(slot) is not None
            )
            if certifiable:
                self.degraded = True
                self.gain_floor = gain_floor
                if top_c is not None:
                    self._allowed = self._rank_top_c(top_c)

    def _rank_top_c(self, c: int) -> set[int]:
        """The ``c`` assignable slots with the best single-slot quality.

        Ranked by the cached :func:`single_slot_quality_table` (value
        descending, ties to the smaller slot) — the same table line 3
        already consults, so the ranking costs nothing new.
        """
        m = self.task.num_slots
        tables: dict[float, list[float]] = {}
        ranked: list[tuple[float, int]] = []
        for slot in self.task.slots:
            if self.costs.cost(slot) is None:
                continue
            lam = self.costs.reliability(slot)
            table = tables.get(lam)
            if table is None:
                table = single_slot_quality_table(m, self.k, lam)
                tables[lam] = table
            ranked.append((-table[slot], slot))
        ranked.sort()
        return {slot for _, slot in ranked[:c]}

    def _prepare(self, ev):
        self._ev = ev
        self._heap = None
        self._assignable = 0
        self._lazy_sound = False
        if self.search == "lazy":
            # Both lazy premises are checked up front; either failing
            # falls back to enumeration so plans stay identical:
            # (1) costs must declare themselves static (the heap
            # caches first-round costs, so a dynamic provider like the
            # streaming WindowedCosts/DynamicCostProvider would
            # silently diverge from the enumerated plan);
            # (2) reliabilities must be unit, else gains are not
            # guaranteed non-increasing and stale bounds are unsound.
            self._lazy_sound = getattr(self.costs, "static_costs", False) and all(
                self.costs.reliability(slot) == 1.0
                for slot in self.task.slots
                if self.costs.cost(slot) is not None
            )

    def _gain(self, ev, slot, reliability):
        if self.strategy == "full":
            return ev.gain_full_rescan(slot, reliability)
        return ev.gain_if_executed(slot, reliability)

    def _find_best(self, ev, remaining):
        if self.search == "lazy" and self._lazy_sound:
            return self._find_best_lazy(ev, remaining)
        best: tuple[int, float, float, float] | None = None
        candidates = 0
        for slot in self.task.slots:
            if self._allowed is not None and slot not in self._allowed:
                continue
            if ev.is_executed(slot):
                continue
            cost = self.costs.cost(slot)
            if cost is None:
                continue
            candidates += 1
            if cost > remaining + 1e-12:
                continue
            lam = self.costs.reliability(slot)
            gain = self._gain(ev, slot, lam)
            if gain <= 0.0:
                continue
            heuristic = gain / max(cost, COST_EPSILON)
            if best is None or heuristic > best[3] or (
                heuristic == best[3] and slot < best[0]
            ):
                best = (slot, gain, cost, heuristic)
        self.counters.candidates_total += candidates
        return best

    def _find_best_lazy(self, ev, remaining):
        heap = self._heap
        if heap is None:
            heap = self._heap = LazyMaxHeap()
            for slot in self.task.slots:
                if self._allowed is not None and slot not in self._allowed:
                    continue
                cost = self.costs.cost(slot)
                if cost is not None:
                    # Infinite bound forces one exact scoring pass on
                    # the first round, matching the enumerated search.
                    heap.push(math.inf, slot, cost)
            self._assignable = len(heap)
        # Count what the enumerated argmax would have evaluated this
        # round — every unexecuted assignable slot, including ones the
        # heap has permanently dropped — so candidates_total (and the
        # pruning ratio) stays comparable across search modes.
        candidates = self._assignable - ev.executed_count
        self.counters.candidates_total += candidates
        evaluated = 0
        best: tuple[int, float, float, float] | None = None
        buffered: list[tuple[int, float, float, float]] = []
        while True:
            popped = heap.pop()
            if popped is None:
                break
            priority, slot, cost = popped
            if best is not None and priority < best[3]:
                # Every remaining stale bound is below the incumbent's
                # exact value; the incumbent is the argmax.
                heap.push(priority, slot, cost)
                break
            # Costs are static and the budget only shrinks, so an
            # unaffordable candidate never becomes affordable: drop it
            # permanently.  Likewise a non-positive gain stays
            # non-positive under submodularity.
            if cost > remaining + 1e-12:
                continue
            gain = self._gain(ev, slot, self.costs.reliability(slot))
            evaluated += 1
            if gain <= 0.0:
                continue
            heuristic = gain / max(cost, COST_EPSILON)
            entry = (slot, gain, cost, heuristic)
            if best is None or heuristic > best[3] or (
                heuristic == best[3] and slot < best[0]
            ):
                if best is not None:
                    buffered.append(best)
                best = entry
            else:
                buffered.append(entry)
        for slot, _, cost, heuristic in buffered:
            heap.push(heuristic, slot, cost)
        self.counters.candidates_pruned += max(candidates - evaluated, 0)
        return best

    def _certify(self, result):
        """``Q(approx) / Q_bound`` from the final gain envelope.

        Submodularity gives ``f(T) <= f(S) + sum gain(e|S)`` over
        ``T \\ S`` for the degraded final set ``S`` and *any* feasible
        ``T``; the sum is bounded by the fractional knapsack over every
        still-assignable slot's exact marginal gain at ``S`` (allowed
        or not — competing plans are unrestricted), charged against the
        full budget.  ``Q_bound >= OPT`` covers the best-single branch
        too, so the ratio certifies whichever branch :meth:`solve`
        returned.
        """
        if not self.degraded:
            return None
        from repro.degrade.certify import gain_envelope_bound

        ev = self._last_ev
        gains_costs: list[tuple[float, float]] = []
        for slot in self.task.slots:
            if ev.is_executed(slot):
                continue
            cost = self.costs.cost(slot)
            if cost is None:
                continue
            gain = ev.gain_if_executed(slot, self.costs.reliability(slot))
            gains_costs.append((gain, cost))
        bound = ev.quality + gain_envelope_bound(gains_costs, self.budget_limit)
        if bound <= 0.0:
            return 1.0
        return min(1.0, result.quality / bound)

    def _after_execute(self, window):
        pass


class IndexedSingleTaskGreedy(_GreedyBase):
    """``Approx*``: Algorithm 1 driven by the tree index (Section III-C)."""

    def __init__(self, task, costs, *, k=3, budget, ts=4, backend="python", counters=None):
        super().__init__(
            task, costs, k=k, budget=budget, backend=backend, counters=counters
        )
        self.ts = ts
        self._index: TreeIndex | None = None

    def _prepare(self, ev):
        self._index = TreeIndex(ev, self.costs, ts=self.ts, counters=self.counters)

    def _find_best(self, ev, remaining):
        best = self._index.find_best(remaining)
        if best is None:
            return None
        return (best.slot, best.gain, best.cost, best.heuristic)

    def _after_execute(self, window):
        self._index.refresh_range(*window)
