"""Single-task assignment solvers (Section III).

Three solvers share the budgeted-greedy skeleton of Algorithm 1 —
repeatedly execute the subtask maximizing ``quality increment / cost``
until the budget is exhausted, and return the better of that stream and
the best single affordable subtask (lines 3 and 10), which yields the
``(1 - 1/sqrt(e))`` approximation of Krause & Guestrin:

* :class:`SingleTaskGreedy` with ``strategy="full"`` — the paper's
  ``Approx``: every candidate's heuristic value recomputes the
  probability of all ``m`` slots (``O(m^3 log m)`` overall).
* :class:`SingleTaskGreedy` with ``strategy="local"`` — an ablation
  between the two: candidate gains only re-evaluate the affected k-NN
  window, but the argmax still enumerates every candidate.
* :class:`IndexedSingleTaskGreedy` — the paper's ``Approx*``: the
  tree-structured approximate order-k Voronoi index finds the argmax
  by best-first search with upper-bound pruning.

All three produce *identical assignments* (the index's bounds are
sound and ties break identically); the test suite enforces this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.evaluator import TemporalQualityEvaluator
from repro.core.instrumentation import OpCounters
from repro.core.quality import entropy_term
from typing import TYPE_CHECKING

from repro.core.tree_index import COST_EPSILON, TreeIndex
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.engine.costs import SingleTaskCostTable
from repro.model.assignment import Assignment, AssignmentRecord, Budget
from repro.model.task import Task

__all__ = [
    "GreedyStep",
    "SolverResult",
    "SingleTaskGreedy",
    "IndexedSingleTaskGreedy",
    "single_slot_quality",
    "single_slot_quality_table",
]


@dataclass(frozen=True, slots=True)
class GreedyStep:
    """One committed greedy iteration (for traceability and tests)."""

    slot: int
    gain: float
    cost: float
    heuristic: float


@dataclass(slots=True)
class SolverResult:
    """Outcome of one solver run."""

    assignment: Assignment
    quality: float
    spent: float
    counters: OpCounters
    steps: list[GreedyStep] = field(default_factory=list)

    @property
    def executed_slots(self) -> list[int]:
        """Sorted executed slots of the (single) task."""
        return sorted(step.slot for step in self.steps)


def single_slot_quality(m: int, k: int, slot: int, reliability: float = 1.0) -> float:
    """Closed-form ``q({slot})``: quality when only one slot executes.

    With a single executed slot ``h``, every other slot ``u`` has
    exactly one neighbour at distance ``|u - h|``, so
    ``p(u) = lambda (m - |u-h|) / (k m^2)`` and the task quality is a
    sum of entropy terms over the two distance runs left and right of
    ``h``.
    """
    if not 1 <= slot <= m:
        raise ConfigurationError(f"slot {slot} outside 1..{m}")
    total = entropy_term(reliability / m)
    for d in range(1, slot):
        total += entropy_term(reliability * (m - d) / (k * m * m))
    for d in range(1, m - slot + 1):
        total += entropy_term(reliability * (m - d) / (k * m * m))
    return total


def single_slot_quality_table(m: int, k: int, reliability: float = 1.0) -> list[float]:
    """``q({h})`` for every ``h`` in ``1..m`` in ``O(m)`` total.

    Uses the prefix-sum identity
    ``q({h}) = phi(lambda/m) + G(h-1) + G(m-h)`` with
    ``G(t) = sum_{d=1..t} phi(lambda (m-d) / (k m^2))``.  Index 0 of the
    returned list is unused (slots are 1-based).
    """
    prefix = [0.0] * m  # prefix[t] = G(t) for t in 0..m-1
    for d in range(1, m):
        prefix[d] = prefix[d - 1] + entropy_term(reliability * (m - d) / (k * m * m))
    base = entropy_term(reliability / m)
    table = [0.0] * (m + 1)
    for h in range(1, m + 1):
        table[h] = base + prefix[h - 1] + prefix[m - h]
    return table


class _GreedyBase:
    """Shared skeleton: line 3 (best single), the stream, the final max."""

    def __init__(
        self,
        task: Task,
        costs: "SingleTaskCostTable",
        *,
        k: int = 3,
        budget: float,
        counters: OpCounters | None = None,
    ):
        self.task = task
        self.costs = costs
        self.k = k
        self.budget_limit = float(budget)
        self.counters = counters if counters is not None else OpCounters()

    # -- line 3: the best single affordable subtask --------------------
    def _best_single(self) -> tuple[int, float] | None:
        """``(slot, q({slot}))`` of the best affordable single subtask."""
        m = self.task.num_slots
        best: tuple[float, int] | None = None
        tables: dict[float, list[float]] = {}
        for slot in self.task.slots:
            cost = self.costs.cost(slot)
            if cost is None or cost > self.budget_limit + 1e-12:
                continue
            lam = self.costs.reliability(slot)
            table = tables.get(lam)
            if table is None:
                table = single_slot_quality_table(m, self.k, lam)
                tables[lam] = table
            quality = table[slot]
            if best is None or quality > best[0] or (quality == best[0] and slot < best[1]):
                best = (quality, slot)
        if best is None:
            return None
        return best[1], best[0]

    # -- the solve driver ----------------------------------------------
    def solve(self) -> SolverResult:
        """Run Algorithm 1 and return the better of stream and single."""
        single = self._best_single()
        stream = self._solve_stream()
        if single is not None and single[1] > stream.quality:
            slot, quality = single
            offer = self.costs.offer(slot)
            assignment = Assignment()
            assignment.add(AssignmentRecord(self.task.task_id, slot, offer.worker_id, offer.cost))
            heur = quality / max(offer.cost, COST_EPSILON)
            return SolverResult(
                assignment=assignment,
                quality=quality,
                spent=offer.cost,
                counters=self.counters,
                steps=[GreedyStep(slot, quality, offer.cost, heur)],
            )
        return stream

    def _solve_stream(self) -> SolverResult:
        ev = TemporalQualityEvaluator(self.task.num_slots, self.k, counters=self.counters)
        budget = Budget(self.budget_limit)
        assignment = Assignment()
        steps: list[GreedyStep] = []
        self._prepare(ev)
        while True:
            best = self._find_best(ev, budget.remaining)
            if best is None:
                break
            slot, gain, cost, heuristic = best
            window = ev.affected_window(slot)
            ev.execute(slot, self.costs.reliability(slot))
            budget.charge(cost)
            offer = self.costs.offer(slot)
            assignment.add(AssignmentRecord(self.task.task_id, slot, offer.worker_id, cost))
            steps.append(GreedyStep(slot, gain, cost, heuristic))
            self.counters.iterations += 1
            self._after_execute(window)
        return SolverResult(
            assignment=assignment,
            quality=ev.quality,
            spent=budget.spent,
            counters=self.counters,
            steps=steps,
        )

    # -- hooks implemented by the variants ------------------------------
    def _prepare(self, ev: TemporalQualityEvaluator) -> None:
        raise NotImplementedError

    def _find_best(self, ev, remaining: float):
        raise NotImplementedError

    def _after_execute(self, window: tuple[int, int]) -> None:
        raise NotImplementedError


class SingleTaskGreedy(_GreedyBase):
    """Algorithm 1 (``Approx``) with enumerated candidate search.

    ``strategy="full"`` recomputes every slot per candidate (the
    paper's naive complexity); ``strategy="local"`` re-evaluates only
    the affected k-NN window (ablation).
    """

    def __init__(self, task, costs, *, k=3, budget, strategy="full", counters=None):
        super().__init__(task, costs, k=k, budget=budget, counters=counters)
        if strategy not in ("full", "local"):
            raise ConfigurationError(f"unknown strategy {strategy!r}")
        self.strategy = strategy
        self._ev: TemporalQualityEvaluator | None = None

    def _prepare(self, ev):
        self._ev = ev

    def _find_best(self, ev, remaining):
        best: tuple[int, float, float, float] | None = None
        candidates = 0
        for slot in self.task.slots:
            if ev.is_executed(slot):
                continue
            cost = self.costs.cost(slot)
            if cost is None:
                continue
            candidates += 1
            if cost > remaining + 1e-12:
                continue
            lam = self.costs.reliability(slot)
            if self.strategy == "full":
                gain = ev.gain_full_rescan(slot, lam)
            else:
                gain = ev.gain_if_executed(slot, lam)
            if gain <= 0.0:
                continue
            heuristic = gain / max(cost, COST_EPSILON)
            if best is None or heuristic > best[3] or (
                heuristic == best[3] and slot < best[0]
            ):
                best = (slot, gain, cost, heuristic)
        self.counters.candidates_total += candidates
        return best

    def _after_execute(self, window):
        pass


class IndexedSingleTaskGreedy(_GreedyBase):
    """``Approx*``: Algorithm 1 driven by the tree index (Section III-C)."""

    def __init__(self, task, costs, *, k=3, budget, ts=4, counters=None):
        super().__init__(task, costs, k=k, budget=budget, counters=counters)
        self.ts = ts
        self._index: TreeIndex | None = None

    def _prepare(self, ev):
        self._index = TreeIndex(ev, self.costs, ts=self.ts, counters=self.counters)

    def _find_best(self, ev, remaining):
        best = self._index.find_best(remaining)
        if best is None:
            return None
        return (best.slot, best.gain, best.cost, best.heuristic)

    def _after_execute(self, window):
        self._index.refresh_range(*window)
