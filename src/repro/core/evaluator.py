"""Incremental single-task quality evaluation.

:class:`TemporalQualityEvaluator` maintains, for one task, the executed
slot set and the per-slot finishing probabilities, and answers the two
questions every solver asks in its inner loop:

* ``gain_if_executed(slot)`` — the quality increment of tentatively
  executing a slot (the numerator of Algorithm 1's heuristic value);
* ``execute(slot)`` — commit the execution and update state.

Two evaluation strategies are exposed, matching the paper's two
solvers:

* *Full rescan* (``gain_full_rescan``): recompute the probability of
  every slot — the naive Algorithm 1 behaviour, ``O(m (log m + k))``
  per candidate.
* *Local update* (``gain_if_executed``): only slots whose k-NN set can
  change are recomputed.  This is the "locality of k-NN searching" of
  Section III-C: executing slot ``s`` affects exactly the slots closer
  to ``s`` than to their current ``k``-th nearest executed neighbour,
  a contiguous window around ``s`` (:meth:`affected_window`).

The window derivation: for a slot ``u < s``, the executed slots
strictly closer to ``u`` than ``s`` are those in the open interval
``(2u - s, s)``.  With ``e_k`` the ``k``-th executed slot below ``s``
(scanning left), ``u`` keeps its k-NN set iff ``e_k > 2u - s``, i.e.
``u < (e_k + s) / 2``.  Hence the affected window's left edge is
``ceil((e_k + s) / 2)`` (or 1 when fewer than ``k`` executed slots lie
below ``s``), and symmetrically the right edge is
``floor((f_k + s) / 2)`` with ``f_k`` the ``k``-th executed slot above.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.instrumentation import OpCounters
from repro.core.quality import entropy_term
from repro.errors import ConfigurationError
from repro.util.sorted_slots import SortedSlots

__all__ = ["EVALUATOR_BACKENDS", "SlotChange", "TemporalQualityEvaluator"]


@dataclass(frozen=True, slots=True)
class SlotChange:
    """One slot whose finishing probability changed during an update."""

    slot: int
    old_p: float
    new_p: float

    @property
    def quality_delta(self) -> float:
        """Change in the slot's quality contribution phi(p)."""
        return entropy_term(self.new_p) - entropy_term(self.old_p)


EVALUATOR_BACKENDS = ("python", "numpy")


class TemporalQualityEvaluator:
    """Incremental quality bookkeeping for a single task.

    Slots are 1-based local indices ``1..m``.  The evaluator starts
    with no executed slots (quality 0) and is mutated exclusively via
    :meth:`execute`.

    ``backend`` selects the evaluation strategy: ``"python"`` (the
    default) is the scalar reference implementation and determinism
    oracle; ``"numpy"`` evaluates whole affected windows in one
    vectorized pass through :mod:`repro.core.kernels`.  Both expose
    the same API, agree on every probability to float round-off, and
    increment the :class:`OpCounters` identically for equivalent
    logical work, so solvers produce identical plans on either.
    """

    def __init__(
        self,
        m: int,
        k: int,
        *,
        counters: OpCounters | None = None,
        backend: str = "python",
    ):
        if m < 3:
            raise ConfigurationError(f"m must be >= 3, got {m}")
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if backend not in EVALUATOR_BACKENDS:
            raise ConfigurationError(
                f"unknown backend {backend!r}; choose one of {EVALUATOR_BACKENDS}"
            )
        self.m = m
        self.k = k
        self.backend = backend
        self.counters = counters if counters is not None else OpCounters()
        self._executed = SortedSlots()
        self._reliability: dict[int, float] = {}
        # _p[j] for j in 1..m (index 0 unused).
        self._p = [0.0] * (m + 1)
        self._quality = 0.0
        self._kernel = None
        if backend == "numpy":
            from repro.core.kernels import get_kernel

            self._kernel = get_kernel(m, k)
            self._p = np.zeros(m + 1, dtype=np.float64)
            self._phi = np.zeros(m + 1, dtype=np.float64)
            self._totals = np.zeros(m + 1, dtype=np.float64)
            self._dfar = np.full(m + 1, self._kernel.NO_KTH, dtype=np.int64)
            self._efar = np.zeros(m + 1, dtype=np.int64)
            self._lamfar = np.zeros(m + 1, dtype=np.float64)
            self._exec_mask = np.zeros(m + 1, dtype=bool)
            self._exec_arr = np.empty(0, dtype=np.int64)
            self._exec_lam = np.empty(0, dtype=np.float64)
            self._all_unit = True

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def quality(self) -> float:
        """Current task quality q(tau) (Eq. 1)."""
        return self._quality

    @property
    def executed_slots(self) -> list[int]:
        """Sorted executed slot indices."""
        return self._executed.as_list()

    @property
    def executed_count(self) -> int:
        """Number of executed slots."""
        return len(self._executed)

    def is_executed(self, slot: int) -> bool:
        """True iff ``slot`` has been executed."""
        return slot in self._executed

    def p(self, slot: int) -> float:
        """Current finishing probability of ``slot``."""
        self._check_slot(slot)
        return float(self._p[slot])

    def rho_err(self, slot: int) -> float:
        """Current interpolation error ratio of ``slot`` (Eq. 3/5).

        For executed slots the ratio is 0 by definition.
        """
        self._check_slot(slot)
        if slot in self._executed:
            return 0.0
        neighbors = self._neighbors_of(slot)
        weighted = sum(self._reliability[e] * abs(e - slot) for e in neighbors)
        weighted += (self.k - len(neighbors)) * self.m
        return weighted / (self.k * self.m)

    def kth_nn_distance(self, slot: int) -> int:
        """Distance to the ``k``-th nearest executed slot (``m`` if fewer)."""
        self._check_slot(slot)
        neighbors = self._executed.k_nearest(slot, self.k, exclude=slot)
        if len(neighbors) < self.k:
            return self.m
        return abs(neighbors[-1] - slot)

    def farthest_neighbor(self, slot: int) -> tuple[int, float] | None:
        """``(distance, reliability)`` of the ``k``-th nearest executed
        neighbour of ``slot``, or ``None`` if fewer than ``k`` exist.

        Used by the tree index to tighten the Eq.-6 upper bound: a
        tentative execution can evict at most this neighbour from the
        slot's k-NN set.
        """
        self._check_slot(slot)
        neighbors = self._executed.k_nearest(slot, self.k, exclude=slot)
        if len(neighbors) < self.k:
            return None
        e = neighbors[-1]
        return abs(e - slot), self._reliability[e]

    def knn_of(self, slot: int) -> list[int]:
        """The current ``SkNN`` set of ``slot`` (executed neighbours,
        nearest first, ties toward the smaller index)."""
        self._check_slot(slot)
        return self._neighbors_of(slot)

    # ------------------------------------------------------------------
    # Affected window
    # ------------------------------------------------------------------
    def affected_window(self, slot: int) -> tuple[int, int]:
        """Closed interval of slots whose k-NN set may change if
        ``slot`` is executed (always contains ``slot`` itself)."""
        self._check_slot(slot)
        e_k = self._executed.kth_left(slot, self.k)
        f_k = self._executed.kth_right(slot, self.k)
        lo = 1 if e_k is None else max(1, (e_k + slot + 1) // 2)  # ceil
        hi = self.m if f_k is None else min(self.m, (f_k + slot) // 2)  # floor
        return lo, hi

    # ------------------------------------------------------------------
    # Gains
    # ------------------------------------------------------------------
    def gain_if_executed(self, slot: int, reliability: float = 1.0) -> float:
        """Quality increment of tentatively executing ``slot``.

        Uses the local-update strategy: only slots inside
        :meth:`affected_window` are re-evaluated.
        """
        lo, hi = self.affected_window(slot)
        return self._gain_over_range(slot, reliability, lo, hi)

    def gain_full_rescan(self, slot: int, reliability: float = 1.0) -> float:
        """Quality increment computed the naive way (Algorithm 1):
        every slot's probability is recomputed."""
        return self._gain_over_range(slot, reliability, 1, self.m)

    def _gain_over_range(self, slot: int, reliability: float, lo: int, hi: int) -> float:
        self._check_slot(slot)
        self._check_reliability(reliability)
        if slot in self._executed:
            raise ConfigurationError(f"slot {slot} already executed")
        if self._kernel is not None:
            return self._gain_over_range_numpy(slot, reliability, lo, hi)
        self.counters.gain_evaluations += 1
        delta = entropy_term(reliability / self.m) - entropy_term(self._p[slot])
        self.counters.slot_evaluations += 1
        for u in range(lo, hi + 1):
            if u == slot or u in self._executed:
                continue
            new_p = self._p_with_extra(u, slot, reliability)
            self.counters.slot_evaluations += 1
            delta += entropy_term(new_p) - entropy_term(self._p[u])
        return delta

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def execute(self, slot: int, reliability: float = 1.0) -> list[SlotChange]:
        """Execute ``slot`` and return every slot whose probability
        changed (including ``slot`` itself)."""
        self._check_slot(slot)
        self._check_reliability(reliability)
        if slot in self._executed:
            raise ConfigurationError(f"slot {slot} already executed")
        if self._kernel is not None:
            return self._execute_numpy(slot, reliability)
        lo, hi = self.affected_window(slot)
        changes: list[SlotChange] = []

        old_p = self._p[slot]
        new_p = reliability / self.m
        self._executed.add(slot)
        self._reliability[slot] = reliability
        self._apply_change(slot, old_p, new_p, changes)

        for u in range(lo, hi + 1):
            if u == slot or u in self._executed:
                continue
            recomputed = self._p_of(u)
            self.counters.slot_evaluations += 1
            if recomputed != self._p[u]:
                self._apply_change(u, self._p[u], recomputed, changes)
        return changes

    # ------------------------------------------------------------------
    # NumPy backend (vectorized window passes via repro.core.kernels)
    # ------------------------------------------------------------------
    def _window_unexecuted(self, lo: int, hi: int, exclude: int):
        """Unexecuted slot indices in ``[lo, hi]`` minus ``exclude``."""
        u = np.arange(lo, hi + 1, dtype=np.int64)
        mask = ~self._exec_mask[lo : hi + 1]
        if lo <= exclude <= hi:
            mask[exclude - lo] = False
        return u[mask]

    def _gain_over_range_numpy(
        self, slot: int, reliability: float, lo: int, hi: int
    ) -> float:
        kernel = self._kernel
        self.counters.gain_evaluations += 1
        # The candidate's own flip, counted exactly like the scalar path.
        delta = kernel.phi_executed(reliability) - float(self._phi[slot])
        self.counters.slot_evaluations += 1
        us = self._window_unexecuted(lo, hi, slot)
        n_affected = int(us.size)
        self.counters.slot_evaluations += n_affected
        self.counters.knn_queries += n_affected
        if n_affected == 0:
            return delta
        new_totals = kernel.merge_totals(
            slot,
            reliability,
            us,
            self._totals[us],
            self._dfar[us],
            self._efar[us],
            self._lamfar[us],
        )
        unit = self._all_unit and reliability == 1.0
        new_phi = kernel.phi_of_totals(new_totals, unit=unit)
        # Accumulate in the scalar path's exact sequential order
        # (self term first, then ascending slots): cumsum is a strict
        # left-to-right reduction, unlike np.sum's pairwise one, so
        # mathematically tied candidates produce bitwise-identical
        # gains on both backends and tie-breaking stays plan-stable.
        terms = np.empty(n_affected + 1, dtype=np.float64)
        terms[0] = delta
        np.subtract(new_phi, self._phi[us], out=terms[1:])
        return float(np.cumsum(terms)[-1])

    def _execute_numpy(self, slot: int, reliability: float) -> list[SlotChange]:
        kernel = self._kernel
        lo, hi = self.affected_window(slot)
        changes: list[SlotChange] = []

        old_p = float(self._p[slot])
        new_p = reliability / self.m
        self._executed.add(slot)
        self._reliability[slot] = reliability
        if reliability != 1.0:
            self._all_unit = False
        self._exec_mask[slot] = True
        self._exec_arr = np.array(self._executed.as_list(), dtype=np.int64)
        self._exec_lam = np.array(
            [self._reliability[e] for e in self._exec_arr], dtype=np.float64
        )
        new_phi_slot = kernel.phi_executed(reliability)
        self._quality += new_phi_slot - float(self._phi[slot])
        self._p[slot] = new_p
        self._phi[slot] = new_phi_slot
        changes.append(SlotChange(slot, old_p, new_p))

        us = self._window_unexecuted(lo, hi, slot)
        n_affected = int(us.size)
        self.counters.slot_evaluations += n_affected
        self.counters.knn_queries += n_affected
        if n_affected:
            totals, dfar, efar, lamfar = kernel.batch_knn(
                self._exec_arr, self._exec_lam, us
            )
            new_p_arr = totals / kernel.denom
            new_phi = kernel.phi_of_totals(totals, unit=self._all_unit)
            old_p_arr = self._p[us]
            old_phi = self._phi[us]
            changed = new_p_arr != old_p_arr
            # Chain the deltas onto the running quality in the scalar
            # path's sequential ascending-slot order (unchanged slots
            # contribute an exact 0.0), keeping the quality bitwise
            # equal to the python backend in the unit regime — it
            # feeds exact comparisons (cover targets, best-single vs
            # stream, the MMQM weakest-task heap).
            terms = np.empty(n_affected + 1, dtype=np.float64)
            terms[0] = self._quality
            np.subtract(new_phi, old_phi, out=terms[1:])
            self._quality = float(np.cumsum(terms)[-1])
            self._totals[us] = totals
            self._dfar[us] = dfar
            self._efar[us] = efar
            self._lamfar[us] = lamfar
            self._p[us] = new_p_arr
            self._phi[us] = new_phi
            for idx in np.nonzero(changed)[0]:
                changes.append(
                    SlotChange(
                        int(us[idx]), float(old_p_arr[idx]), float(new_p_arr[idx])
                    )
                )
        return changes

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def recompute_quality(self) -> float:
        """Full recomputation of the quality from scratch (oracle)."""
        total = 0.0
        for slot in range(1, self.m + 1):
            total += entropy_term(self._p_of(slot))
        return total

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _apply_change(self, slot: int, old_p: float, new_p: float, out: list[SlotChange]):
        self._quality += entropy_term(new_p) - entropy_term(old_p)
        self._p[slot] = new_p
        out.append(SlotChange(slot, old_p, new_p))

    def _neighbors_of(self, slot: int) -> list[int]:
        self.counters.knn_queries += 1
        return self._executed.k_nearest(slot, self.k, exclude=slot)

    def _p_of(self, slot: int) -> float:
        """Probability of ``slot`` under the current executed set."""
        if slot in self._executed:
            return self._reliability[slot] / self.m
        m, k = self.m, self.k
        total = 0.0
        for e in self._neighbors_of(slot):
            total += self._reliability[e] * (m - abs(e - slot))
        return total / (k * m * m)

    def _p_with_extra(self, slot: int, extra: int, extra_reliability: float) -> float:
        """Probability of unexecuted ``slot`` if ``extra`` were executed."""
        m, k = self.m, self.k
        neighbors = self._neighbors_of(slot)
        # Merge `extra` into the k-NN list by (distance, index).
        d_extra = abs(extra - slot)
        merged: list[int] = []
        inserted = False
        for e in neighbors:
            if not inserted:
                d_e = abs(e - slot)
                if (d_extra, extra) < (d_e, e):
                    merged.append(extra)
                    inserted = True
            merged.append(e)
        if not inserted:
            merged.append(extra)
        merged = merged[:k]
        total = 0.0
        for e in merged:
            lam = extra_reliability if e == extra else self._reliability[e]
            total += lam * (m - abs(e - slot))
        return total / (k * m * m)

    def _check_slot(self, slot: int) -> None:
        if not 1 <= slot <= self.m:
            raise ConfigurationError(f"slot {slot} outside 1..{self.m}")

    def _check_reliability(self, lam: float) -> None:
        if not 0.0 <= lam <= 1.0:
            raise ConfigurationError(f"reliability out of range: {lam}")
