"""The aggregated-tree index behind ``Approx*`` (Section III-C).

The naive Algorithm 1 spends its time in two places: (i) enumerating
all ``m`` subtasks to find the one with the maximum heuristic value and
(ii) recomputing interpolation probabilities for all slots per
candidate.  The paper attacks both with a binary tree over the slot
line ``[1, m]`` that *approximates the order-k Voronoi diagram*:

* leaves are time segments of at most ``ts`` slots (the paper's
  Condition 2 — the fanout knob), or segments entirely inside one
  order-k Voronoi cell (Condition 1, checked during descent);
* every node carries aggregates from which an *upper bound* on the
  heuristic value of any slot in its segment follows;
* the maximum-heuristic slot is found by best-first search over the
  tree with a max-heap, pruning nodes whose upper bound cannot beat
  the best exact value found so far.

Upper-bound derivation (sound, hence the indexed solver provably
returns the *same* slot as the naive greedy):

Executing a slot ``s`` changes the quality by

    dq(s) = [phi(lam_s/m) - phi(p_s)]  +  sum_{u affected} gain_u(s)

Per Eq. 6, a single tentative execution can evict at most the farthest
neighbour from ``u``'s k-NN set, so ``u``'s probability rises by at
most ``((m-1) - lam_far (m - d_k(u))) / (k m^2)`` (nothing is evicted
when ``u`` has fewer than ``k`` executed neighbours); pushing that
through the entropy term gives a per-slot bound ``nbr_ub(u)``.

A slot ``u`` can only be affected when ``|u - s| <= d_k(u)``, i.e.
when ``s`` lies inside ``u``'s *influence interval*
``I_u = [u - d_k(u), u + d_k(u)]`` (the tree analogue of the paper's
per-node influence ranges).  Every unexecuted slot therefore *paints*
``nbr_ub(u)`` over ``I_u`` in a lazy range-add/range-max tree; the
painted value at position ``s`` is exactly
``sum_{u : s in I_u} nbr_ub(u)``, an upper bound on the whole
neighbour term of ``dq(s)``.  A node's bound is then::

    ub_gain(node) = max_self_gain(node) + max painted value over [l, r]
    ub_heur(node) = ub_gain(node) / max(min_cost(node), eps)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.evaluator import TemporalQualityEvaluator
from repro.core.instrumentation import OpCounters
from repro.core.quality import entropy_term
from repro.errors import ConfigurationError
from repro.util.heaps import LazyMaxHeap
from repro.util.range_tree import RangeAddMaxTree

__all__ = ["BestCandidate", "TreeIndex", "COST_EPSILON"]

#: Floor applied to costs in heuristic ratios so zero-cost subtasks get
#: a large-but-finite priority instead of dividing by zero.
COST_EPSILON = 1e-9

_NEG_INF = float("-inf")
_INF = float("inf")


@dataclass(frozen=True, slots=True)
class BestCandidate:
    """The exact winner of one best-first search."""

    slot: int
    gain: float
    cost: float
    heuristic: float


class TreeIndex:
    """Aggregated binary tree over the slot line of one task.

    The index mirrors a :class:`TemporalQualityEvaluator` and a cost
    table.  After every committed execution, call :meth:`refresh_range`
    with the evaluator's affected window so the aggregates stay
    consistent.
    """

    def __init__(
        self,
        evaluator: TemporalQualityEvaluator,
        costs,
        *,
        ts: int = 4,
        counters: OpCounters | None = None,
    ):
        """``costs`` must expose ``cost(slot) -> float | None`` and
        ``reliability(slot) -> float`` (None = unassignable slot)."""
        if ts < 1:
            raise ConfigurationError(f"ts must be >= 1, got {ts}")
        self.ev = evaluator
        self.costs = costs
        self.ts = ts
        self.m = evaluator.m
        self.counters = counters if counters is not None else evaluator.counters

        m = self.m
        # Per-slot state (index 0 unused).
        self._cost = [0.0] * (m + 1)
        self._rel = [1.0] * (m + 1)
        self._self_gain = [_NEG_INF] * (m + 1)
        self._painted: list[list[tuple[int, int, float]] | None] = [None] * (m + 1)
        for slot in range(1, m + 1):
            cost = costs.cost(slot)
            self._cost[slot] = _INF if cost is None else float(cost)
            self._rel[slot] = costs.reliability(slot) if cost is not None else 0.0

        # Influence painting: nbr_ub(u) over I_u (see module docstring).
        self._paint = RangeAddMaxTree(m)
        # Segment-tree aggregates over leaf buckets of <= ts slots.
        self._agg_self = [_NEG_INF] * (4 * (m + 1))
        self._agg_cost = [_INF] * (4 * (m + 1))
        self._agg_cand = [0] * (4 * (m + 1))
        self.node_count = 0
        for slot in range(1, m + 1):
            self._refresh_slot(slot)
        self._build(1, 1, m)
        self.counters.index_full_builds += 1

    # ------------------------------------------------------------------
    # Per-slot state
    # ------------------------------------------------------------------
    def _refresh_slot(self, slot: int) -> None:
        """Recompute per-slot derived values and repaint its influence."""
        ev = self.ev
        m, k = ev.m, ev.k

        old = self._painted[slot]
        if ev.is_executed(slot):
            self._self_gain[slot] = _NEG_INF
            self._unpaint(slot)
            return

        p = ev.p(slot)
        # Self gain: the slot flips from interpolated to executed.
        if self._cost[slot] == _INF:
            self._self_gain[slot] = _NEG_INF
        else:
            self._self_gain[slot] = entropy_term(self._rel[slot] / m) - entropy_term(p)
        # Neighbour bound (Eq. 6 generalized): executing a slot at
        # distance d from `slot` inserts a contribution of at most
        # (m - d) and evicts at most the current farthest neighbour.
        far = ev.farthest_neighbor(slot)
        if far is None:
            dk = m
            evicted = 0.0
        else:
            dk, lam_far = far
            evicted = lam_far * (m - dk)

        def gain_at(distance: int) -> float:
            delta_p = ((m - distance) - evicted) / (k * m * m)
            if delta_p <= 0.0:
                return 0.0
            p_ub = min(p + delta_p, 1.0 / m)
            return max(entropy_term(p_ub) - entropy_term(p), 0.0)

        # Distance-banded painting: band (a, b] is bounded by the gain
        # at its inner edge a+1.  Geometric doubling keeps the band
        # count at O(log d_k) while staying tight near the slot, where
        # the true gain is largest.
        segments: list[tuple[int, int, float]] = []
        a = 0
        width = 1
        while a < dk:
            b = min(a + width, dk)
            value = gain_at(a + 1)
            if value > 0.0:
                lo_l, hi_l = slot - b, slot - a - 1
                if hi_l >= 1:
                    segments.append((max(1, lo_l), hi_l, value))
                lo_r, hi_r = slot + a + 1, slot + b
                if lo_r <= m:
                    segments.append((lo_r, min(m, hi_r), value))
            a = b
            width *= 2

        if old != segments:
            self._unpaint(slot)
            for lo, hi, value in segments:
                self._paint.add(lo, hi, value)
            self._painted[slot] = segments if segments else None
            self.counters.tree_node_updates += 1

    def _unpaint(self, slot: int) -> None:
        old = self._painted[slot]
        if old is not None:
            for lo, hi, value in old:
                self._paint.add(lo, hi, -value)
            self._painted[slot] = None
            self.counters.tree_node_updates += 1

    # ------------------------------------------------------------------
    # Segment tree (leaf buckets of <= ts slots)
    # ------------------------------------------------------------------
    def _is_leaf(self, l: int, r: int) -> bool:
        return r - l + 1 <= self.ts

    def _pull_leaf(self, node: int, l: int, r: int) -> None:
        self.counters.tree_node_updates += 1
        best_self = _NEG_INF
        cost = _INF
        cand = 0
        for slot in range(l, r + 1):
            if self._self_gain[slot] > best_self:
                best_self = self._self_gain[slot]
            if not self.ev.is_executed(slot) and self._cost[slot] != _INF:
                cand += 1
                if self._cost[slot] < cost:
                    cost = self._cost[slot]
        self._agg_self[node] = best_self
        self._agg_cost[node] = cost
        self._agg_cand[node] = cand

    def _pull_inner(self, node: int) -> None:
        self.counters.tree_node_updates += 1
        left, right = 2 * node, 2 * node + 1
        self._agg_self[node] = max(self._agg_self[left], self._agg_self[right])
        self._agg_cost[node] = min(self._agg_cost[left], self._agg_cost[right])
        self._agg_cand[node] = self._agg_cand[left] + self._agg_cand[right]

    def _build(self, node: int, l: int, r: int) -> None:
        self.node_count += 1
        if self._is_leaf(l, r):
            self._pull_leaf(node, l, r)
            return
        mid = (l + r) // 2
        self._build(2 * node, l, mid)
        self._build(2 * node + 1, mid + 1, r)
        self._pull_inner(node)

    def refresh_range(self, lo: int, hi: int) -> None:
        """Recompute per-slot state and aggregates for ``[lo, hi]``.

        Call after :meth:`TemporalQualityEvaluator.execute` with the
        affected window; costs of slots in the range are also re-read
        (they change in multi-task scenarios when workers are consumed).
        """
        lo = max(1, lo)
        hi = min(self.m, hi)
        for slot in range(lo, hi + 1):
            cost = self.costs.cost(slot)
            self._cost[slot] = _INF if cost is None else float(cost)
            self._rel[slot] = self.costs.reliability(slot) if cost is not None else 0.0
            self._refresh_slot(slot)
        self._update(1, 1, self.m, lo, hi)

    def refresh_slots(self, slots) -> int:
        """Incrementally refresh an arbitrary set of slots.

        The streaming churn path: a worker join/leave/consumption only
        perturbs the offers of the slots it overlaps, so the index is
        repaired by coalescing those slots into maximal contiguous runs
        and calling :meth:`refresh_range` per run — never rebuilding
        the whole tree.  Returns the number of runs refreshed.
        """
        ordered = sorted({s for s in slots if 1 <= s <= self.m})
        if not ordered:
            return 0
        self.counters.index_incremental_refreshes += 1
        runs = 0
        lo = hi = ordered[0]
        for slot in ordered[1:]:
            if slot == hi + 1:
                hi = slot
                continue
            self.refresh_range(lo, hi)
            runs += 1
            lo = hi = slot
        self.refresh_range(lo, hi)
        return runs + 1

    def _update(self, node: int, l: int, r: int, a: int, b: int) -> None:
        if b < l or r < a:
            return
        if self._is_leaf(l, r):
            self._pull_leaf(node, l, r)
            return
        mid = (l + r) // 2
        self._update(2 * node, l, mid, a, b)
        self._update(2 * node + 1, mid + 1, r, a, b)
        self._pull_inner(node)

    # ------------------------------------------------------------------
    # State capture (journal snapshots)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Verbatim index state for an exact snapshot.

        A fresh build over the same evaluator/cost state reproduces
        every aggregate *mathematically*, but the paint tree's float
        accumulators carry round-off history (paint/unpaint pairs need
        not cancel bit-for-bit), and recovered runs must evolve their
        op counters byte-identically to uninterrupted ones — so the
        journal copies the arrays instead of rebuilding.
        """
        return {
            "ts": self.ts,
            "m": self.m,
            "cost": list(self._cost),
            "rel": list(self._rel),
            "self_gain": list(self._self_gain),
            "painted": [
                None if segs is None else [list(seg) for seg in segs]
                for segs in self._painted
            ],
            "paint": self._paint.to_state(),
            "agg_self": list(self._agg_self),
            "agg_cost": list(self._agg_cost),
            "agg_cand": list(self._agg_cand),
            "node_count": self.node_count,
        }

    @classmethod
    def from_state(
        cls,
        evaluator: TemporalQualityEvaluator,
        costs,
        state: dict,
        *,
        counters: OpCounters | None = None,
    ) -> "TreeIndex":
        """Reconstruct an index bit-identical to the captured one.

        Bypasses ``__init__`` entirely: nothing is recomputed and no
        counter is incremented (restoring state is not solver work).
        ``evaluator`` and ``costs`` must themselves be restored to the
        capture point.
        """
        index = cls.__new__(cls)
        index.ev = evaluator
        index.costs = costs
        index.ts = state["ts"]
        index.m = state["m"]
        index.counters = counters if counters is not None else evaluator.counters
        index._cost = [float(v) for v in state["cost"]]
        index._rel = [float(v) for v in state["rel"]]
        index._self_gain = [float(v) for v in state["self_gain"]]
        # Segment tuples were listified for JSON; the refresh path
        # compares them against freshly built tuples, so restore the
        # exact tuple shape.
        index._painted = [
            None if segs is None else [(int(lo), int(hi), float(v)) for lo, hi, v in segs]
            for segs in state["painted"]
        ]
        index._paint = RangeAddMaxTree.from_state(state["paint"])
        index._agg_self = [float(v) for v in state["agg_self"]]
        index._agg_cost = [float(v) for v in state["agg_cost"]]
        index._agg_cand = [int(v) for v in state["agg_cand"]]
        index.node_count = state["node_count"]
        return index

    # ------------------------------------------------------------------
    # Best-first search
    # ------------------------------------------------------------------
    @property
    def candidate_count(self) -> int:
        """Unexecuted, assignable slots currently indexed."""
        return self._agg_cand[1]

    def _node_upper_bound(self, node: int, l: int, r: int) -> float:
        self_gain = self._agg_self[node]
        if self_gain == _NEG_INF:
            return _NEG_INF
        min_cost = self._agg_cost[node]
        if min_cost == _INF:
            return _NEG_INF
        gain_ub = self_gain + self._paint.max_in(l, r)
        return gain_ub / max(min_cost, COST_EPSILON)

    def _same_voronoi_cell(self, l: int, r: int) -> bool:
        """The paper's Condition 1: the segment's end slots share one
        k-NN set, hence the whole segment lies in one order-k cell
        (Lemma 8)."""
        if l == r:
            return True
        return tuple(self.ev.knn_of(l)) == tuple(self.ev.knn_of(r))

    def find_best(self, remaining_budget: float) -> BestCandidate | None:
        """Exact argmax of ``gain / cost`` over affordable slots.

        Best-first search with upper-bound pruning; returns ``None``
        when no unexecuted, assignable, affordable slot exists or all
        affordable slots have non-positive gain.
        """
        total_candidates = self._agg_cand[1]
        self.counters.candidates_total += total_candidates
        if total_candidates == 0:
            return None
        heap = LazyMaxHeap()
        root_ub = self._node_upper_bound(1, 1, self.m)
        if root_ub == _NEG_INF:
            return None
        heap.push(root_ub, (1, 1, self.m))

        best: BestCandidate | None = None
        evaluated = 0
        while heap:
            popped = heap.pop()
            if popped is None:
                break
            ub, (node, l, r), _ = popped
            self.counters.tree_node_visits += 1
            # Strict comparison: a node whose bound *ties* the incumbent
            # may still hide an equal-heuristic slot with a smaller
            # index, which the deterministic tie-break must prefer.
            if best is not None and ub < best.heuristic:
                break
            if self._is_leaf(l, r) or self._same_voronoi_cell(l, r):
                for slot in range(l, r + 1):
                    if self.ev.is_executed(slot):
                        continue
                    cost = self._cost[slot]
                    if cost == _INF or cost > remaining_budget + 1e-12:
                        continue
                    gain = self.ev.gain_if_executed(slot, self._rel[slot])
                    evaluated += 1
                    if gain <= 0.0:
                        continue
                    heur = gain / max(cost, COST_EPSILON)
                    if (
                        best is None
                        or heur > best.heuristic
                        or (heur == best.heuristic and slot < best.slot)
                    ):
                        best = BestCandidate(slot, gain, cost, heur)
                continue
            mid = (l + r) // 2
            for child, cl, cr in ((2 * node, l, mid), (2 * node + 1, mid + 1, r)):
                child_ub = self._node_upper_bound(child, cl, cr)
                if child_ub == _NEG_INF:
                    continue
                if best is not None and child_ub < best.heuristic:
                    self.counters.tree_node_visits += 1
                    continue
                heap.push(child_ub, (child, cl, cr))
        self.counters.candidates_pruned += max(total_candidates - evaluated, 0)
        return best
