"""The entropy-based TCSC quality metric (Section II-B, Eq. 1-5).

Definitions implemented here, for a task of ``m`` slots interpolated
with ``k`` temporal nearest neighbours:

* **Interpolation error ratio** (Eq. 3, reliability-weighted Eq. 5)::

      rho_err(j) = sum_{e in SkNN(j)} lambda_e * |j, e| / (k * m)

  If fewer than ``k`` executed neighbours exist, each missing
  neighbour contributes the largest possible interpolation distance
  ``m`` (the paper's footnote 2), with reliability 1.

* **Finishing probability** (Eq. 2 / Eq. 4)::

      p(j) = lambda_j / m                      if slot j is executed
      p(j) = sum_e lambda_e * (m - |j,e|) / (k m^2)   otherwise

  The second form is algebraically identical to
  ``(1/m) * (mean lambda - rho_err)`` under footnote 2 and makes two
  facts obvious: ``0 <= p(j) <= 1/m`` always, and a missing neighbour
  (distance ``m``) contributes exactly zero.

* **Task quality** (Eq. 1)::

      q(tau) = - sum_j p(j) * log2 p(j)

  ranging from 0 (nothing executed) to ``log2 m`` (everything
  executed by fully reliable workers).

The per-slot summand ``-p log2 p`` is increasing on ``[0, 1/e]``;
since ``p <= 1/m`` the metric is monotone for ``m >= 3``, which the
model layer enforces (the paper evaluates ``m >= 300``).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "entropy_term",
    "error_ratio",
    "finishing_probability",
    "interpolation_neighbors",
    "max_quality",
    "task_quality",
]


def entropy_term(p: float) -> float:
    """The per-slot quality contribution ``phi(p) = -p log2 p``.

    ``phi(0) = 0`` by continuity (zero knowledge contributes zero
    quality).  Values within ``1e-15`` of the valid range are clamped
    rather than rejected: vectorized accumulation (and any float sum
    of reliability-weighted terms) can land an epsilon outside
    ``[0, 1]``, and such round-off is not a caller error.
    """
    if p < -1e-15 or p > 1.0 + 1e-15:
        raise ConfigurationError(f"probability out of range: {p}")
    if p <= 0.0:
        return 0.0
    if p > 1.0:
        p = 1.0
    return -p * math.log2(p)


def error_ratio(
    m: int,
    k: int,
    neighbors: Sequence[tuple[int, float]],
) -> float:
    """Eq. 3 / Eq. 5: the interpolation error ratio of an unexecuted slot.

    ``neighbors`` holds ``(temporal_distance, reliability)`` pairs for
    the (at most ``k``) executed nearest neighbours.  Missing
    neighbours contribute distance ``m`` at reliability 1 (footnote 2).
    """
    _validate_mk(m, k)
    if len(neighbors) > k:
        raise ConfigurationError(f"got {len(neighbors)} neighbors for k={k}")
    weighted = sum(lam * dist for dist, lam in neighbors)
    weighted += (k - len(neighbors)) * m  # footnote 2: distance m, lambda 1
    return weighted / (k * m)


def finishing_probability(
    m: int,
    k: int,
    neighbors: Sequence[tuple[int, float]] | None,
    *,
    executed_reliability: float | None = None,
) -> float:
    """Eq. 2 / Eq. 4: the finishing probability of one subtask.

    For an *executed* slot pass ``executed_reliability`` (its worker's
    lambda) and ``neighbors=None``; the result is ``lambda / m``.  For
    an *unexecuted* slot pass the ``(distance, reliability)`` pairs of
    its executed k-NN set (possibly fewer than ``k``; possibly empty).
    """
    _validate_mk(m, k)
    if executed_reliability is not None:
        if neighbors is not None:
            raise ConfigurationError("pass neighbors=None for an executed slot")
        if not 0.0 <= executed_reliability <= 1.0:
            raise ConfigurationError(f"reliability out of range: {executed_reliability}")
        return executed_reliability / m
    if neighbors is None:
        raise ConfigurationError("unexecuted slots need their neighbor list")
    if len(neighbors) > k:
        raise ConfigurationError(f"got {len(neighbors)} neighbors for k={k}")
    total = 0.0
    for dist, lam in neighbors:
        if dist < 1 or dist > m:
            raise ConfigurationError(f"temporal distance out of range: {dist}")
        total += lam * (m - dist)
    return total / (k * m * m)


def interpolation_neighbors(
    slot: int,
    executed: Iterable[int],
    k: int,
) -> list[int]:
    """The ``SkNN`` set: up to ``k`` executed slots nearest to ``slot``.

    Reference (non-incremental) implementation used by tests; the
    solvers use :class:`repro.util.sorted_slots.SortedSlots` instead.
    Ties break toward the smaller slot index.
    """
    candidates = sorted(e for e in executed if e != slot)
    candidates.sort(key=lambda e: (abs(e - slot), e))
    return candidates[:k]


def task_quality(
    m: int,
    k: int,
    executed: dict[int, float],
) -> float:
    """Eq. 1: full (non-incremental) task quality.

    ``executed`` maps executed slot -> worker reliability.  This is the
    reference implementation the incremental evaluator is validated
    against.
    """
    _validate_mk(m, k)
    for slot in executed:
        if not 1 <= slot <= m:
            raise ConfigurationError(f"slot {slot} outside 1..{m}")
    total = 0.0
    for slot in range(1, m + 1):
        if slot in executed:
            p = finishing_probability(m, k, None, executed_reliability=executed[slot])
        else:
            nn = interpolation_neighbors(slot, executed, k)
            pairs = [(abs(e - slot), executed[e]) for e in nn]
            p = finishing_probability(m, k, pairs)
        total += entropy_term(p)
    return total


def max_quality(m: int) -> float:
    """The metric's upper bound ``log2 m`` (all slots executed, lambda=1)."""
    if m < 3:
        raise ConfigurationError(f"m must be >= 3, got {m}")
    return math.log2(m)


def _validate_mk(m: int, k: int) -> None:
    if m < 3:
        raise ConfigurationError(f"m must be >= 3, got {m}")
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
