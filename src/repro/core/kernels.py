"""Vectorized quality kernels: the NumPy backend of the evaluator.

The scalar :class:`~repro.core.evaluator.TemporalQualityEvaluator`
spends the solver hot path in two per-slot loops — recomputing
finishing probabilities over an affected window, and accumulating
``phi(p) = -p log2 p`` terms slot by slot.  This module packages both
as array operations so a whole window is evaluated in one vectorized
pass:

* :func:`phi_array` — the entropy term over an array of probabilities;
* :class:`QualityKernel` — per-``(m, k)`` batch primitives:

  - ``batch_knn``: temporal k-NN state (weighted totals, and the
    k-th-neighbour distance/index/reliability needed by the Eq.-6
    merge rule) for many query slots at once, via ``searchsorted``
    over the sorted executed-slot array plus a ``2k``-wide candidate
    sort;
  - ``phi_of_totals``: entropy terms from raw weighted totals, served
    from a precomputed *phi table* whenever every reliability is 1.0
    — in that case a slot's total is an integer in ``[0, k*m]``
    (exactly representable in float64), so only ``O(m*k)`` distinct
    probability values ever occur and the whole entropy computation
    collapses to an integer table lookup (``np.take``).

Bitwise-consistency contract: in the unit-reliability regime the
NumPy path is *bitwise identical* to the scalar oracle, not merely
close.  The phi table is built with the scalar
:func:`~repro.core.quality.entropy_term`, totals are exact integers,
and the evaluator accumulates gain terms in the scalar path's exact
sequential order — so a probability that did not change contributes
an exact ``0.0`` delta, and mathematically tied candidates (symmetric
geometry, equal costs) stay *exactly* tied on both backends, which is
what makes the deterministic smallest-index tie-break — and therefore
the produced plan — backend-invariant.  With heterogeneous
reliabilities the vectorized phi (``np.log2``) may differ from the
scalar one in the last ulp; exact cross-candidate ties require the
symmetry that heterogeneous reliabilities break, so plans remain
identical there too (property-tested).

Kernels are cached per ``(m, k)`` via :func:`get_kernel`, so every
evaluator of the same shape — across tasks, batches, and streaming
epochs — shares one phi table and one set of scratch constants.
"""

from __future__ import annotations

import numpy as np

from repro.core.quality import entropy_term
from repro.errors import ConfigurationError

__all__ = ["phi_array", "QualityKernel", "get_kernel"]


def phi_array(p: np.ndarray) -> np.ndarray:
    """Vectorized entropy term ``phi(p) = -p log2 p`` (phi(0) = 0).

    Values are clamped into ``[0, 1]`` with the same ``1e-15``
    tolerance as the scalar :func:`~repro.core.quality.entropy_term`;
    anything further out of range raises.
    """
    p = np.asarray(p, dtype=np.float64)
    if p.size and (float(p.min()) < -1e-15 or float(p.max()) > 1.0 + 1e-15):
        bad = p[(p < -1e-15) | (p > 1.0 + 1e-15)]
        raise ConfigurationError(f"probability out of range: {float(bad[0])}")
    clamped = np.clip(p, 0.0, 1.0)
    out = np.zeros_like(clamped)
    positive = clamped > 0.0
    # -p * log2(p), evaluated only where p > 0.
    np.log2(clamped, out=out, where=positive)
    out *= clamped
    np.negative(out, out=out)
    return out


class QualityKernel:
    """Batch quality primitives for one task shape ``(m, k)``.

    Stateless apart from precomputed constants, so a single instance
    is safely shared by every evaluator with the same shape (see
    :func:`get_kernel`).
    """

    #: Sentinel k-th-neighbour distance meaning "fewer than k
    #: neighbours exist": larger than any real distance, so a merge
    #: candidate always enters and nothing is evicted.
    NO_KTH = None  # set per instance (m + 2)

    def __init__(self, m: int, k: int):
        if m < 3:
            raise ConfigurationError(f"m must be >= 3, got {m}")
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.m = m
        self.k = k
        self.denom = float(k * m * m)
        self.NO_KTH = m + 2
        # Integer-total phi table: phi(t / (k m^2)) for t in 0..k*m.
        # Built with the *scalar* entropy_term so unit-reliability
        # lookups are bitwise identical to the python backend (the
        # plan-identity contract hinges on exact ties staying exact).
        denom = self.denom
        self.phi_table = np.array(
            [entropy_term(t / denom) for t in range(k * m + 1)], dtype=np.float64
        )
        # Tie-break key stride: key = distance * stride + slot orders
        # candidates by (distance, slot index), both <= m + 1.
        self._stride = m + 2
        self._offsets = np.arange(-k, k, dtype=np.intp)

    # ------------------------------------------------------------------
    # Entropy
    # ------------------------------------------------------------------
    def phi_of_totals(self, totals: np.ndarray, *, unit: bool) -> np.ndarray:
        """Entropy terms for raw weighted totals ``k m^2 p``.

        ``unit=True`` asserts every contributing reliability is 1.0,
        making the totals exact integers on the phi-table grid.
        """
        if unit:
            idx = np.rint(totals).astype(np.intp)
            return np.take(self.phi_table, idx)
        return phi_array(totals / self.denom)

    def phi_executed(self, reliability: float) -> float:
        """phi of an executed slot's probability ``lambda / m``.

        Computed with the scalar entropy term so the value is bitwise
        equal to what the python backend produces for the same slot.
        """
        if reliability == 1.0:
            # 1/m sits on the table grid at t = k*m (same rounded
            # quotient: (k m)/(k m^2) and 1.0/m round identically).
            return float(self.phi_table[self.k * self.m])
        return entropy_term(reliability / self.m)

    # ------------------------------------------------------------------
    # Batch temporal k-NN
    # ------------------------------------------------------------------
    def batch_knn(
        self,
        executed: np.ndarray,
        reliabilities: np.ndarray,
        queries: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """k-NN interpolation state for many unexecuted slots at once.

        ``executed`` is the sorted executed-slot array (int64) with
        ``reliabilities`` aligned to it; ``queries`` are unexecuted
        slot indices.  Returns ``(totals, dfar, efar, lamfar)`` where

        * ``totals[i] = sum_{e in kNN(q_i)} lambda_e * (m - |e - q_i|)``
          (so ``p = totals / (k m^2)``),
        * ``dfar/efar/lamfar`` describe the k-th nearest neighbour
          (the one a closer insertion would evict); ``dfar`` is the
          :attr:`NO_KTH` sentinel when fewer than ``k`` exist.

        Ties break toward the smaller slot index, exactly like
        :meth:`repro.util.sorted_slots.SortedSlots.k_nearest`.
        """
        W = queries.size
        m, k = self.m, self.k
        if executed.size == 0 or W == 0:
            totals = np.zeros(W, dtype=np.float64)
            dfar = np.full(W, self.NO_KTH, dtype=np.int64)
            efar = np.zeros(W, dtype=np.int64)
            lamfar = np.zeros(W, dtype=np.float64)
            return totals, dfar, efar, lamfar
        n = executed.size
        ins = np.searchsorted(executed, queries)
        cand_idx = ins[:, None] + self._offsets[None, :]
        valid = (cand_idx >= 0) & (cand_idx < n)
        cand_idx = np.clip(cand_idx, 0, n - 1)
        cand = executed[cand_idx]
        dist = np.abs(cand - queries[:, None])
        key = dist * self._stride + cand
        # Invalid candidates sort last.
        big = (m + 2) * self._stride
        key = np.where(valid, key, big)
        order = np.argsort(key, axis=1, kind="stable")[:, :k]
        top_dist = np.take_along_axis(dist, order, axis=1)
        top_valid = np.take_along_axis(valid, order, axis=1)
        top_cand = np.take_along_axis(cand, order, axis=1)
        top_lam = reliabilities[np.take_along_axis(cand_idx, order, axis=1)]
        contrib = np.where(top_valid, top_lam * (m - top_dist), 0.0)
        totals = contrib.sum(axis=1)
        has_k = top_valid[:, -1]
        dfar = np.where(has_k, top_dist[:, -1], self.NO_KTH)
        efar = np.where(has_k, top_cand[:, -1], 0)
        lamfar = np.where(has_k, top_lam[:, -1], 0.0)
        return totals, dfar, efar, lamfar

    # ------------------------------------------------------------------
    # Batch tentative-insertion gain
    # ------------------------------------------------------------------
    def merge_totals(
        self,
        slot: int,
        reliability: float,
        queries: np.ndarray,
        totals: np.ndarray,
        dfar: np.ndarray,
        efar: np.ndarray,
        lamfar: np.ndarray,
    ) -> np.ndarray:
        """Totals after tentatively executing ``slot``, per query.

        Implements the scalar merge rule of
        ``TemporalQualityEvaluator._p_with_extra`` in one pass: the
        candidate enters a query's k-NN set iff ``(d, slot)`` precedes
        the current k-th neighbour lexicographically, evicting it (or
        nothing, when fewer than ``k`` neighbours exist).
        """
        m = self.m
        D = np.abs(queries - slot)
        enters = (D < dfar) | ((D == dfar) & (slot < efar))
        evicted = np.where(dfar <= m, lamfar * (m - dfar), 0.0)
        delta = reliability * (m - D) - evicted
        return totals + np.where(enters, delta, 0.0)


_KERNELS: dict[tuple[int, int], QualityKernel] = {}
#: Cache bound: matches the deliberate cap on greedy's quality-table
#: cache so a long-lived service seeing many task shapes cannot grow
#: memory without bound (each entry holds a k*m+1 float64 phi table).
_KERNEL_CACHE_LIMIT = 1024


def get_kernel(m: int, k: int) -> QualityKernel:
    """The shared :class:`QualityKernel` for ``(m, k)``.

    Caching (LRU, bounded) is what amortizes the phi table across
    every task, batch round, and streaming epoch with the same shape.
    """
    key = (m, k)
    kernel = _KERNELS.pop(key, None)
    if kernel is None:
        kernel = QualityKernel(m, k)
        while len(_KERNELS) >= _KERNEL_CACHE_LIMIT:
            _KERNELS.pop(next(iter(_KERNELS)))
    _KERNELS[key] = kernel  # (re)insert at the most-recent position
    return kernel
