"""Operation counters shared by the solvers.

The paper's Figure 8(c) breaks the running time of ``Approx`` /
``Approx*`` down into worker-cost retrieval, heuristic calculation,
k-NN subtask search, and tree construction, and Figure 8(d) reports
pruning ratios.  Rather than instrument wall-clock timers (noisy, and
meaningless inside the virtual-clock parallel simulator), every solver
counts its primitive operations in an :class:`OpCounters` record; the
benchmarks convert the counts into the paper's breakdowns, and the
simulator charges virtual time proportional to them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["OpCounters"]


@dataclass(slots=True)
class OpCounters:
    """Primitive operation counts of one solver run."""

    knn_queries: int = 0          # temporal k-NN lookups ("Find k-NN subtasks")
    slot_evaluations: int = 0     # per-slot p/phi recomputations ("Heuristic Calculation")
    gain_evaluations: int = 0     # candidate heuristic values computed
    worker_cost_lookups: int = 0  # spatial NN queries ("Worker Cost Retrieval")
    tree_node_visits: int = 0     # index nodes touched (build + search)
    tree_node_updates: int = 0    # index aggregate updates ("Tree Construction")
    candidates_pruned: int = 0    # slots never exactly evaluated thanks to bounds
    candidates_total: int = 0     # slots that the naive algorithm would evaluate
    conflicts_detected: int = 0   # multi-task worker conflicts
    iterations: int = 0           # greedy iterations (subtasks executed)
    index_full_builds: int = 0    # tree indexes constructed from scratch
    index_incremental_refreshes: int = 0  # partial index refreshes (churn)

    def merge(self, other: "OpCounters") -> None:
        """Accumulate another counter record into this one."""
        self.knn_queries += other.knn_queries
        self.slot_evaluations += other.slot_evaluations
        self.gain_evaluations += other.gain_evaluations
        self.worker_cost_lookups += other.worker_cost_lookups
        self.tree_node_visits += other.tree_node_visits
        self.tree_node_updates += other.tree_node_updates
        self.candidates_pruned += other.candidates_pruned
        self.candidates_total += other.candidates_total
        self.conflicts_detected += other.conflicts_detected
        self.iterations += other.iterations
        self.index_full_builds += other.index_full_builds
        self.index_incremental_refreshes += other.index_incremental_refreshes

    @property
    def pruning_ratio(self) -> float:
        """Fraction of candidate evaluations avoided (Fig. 8d)."""
        if self.candidates_total == 0:
            return 0.0
        return self.candidates_pruned / self.candidates_total

    def virtual_cost(self) -> float:
        """A scalar work estimate used by the virtual-clock simulator.

        Weights approximate the relative CPU cost of each primitive in
        the pure-Python implementation (measured once, then frozen so
        simulated timings are deterministic).
        """
        return (
            1.0 * self.knn_queries
            + 1.0 * self.slot_evaluations
            + 2.0 * self.gain_evaluations
            + 3.0 * self.worker_cost_lookups
            + 0.5 * self.tree_node_visits
            + 0.5 * self.tree_node_updates
        )

    def snapshot(self) -> "OpCounters":
        """An independent copy of the current counts."""
        clone = OpCounters()
        clone.merge(self)
        return clone

    def diff(self, earlier: "OpCounters") -> "OpCounters":
        """Field-wise ``self - earlier``: the delta between two
        snapshots (what the phase profiler attributes to a span)."""
        return OpCounters(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def delta_since(self, earlier: "OpCounters") -> "OpCounters":
        """Counts accumulated since ``earlier`` (a prior snapshot)."""
        return self.diff(earlier)

    def to_dict(self, *, nonzero_only: bool = False) -> dict:
        """Plain-dict view in field order; ``nonzero_only`` drops zero
        counts (compact trace-record payloads)."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        if nonzero_only:
            return {name: count for name, count in data.items() if count}
        return data
