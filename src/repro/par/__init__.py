"""Real parallelism: the process/thread shard executor (PR 10).

Every speedup before this package was either algorithmic (numpy +
CELF) or *modeled* (the :class:`~repro.parallel.simcluster.SimCluster`
op-count makespan).  ``repro.par`` makes the sharded speedup real:
per-shard work units cross an OS process boundary through the PR-4
exact snapshot codec (floats bit-exact via JSON shortest repr), run in
worker processes, and merge back through the existing deterministic
reconciliation / metric-merge protocols — byte-identical to the serial
paths in plan signature, :class:`~repro.stream.metrics.StreamMetrics`,
and :class:`~repro.core.instrumentation.OpCounters`.

* :class:`~repro.par.executor.Executor` — the ``serial | thread |
  process`` abstraction, spec-driven via ``RunSpec.executor`` +
  ``RunSpec.max_workers``.
* :mod:`repro.par.work` — JSON work-unit codecs and the top-level
  worker-process entry points (plain shard solves and stream shard
  drains).
* :mod:`repro.par.stream` — the executor-aware sharded drain,
  including the deterministic per-shard telemetry merge.

Determinism-across-processes argument (DESIGN.md §14): work units and
results are JSON strings, so no pickle-dependent representation can
drift; solves are deterministic functions of decoded state; results
are merged in shard-id order regardless of completion order.  CI gates
only that identity — wall-clock speedup is measured and reported by
``bench-par`` but never asserted.
"""

from repro.par.executor import (
    EXECUTOR_KINDS,
    Executor,
    executor_from_spec,
    validate_max_workers,
)

__all__ = [
    "EXECUTOR_KINDS",
    "Executor",
    "executor_from_spec",
    "validate_max_workers",
]
