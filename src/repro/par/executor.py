"""The ``serial | thread | process`` executor abstraction.

One :class:`Executor` decides *where* a batch of independent work runs:

* ``serial`` — inline, in submission order.  The reference: every
  identity gate compares the other kinds against it.
* ``thread`` — real ``threading`` threads (named ``tcsc-worker-<i>``,
  the Figure 5 master/worker demonstration).  The GIL serializes the
  bytecode, so this kind proves concurrency-correctness, not speed.
* ``process`` — a :class:`concurrent.futures.ProcessPoolExecutor`.
  Work must be submitted as JSON strings through :meth:`map_units`
  with a *module-level* unit function (:mod:`repro.par.work`), so
  nothing pickle-dependent ever crosses the boundary.

Determinism: :meth:`map_units` and :meth:`run_jobs` always return
results in submission order, whatever order the workers finish in.

``persistent=True`` keeps the process pool warm across calls — the
bench suite sweeps many runs and should pay the fork cost once; the
one-shot runtime paths use a per-call pool so nothing leaks.
"""

from __future__ import annotations

import os
import queue
import threading
from typing import Any, Callable, Hashable, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "EXECUTOR_KINDS",
    "Executor",
    "executor_from_spec",
    "validate_max_workers",
]

EXECUTOR_KINDS = ("serial", "thread", "process")


def validate_max_workers(max_workers: int) -> int:
    """The shared ``--max-workers`` validation (CLI + constructor).

    Raises a typed :class:`~repro.errors.ConfigurationError` on
    ``max_workers < 1`` instead of letting a zero-width pool surface
    as a deep ``concurrent.futures`` traceback.
    """
    if max_workers < 1:
        raise ConfigurationError(
            f"max_workers must be >= 1, got {max_workers}"
        )
    return max_workers


class Executor:
    """Run independent work units serially, on threads, or in processes."""

    def __init__(
        self,
        kind: str = "serial",
        *,
        max_workers: int | None = None,
        persistent: bool = False,
    ):
        if kind not in EXECUTOR_KINDS:
            raise ConfigurationError(
                f"unknown executor kind {kind!r}; "
                f"choose one of {EXECUTOR_KINDS}"
            )
        if max_workers is not None:
            validate_max_workers(max_workers)
        self.kind = kind
        self.max_workers = max_workers
        self.persistent = persistent
        self._pool = None

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def _width(self, units: int) -> int:
        """Worker count for a batch of ``units`` submissions."""
        cap = self.max_workers
        if cap is None:
            cap = (os.cpu_count() or 1) if self.kind == "process" else units
        return max(1, min(units, cap))

    # ------------------------------------------------------------------
    # JSON work units (module-level unit functions; process-safe)
    # ------------------------------------------------------------------
    def map_units(self, fn: Callable[[str], str], payloads: Sequence[str]) -> list:
        """``[fn(p) for p in payloads]``, wherever this executor runs.

        Results come back in submission order regardless of completion
        order; worker exceptions propagate to the caller.  For the
        ``process`` kind, ``fn`` must be importable at module level
        (the unit functions of :mod:`repro.par.work`).
        """
        payloads = list(payloads)
        if not payloads:
            return []
        if self.kind == "serial":
            return [fn(payload) for payload in payloads]
        if self.kind == "thread":
            return self._run_thunks(
                [(lambda p=payload: fn(p)) for payload in payloads]
            )
        return self._map_in_processes(fn, payloads)

    def _map_in_processes(self, fn, payloads: list) -> list:
        from concurrent.futures import ProcessPoolExecutor

        if self.persistent:
            if self._pool is None:
                # Sized by the cap, not the first batch: a warm pool
                # outlives many differently-sized sweeps, and a small
                # first call must not pin its width for the large ones.
                cap = self.max_workers or (os.cpu_count() or 1)
                self._pool = ProcessPoolExecutor(max_workers=cap)
            return list(self._pool.map(fn, payloads))
        with ProcessPoolExecutor(max_workers=self._width(len(payloads))) as pool:
            return list(pool.map(fn, payloads))

    # ------------------------------------------------------------------
    # In-process jobs (the MasterWorkerPool surface)
    # ------------------------------------------------------------------
    def run_jobs(
        self, jobs: dict[Hashable, Callable[[], Any]]
    ) -> dict[Hashable, Any]:
        """Execute ``{owner: thunk}`` and return ``{owner: result}``.

        Closures cannot cross a process boundary, so the ``process``
        kind rejects this surface with a typed error — ship JSON units
        through :meth:`map_units` instead.
        """
        if self.kind == "process":
            raise ConfigurationError(
                "process executors ship JSON work units, not closures; "
                "encode the work with repro.par.work and use map_units"
            )
        owners = list(jobs)
        if self.kind == "serial":
            return {owner: jobs[owner]() for owner in owners}
        values = self._run_thunks([jobs[owner] for owner in owners])
        return dict(zip(owners, values))

    def _run_thunks(self, thunks: list) -> list:
        """Drain thunks on named worker threads; first error re-raised."""
        work: queue.Queue = queue.Queue()
        for index, thunk in enumerate(thunks):
            work.put((index, thunk))
        results: list = [None] * len(thunks)
        errors: list[BaseException] = []
        lock = threading.Lock()

        def worker():
            while True:
                try:
                    index, thunk = work.get_nowait()
                except queue.Empty:
                    return
                try:
                    value = thunk()
                    with lock:
                        results[index] = value
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    with lock:
                        errors.append(exc)

        threads = [
            threading.Thread(target=worker, name=f"tcsc-worker-{i}", daemon=True)
            for i in range(self._width(len(thunks)))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return results

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down a persistent process pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def executor_from_spec(spec) -> Executor | None:
    """The spec's executor, or ``None`` for the legacy serial paths.

    ``None`` (not ``Executor("serial")``) keeps the default runtime
    composition byte-for-byte on the original code paths — executor
    plumbing only engages when a spec opts in.
    """
    if spec.executor == "serial":
        return None
    return Executor(spec.executor, max_workers=spec.max_workers)
