"""JSON work units: per-shard work shipped across a process boundary.

A work unit is one JSON string in, one JSON string out — the unit
functions here (:func:`run_plain_unit`, :func:`run_stream_unit`) are
module-level so a :class:`~concurrent.futures.ProcessPoolExecutor`
resolves them by name; the payload itself never rides on pickle, so no
pickle-dependent representation drift is possible.  Floats cross the
boundary bit-exact through JSON shortest repr — the same contract the
PR-4 snapshot codec (:mod:`repro.journal.snapshot`) and the model
``to_dict``/``from_dict`` codecs already guarantee.

Two unit shapes exist:

* **Plain shard solve** — one shard's phase-1 optimistic round of
  :class:`~repro.shard.server.ShardedTCSCServer`: the shard's halo
  worker roster, its owned tasks in canonical order, their budgets,
  and the solver variant go in; per-task plans, offer tables, op
  costs, and the shard's :class:`~repro.core.instrumentation.OpCounters`
  come out.  The coordinator replays the returned records to rebuild
  ``prefix_claims`` exactly as the in-process loop would have.
* **Stream shard drain** — one shard of
  :class:`~repro.shard.streaming.ShardedStreamingServer`: the core's
  constructor kwargs plus the routed sub-trace (WAL event codec) go
  in; the full exact server snapshot (:func:`~repro.journal.snapshot.server_state`)
  comes out and is restored into the parent's matching core, so every
  downstream consumer (``assignment()``, metrics, counters, makespan
  accounting) reads state indistinguishable from an in-process drain.
  With telemetry, the worker runs its own shard-scoped recorder /
  registry / profiler and ships their exact state for the parent's
  deterministic shard-id-ordered merge (:mod:`repro.par.stream`).
"""

from __future__ import annotations

import json

from repro.core.instrumentation import OpCounters
from repro.engine.costs import SingleTaskCostTable, SlotOffer
from repro.engine.registry import WorkerRegistry
from repro.geo.bbox import BoundingBox
from repro.journal.wal import decode_event, encode_event
from repro.model.task import Task
from repro.model.worker import Worker, WorkerPool
from repro.runtime.spec import SolverVariant

__all__ = [
    "OfferView",
    "encode_plain_unit",
    "run_plain_unit",
    "decode_plain_result",
    "encode_stream_unit",
    "run_stream_unit",
    "decode_stream_result",
]


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _dumps(payload: dict) -> str:
    # Canonical form (sorted keys, compact separators) so two encodes
    # of the same state are byte-identical — units are diffable.
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _bbox_state(bbox: BoundingBox) -> list:
    return [bbox.min_x, bbox.min_y, bbox.max_x, bbox.max_y]


def _bbox_from(state: list) -> BoundingBox:
    return BoundingBox(*state)


class OfferView:
    """A shipped per-slot offer table with the reconciliation surface.

    Phase 3 of the sharded round probes the solve-time cost table only
    through ``offer(slot)`` (:meth:`ShardedTCSCServer._offers_unchanged`);
    a :class:`~repro.engine.costs.SingleTaskCostTable` is fully
    precomputed at construction, so its shipped per-slot offers
    reproduce that surface exactly, with no side effects to replay.
    """

    __slots__ = ("_offers",)

    def __init__(self, offers: list):
        self._offers = [
            None if entry is None else SlotOffer(entry[0], entry[1], entry[2])
            for entry in offers
        ]

    def offer(self, slot: int) -> SlotOffer | None:
        return self._offers[slot]


def _offers_state(costs: SingleTaskCostTable, num_slots: int) -> list:
    out: list = []
    for slot in range(num_slots + 1):
        offer = costs.offer(slot) if slot >= 1 else None
        out.append(
            None if offer is None
            else [offer.worker_id, offer.cost, offer.reliability]
        )
    return out


# ----------------------------------------------------------------------
# Plain shard solve units
# ----------------------------------------------------------------------
def encode_plain_unit(
    *,
    shard: int,
    bbox: BoundingBox,
    workers,
    tasks,
    budgets: dict[int, float],
    variant: SolverVariant,
    k: int,
    ts: int,
) -> str:
    """One shard's phase-1 optimistic solve as a JSON work unit.

    ``workers`` and ``tasks`` must be in the exact order the in-process
    loop would consume them (pool insertion order; shard canonical task
    order) — registry iteration order is part of the determinism
    contract.
    """
    return _dumps(
        {
            "unit": "plain-solve",
            "shard": shard,
            "bbox": _bbox_state(bbox),
            "workers": [worker.to_dict() for worker in workers],
            "tasks": [task.to_dict() for task in tasks],
            "budgets": {str(task.task_id): budgets[task.task_id] for task in tasks},
            "variant": {
                "backend": variant.backend,
                "search": variant.search,
                "use_index": variant.use_index,
                "top_c": variant.top_c,
                "floor": variant.floor,
            },
            "k": k,
            "ts": ts,
        }
    )


def run_plain_unit(payload: str) -> str:
    """Worker-process entry point: solve one shard's canonical round."""
    # Local import: the factory imports repro.shard lazily and
    # repro.shard imports this module lazily — keep the cycle broken
    # in forked children too.
    from repro.runtime.factory import build_single_task_solver

    data = json.loads(payload)
    bbox = _bbox_from(data["bbox"])
    pool = WorkerPool([Worker.from_dict(w) for w in data["workers"]])
    registry = WorkerRegistry(pool, bbox)
    variant = SolverVariant(**data["variant"])
    counters = OpCounters()
    out_tasks: list[dict] = []
    for task_payload in data["tasks"]:
        task = Task.from_dict(task_payload)
        budget = data["budgets"][str(task.task_id)]
        before = counters.snapshot()
        costs = SingleTaskCostTable(task, registry, counters=counters)
        solver = build_single_task_solver(
            variant, task, costs,
            budget=budget, k=data["k"], ts=data["ts"], counters=counters,
        )
        result = solver.solve()
        cost = counters.delta_since(before).virtual_cost()
        for record in result.assignment:
            registry.consume(record.worker_id, task.global_slot(record.slot))
        out_tasks.append(
            {
                "task_id": task.task_id,
                "records": [record.to_dict() for record in result.assignment],
                "quality": result.quality,
                "spent": result.spent,
                "certificate": result.certificate,
                "cost": cost,
                "offers": _offers_state(costs, task.num_slots),
            }
        )
    return _dumps(
        {
            "unit": "plain-solve",
            "shard": data["shard"],
            "tasks": out_tasks,
            "counters": counters.to_dict(),
        }
    )


def decode_plain_result(result: str) -> dict:
    """Parse a :func:`run_plain_unit` result (counters rehydrated)."""
    data = json.loads(result)
    data["counters"] = OpCounters(**data["counters"])
    return data


# ----------------------------------------------------------------------
# Stream shard drain units
# ----------------------------------------------------------------------
def encode_stream_unit(
    *,
    shard: int,
    bbox: BoundingBox,
    server_kwargs: dict,
    events,
    telemetry: bool = False,
    scope: str | None = None,
) -> str:
    """One shard's routed sub-trace as a JSON work unit."""
    return _dumps(
        {
            "unit": "stream-drain",
            "shard": shard,
            "bbox": _bbox_state(bbox),
            "kwargs": dict(server_kwargs),
            "events": [encode_event(event) for event in events],
            "telemetry": bool(telemetry),
            "scope": scope,
        }
    )


def run_stream_unit(payload: str) -> str:
    """Worker-process entry point: drain one shard's sub-trace.

    Builds a fresh :class:`~repro.stream.online_server.StreamingTCSCServer`
    from the shipped kwargs (plus a shard-scoped telemetry bundle when
    asked), runs the decoded events, and returns the exact snapshot —
    the parent restores it into its matching core.
    """
    from repro.journal.snapshot import server_state
    from repro.stream.online_server import StreamingTCSCServer

    data = json.loads(payload)
    bbox = _bbox_from(data["bbox"])
    events = [decode_event(event) for event in data["events"]]
    layers = ()
    bundle = None
    if data["telemetry"]:
        bundle = _ShardTelemetry(data["scope"])
        layers = bundle.layers()
    server = StreamingTCSCServer(bbox, layers=layers, **data["kwargs"])
    server.run(events)
    out = {
        "unit": "stream-drain",
        "shard": data["shard"],
        "state": server_state(server),
    }
    if bundle is not None:
        out["telemetry"] = bundle.export()
    return _dumps(out)


def decode_stream_result(result: str) -> dict:
    """Parse a :func:`run_stream_unit` result."""
    return json.loads(result)


class _ShardTelemetry:
    """One shard's worker-local telemetry bundle.

    The parent's :class:`~repro.obs.layer.Telemetry` cannot cross the
    process boundary, so the worker observes its shard with a private
    recorder / registry / profiler trio (same scope stamps the parent
    would use) and exports their exact state; the parent merges the
    exports in shard-id order (:func:`repro.par.stream.merge_shard_telemetry`),
    reproducing the serial drain's record interleaving — the masked
    trace stays deterministic *and* byte-identical to the serial arm.
    """

    def __init__(self, scope: str | None):
        from repro.obs.layer import TelemetryLayer
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.profile import PhaseProfiler
        from repro.obs.trace import TraceRecorder

        self.recorder = TraceRecorder(None)
        self.registry = MetricsRegistry()
        self.profiler = PhaseProfiler(
            recorder=self.recorder, registry=self.registry, scope=scope
        )
        self._layer = TelemetryLayer(
            recorder=self.recorder,
            registry=self.registry,
            profiler=self.profiler,
            scope=scope,
        )

    def layers(self) -> tuple:
        return (self._layer,)

    def export(self) -> dict:
        stats = {
            name: {
                "calls": stat.calls,
                "wall_s": stat.wall_s,
                "ops": stat.ops.to_dict(),
            }
            for name, stat in self.profiler.stats.items()
        }
        return {
            "records": self.recorder.records,
            "registry": self.registry.state(),
            "profiler": stats,
        }
