"""The executor-aware sharded streaming drain.

:func:`drain_sharded` replaces the shard-by-shard ``drive`` loop of
:meth:`~repro.shard.streaming.ShardedStreamingServer._drain` when the
server carries an :class:`~repro.par.executor.Executor`: each shard's
routed sub-trace becomes a JSON work unit (:mod:`repro.par.work`), the
executor runs the units wherever it runs (inline, threads, worker
processes), and the returned exact snapshots are restored into the
parent's matching cores **in shard-id order** — so plan signatures,
:class:`~repro.stream.metrics.StreamMetrics`, op counters, and the
modeled :class:`~repro.parallel.simcluster.SimCluster` makespan are
byte-identical to the serial drain, whatever order the workers
finished in.

Telemetry crosses the boundary the same way: each worker observes its
shard with a private recorder / registry / profiler
(:class:`repro.par.work._ShardTelemetry`) and
:func:`merge_shard_telemetry` folds the exports back into the parent
bundle in shard-id order.  The serial drain records shards strictly
one after another, so re-stamping the worker records in that same
order reproduces the serial record interleaving — the masked trace
stays byte-identical, and :meth:`~repro.obs.layer.Telemetry.finish`
still emits the phase summaries from the parent side exactly once.
"""

from __future__ import annotations

from repro.parallel.simcluster import SimCluster, WorkItem
from repro.par.work import (
    decode_stream_result,
    encode_stream_unit,
    run_stream_unit,
)

__all__ = ["drain_sharded", "merge_shard_telemetry"]


def drain_sharded(server, per_shard, metrics):
    """Drain every shard through ``server.executor``; merge exactly.

    ``server`` is a :class:`~repro.shard.streaming.ShardedStreamingServer`
    whose ``executor`` is set; ``per_shard`` / ``metrics`` come from its
    deterministic :meth:`route` pass.  Returns the merged
    :class:`~repro.shard.streaming.ShardedStreamMetrics`, shaped
    exactly as the serial drain would have shaped it.
    """
    from repro.journal.snapshot import restore_server_state

    telemetry = server.telemetry
    payloads = [
        encode_stream_unit(
            shard=shard,
            bbox=server.bbox,
            server_kwargs=server._server_kwargs,
            events=trace,
            telemetry=telemetry is not None,
            scope=None
            if telemetry is None
            else telemetry.profiler(shard).scope,
        )
        for shard, trace in enumerate(per_shard)
    ]
    results = server.executor.map_units(run_stream_unit, payloads)
    items: list[list[WorkItem]] = []
    for shard, result in enumerate(results):
        data = decode_stream_result(result)
        core = server.servers[shard]
        restore_server_state(core, data["state"])
        if telemetry is not None:
            merge_shard_telemetry(telemetry, shard, data["telemetry"])
        metrics.per_shard.append(core._metrics)
        items.append(
            [WorkItem(owner=shard, cost=core.counters.virtual_cost())]
        )
    cluster = SimCluster(server.num_shards)
    cluster.run_partitions(items)
    metrics.makespan = cluster.clock
    metrics.serial_cost = sum(item.cost for row in items for item in row)
    return metrics


def merge_shard_telemetry(telemetry, shard: int, export: dict) -> None:
    """Fold one shard's worker-side telemetry export into the parent.

    Called in shard-id order.  Trace records are re-stamped by the
    parent recorder (fresh monotonic ``seq``, write-through framing if
    the trace streams to disk); registry state merges by metric name;
    profiler stats accumulate into the parent's per-shard profiler so
    :meth:`~repro.obs.layer.Telemetry.finish` emits the ``phases``
    summaries in their usual end-of-run position.
    """
    from repro.core.instrumentation import OpCounters

    for record in export["records"]:
        payload = dict(record)
        record_type = payload.pop("type")
        payload.pop("seq")
        telemetry.recorder.record(record_type, **payload)
    telemetry.registry.merge_state(export["registry"])
    profiler = telemetry.profiler(shard)
    for name, stat_state in export["profiler"].items():
        stat = profiler.stats.setdefault(name, _fresh_stat())
        stat.calls += stat_state["calls"]
        stat.wall_s += stat_state["wall_s"]
        stat.ops.merge(OpCounters(**stat_state["ops"]))


def _fresh_stat():
    from repro.obs.profile import PhaseStat

    return PhaseStat()
