"""Checksummed write-ahead log and journal directory management.

Record framing
--------------

One record per line::

    <crc32 of the JSON, 8 hex digits> <canonical JSON>\\n

Canonical JSON is ``sort_keys=True`` with compact separators, so a
record's bytes — and therefore the journal's size, reported by the
bench suite — are a deterministic function of its payload (Python
floats round-trip exactly through ``json`` via shortest repr).

Torn tails vs corruption
------------------------

A crash can tear the *last* record (partial line, missing newline,
truncated JSON): :func:`WriteAheadLog.read` tolerates that by dropping
the tail and reporting ``truncated=True``; resuming first truncates
the file back to its last valid byte so new records append cleanly.
Damage anywhere *before* the tail — a failed checksum, unparsable
JSON, or a non-monotone sequence number — cannot be explained by a
single crash and raises :class:`~repro.errors.JournalCorruptionError`.

Record types
------------

``open`` (configuration header), ``event`` (one input event in
consumption order: task arrival, worker join/leave, budget refresh),
``commit`` (one executed subtask: worker, slot, cost), ``charge``
(a draw on the shared budget pool), ``finalize`` (a session retired),
``epoch`` (an epoch boundary).  Every record carries a monotonically
increasing ``seq``; snapshots reference the ``seq`` they cover, which
keeps recovery correct across :meth:`Journal.compact`.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

from repro.errors import ConfigurationError, JournalCorruptionError
from repro.stream.events import (
    BudgetRefresh,
    Event,
    TaskArrival,
    WorkerJoin,
    WorkerLeave,
)
from repro.model.task import Task
from repro.model.worker import Worker

__all__ = [
    "encode_event",
    "decode_event",
    "frame_record",
    "journal_kind",
    "unframe_record",
    "WriteAheadLog",
    "Journal",
]

_SNAPSHOT_PREFIX = "snapshot-"
_SNAPSHOT_SUFFIX = ".json"


def journal_kind(root: str | Path) -> str | None:
    """What journal (if any) lives at ``root``.

    ``"sharded"`` (a deployment's ``meta.json`` routing header),
    ``"plain"`` (a single server's ``wal.log``), or ``None``.  The
    single place that knows the on-disk layout — the CLI's
    resume/overwrite guards route through it.
    """
    root = Path(root)
    if (root / "meta.json").exists():
        return "sharded"
    if (root / "wal.log").exists():
        return "plain"
    return None


# ----------------------------------------------------------------------
# Event codec
# ----------------------------------------------------------------------
def encode_event(event: Event) -> dict:
    """JSON-ready representation of one input event.

    Payloads use only JSON-native shapes (lists, not tuples), so a
    record regenerated during replay compares ``==`` against its
    parsed journal counterpart.
    """
    if isinstance(event, TaskArrival):
        return {
            "kind": "arrival",
            "time": event.time,
            "task": event.task.to_dict(),
            "budget": event.budget,
        }
    if isinstance(event, WorkerJoin):
        return {"kind": "join", "time": event.time, "worker": event.worker.to_dict()}
    if isinstance(event, WorkerLeave):
        return {"kind": "leave", "time": event.time, "worker_id": event.worker_id}
    if isinstance(event, BudgetRefresh):
        return {"kind": "refresh", "time": event.time, "amount": event.amount}
    raise ConfigurationError(f"unknown event type {type(event).__name__}")


def decode_event(payload: dict) -> Event:
    """Inverse of :func:`encode_event`."""
    kind = payload["kind"]
    if kind == "arrival":
        return TaskArrival(
            time=payload["time"],
            task=Task.from_dict(payload["task"]),
            budget=payload["budget"],
        )
    if kind == "join":
        return WorkerJoin(time=payload["time"], worker=Worker.from_dict(payload["worker"]))
    if kind == "leave":
        return WorkerLeave(time=payload["time"], worker_id=payload["worker_id"])
    if kind == "refresh":
        return BudgetRefresh(time=payload["time"], amount=payload["amount"])
    raise JournalCorruptionError(f"unknown event kind {kind!r} in journal")


# ----------------------------------------------------------------------
# Framing helpers
# ----------------------------------------------------------------------
def _frame(payload: dict) -> bytes:
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return b"%08x %s\n" % (crc, body)


def _unframe(line: bytes) -> dict | None:
    """Parse one framed line; ``None`` when the line is damaged."""
    if len(line) < 10 or not line.endswith(b"\n") or line[8:9] != b" ":
        return None
    body = line[9:-1]
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        return None
    try:
        payload = json.loads(body)
    except json.JSONDecodeError:
        return None
    return payload if isinstance(payload, dict) else None


#: Public spellings of the framing pair: the canonical-JSON line
#: format is shared verbatim by the telemetry trace (repro.obs.trace),
#: so a trace line and a WAL line verify with the same code.
frame_record = _frame
unframe_record = _unframe


class WriteAheadLog:
    """Append-only log of framed records with durable positions.

    ``sync=True`` fsyncs after every append (real durability);
    the default flushes to the OS only, which is what the
    deterministic test and bench harnesses need.
    """

    def __init__(self, path: str | Path, *, sync: bool = False):
        self.path = Path(path)
        self.sync = sync
        self.records_appended = 0
        self.bytes_written = 0
        self._fh = None

    # -- writing -------------------------------------------------------
    def _handle(self):
        if self._fh is None:
            self._fh = open(self.path, "ab")
        return self._fh

    def append(self, record: dict) -> int:
        """Append one record; returns the bytes written."""
        frame = _frame(record)
        fh = self._handle()
        fh.write(frame)
        fh.flush()
        if self.sync:
            os.fsync(fh.fileno())
        self.records_appended += 1
        self.bytes_written += len(frame)
        return len(frame)

    def close(self) -> None:
        """Close the underlying file handle (appends reopen it)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- reading -------------------------------------------------------
    @classmethod
    def read(cls, path: str | Path) -> tuple[list[dict], int, bool]:
        """Read every record of the log at ``path``.

        Returns ``(records, valid_bytes, truncated)`` where
        ``valid_bytes`` is the offset just past the last intact record.
        A damaged or partial *final* record is tolerated (dropped,
        ``truncated=True``); damage before it, or a non-monotone
        ``seq``, raises :class:`JournalCorruptionError`.
        """
        path = Path(path)
        records: list[dict] = []
        valid_bytes = 0
        truncated = False
        with open(path, "rb") as fh:
            lines = fh.read().split(b"\n")
        # split() leaves a trailing '' for a newline-terminated file.
        tail = lines.pop() if lines else b""
        last_seq = -1
        for i, raw in enumerate(lines):
            record = _unframe(raw + b"\n")
            if record is None:
                if i == len(lines) - 1 and not tail:
                    truncated = True
                    break
                raise JournalCorruptionError(
                    f"{path}: damaged record at byte {valid_bytes} "
                    f"(not the final record — cannot be a torn tail)"
                )
            seq = record.get("seq")
            if not isinstance(seq, int) or seq <= last_seq:
                raise JournalCorruptionError(
                    f"{path}: non-monotone record sequence {seq!r} after {last_seq}"
                )
            last_seq = seq
            records.append(record)
            valid_bytes += len(raw) + 1
        if tail:
            truncated = True  # crash mid-write: no trailing newline
        return records, valid_bytes, truncated

    def truncate_to(self, valid_bytes: int) -> None:
        """Chop a torn tail so subsequent appends form valid frames."""
        self.close()
        with open(self.path, "rb+") as fh:
            fh.truncate(valid_bytes)


class Journal:
    """One journal directory: ``wal.log`` plus its snapshots.

    The journal owns record sequencing: :meth:`append` stamps each
    record with the next ``seq`` and :meth:`write_snapshot` stamps the
    snapshot with the last appended ``seq``, which is the replay
    cursor's starting position during recovery.
    """

    def __init__(self, root: str | Path, *, sync: bool = False):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.wal = WriteAheadLog(self.root / "wal.log", sync=sync)
        self.next_seq = 0
        self.snapshots_written = 0
        self.snapshot_bytes = 0

    # -- lifecycle -----------------------------------------------------
    @property
    def wal_path(self) -> Path:
        return self.wal.path

    def create(self, config: dict) -> None:
        """Start a fresh journal: truncate and write the ``open`` header.

        Snapshots of any previous incarnation are deleted too —
        recovery must never resurrect state the new log does not
        describe.
        """
        self.wal.close()
        self.wal_path.write_bytes(b"")
        for path in self.snapshot_paths():
            path.unlink()
        self.next_seq = 0
        self.append("open", format=1, config=config)

    def open_for_resume(self) -> tuple[list[dict], bool]:
        """Load the log for recovery and prepare it for appending.

        Returns ``(records, truncated)``; a torn tail is chopped off
        the file so the resumed run's appends stay well-framed.
        """
        if not self.wal_path.exists():
            raise JournalCorruptionError(
                f"{self.wal_path}: no write-ahead log to recover from "
                "(wrong journal path, or a sharded journal root — those "
                "hold shard-<i>/wal.log and are recovered through "
                "JournaledShardedStreamingServer)"
            )
        records, valid_bytes, truncated = WriteAheadLog.read(self.wal_path)
        if truncated:
            self.wal.truncate_to(valid_bytes)
        if not records or records[0].get("type") != "open":
            raise JournalCorruptionError(
                f"{self.wal_path}: missing 'open' header record"
            )
        self.next_seq = records[-1]["seq"] + 1
        return records, truncated

    # -- records -------------------------------------------------------
    def append(self, record_type: str, **payload) -> dict:
        """Stamp, frame, and append one typed record; returns it."""
        record = self.make_record(record_type, **payload)
        self.wal.append(record)
        return record

    def make_record(self, record_type: str, **payload) -> dict:
        """The record :meth:`append` *would* write, without writing it.

        The replay path regenerates records and verifies them against
        the journal instead of re-appending; the stamped ``seq``
        advances identically either way.
        """
        record = {"type": record_type, "seq": self.next_seq, **payload}
        self.next_seq += 1
        return record

    # -- snapshots -----------------------------------------------------
    def _snapshot_path(self, wal_seq: int) -> Path:
        return self.root / f"{_SNAPSHOT_PREFIX}{wal_seq:012d}{_SNAPSHOT_SUFFIX}"

    def write_snapshot(self, state: dict) -> Path:
        """Persist a checksummed snapshot covering the log so far."""
        payload = {"wal_seq": self.next_seq - 1, "state": state}
        frame = _frame(payload)
        path = self._snapshot_path(payload["wal_seq"])
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(frame)
        os.replace(tmp, path)
        self.snapshots_written += 1
        self.snapshot_bytes += len(frame)
        return path

    def snapshot_paths(self) -> list[Path]:
        """Snapshot files, oldest first."""
        return sorted(self.root.glob(f"{_SNAPSHOT_PREFIX}*{_SNAPSHOT_SUFFIX}"))

    def latest_snapshot(self) -> dict | None:
        """Newest intact snapshot payload, or ``None``.

        A torn snapshot (crash during :meth:`write_snapshot` of a
        non-atomic filesystem) is skipped in favour of the next older
        one — recovery then simply replays a longer log suffix.
        """
        for path in reversed(self.snapshot_paths()):
            payload = _unframe(path.read_bytes())
            if payload is not None and "wal_seq" in payload and "state" in payload:
                return payload
        return None

    # -- compaction ----------------------------------------------------
    def compact(self) -> int:
        """Drop log records already covered by the newest snapshot.

        Rewrites ``wal.log`` keeping the ``open`` header and every
        record with ``seq`` beyond the snapshot's ``wal_seq``; returns
        the number of records dropped.  Older snapshot files are
        removed as well (they could no longer seed a full replay).
        """
        snapshot = self.latest_snapshot()
        if snapshot is None:
            return 0
        records, _, _ = WriteAheadLog.read(self.wal_path)
        if not records:
            # A fully torn log next to a surviving snapshot: nothing to
            # anchor compaction on (the open header is gone too).
            raise JournalCorruptionError(
                f"{self.wal_path}: cannot compact an empty or fully "
                "damaged log"
            )
        keep = [records[0]] + [
            r for r in records[1:] if r["seq"] > snapshot["wal_seq"]
        ]
        dropped = len(records) - len(keep)
        self.wal.close()
        tmp = self.wal_path.with_suffix(".tmp")
        with open(tmp, "wb") as fh:
            for record in keep:
                fh.write(_frame(record))
        os.replace(tmp, self.wal_path)
        newest = self._snapshot_path(snapshot["wal_seq"])
        for path in self.snapshot_paths():
            if path != newest:
                path.unlink()
        return dropped
