"""Exact state codec for streaming servers.

A snapshot must let a recovered server *continue* producing the same
byte-identical ``plan_signature()``, ``StreamMetrics``, and
``OpCounters`` as the uninterrupted run.  That is a stronger contract
than "logically equal": future operation counts depend on microscopic
state — which offers sit in a session's cost cache, whether its tree
index exists, every accumulated float.  The codec therefore restores
each component by the cheapest *bit-exact* route:

* **Floats** ride through JSON untouched (Python emits the shortest
  round-tripping repr), so accumulated quantities (budgets, pool
  balances, metric sums) are stored directly.
* **Quality evaluators and Voronoi diagrams** are rebuilt by
  *re-executing the recorded (slot, reliability) history in order* —
  every float is the result of the same operation sequence, hence
  bit-identical — against a scratch counter so restoration is not
  accounted as solver work.
* **Tree indexes** are copied verbatim (:meth:`TreeIndex.to_state`):
  their paint-tree accumulators carry round-off *history* that a
  rebuild cannot reproduce.
* **Cost caches** are copied entry-for-entry: a cache hit vs miss is
  an observable op-count difference.
* **Registries** are rebuilt from the worker roster in original
  insertion order; per-slot spatial indexes re-materialize lazily
  (their queries are insertion-order-independent), with consumed
  workers re-removed eagerly since lazy construction only filters
  departures.

The server-level entry points are :func:`server_state` /
:func:`restore_server_state`; configuration (constructor arguments) is
journaled separately by :mod:`repro.journal.server`.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields

from repro.core.instrumentation import OpCounters
from repro.core.tree_index import TreeIndex
from repro.engine.costs import SlotOffer
from repro.engine.registry import WorkerRegistry
from repro.journal.wal import decode_event, encode_event
from repro.model.assignment import AssignmentRecord
from repro.model.task import Task
from repro.model.worker import Worker, WorkerPool
from repro.stream.clock import VirtualClock
from repro.stream.metrics import StreamMetrics
from repro.stream.session import TaskSession

__all__ = ["server_state", "restore_server_state"]

_METRIC_SCALARS = (
    "epochs",
    "tasks_arrived",
    "tasks_admitted",
    "tasks_rejected",
    "tasks_completed",
    "tasks_starved",
    "workers_joined",
    "workers_left",
    "budget_spent",
)


# ----------------------------------------------------------------------
# Counters and metrics
# ----------------------------------------------------------------------
def _counters_state(counters: OpCounters) -> dict:
    return {f.name: getattr(counters, f.name) for f in dataclass_fields(OpCounters)}

def _restore_counters(counters: OpCounters, state: dict) -> None:
    """In place, preserving object identity (sessions and metrics share
    the server's counter record)."""
    for f in dataclass_fields(OpCounters):
        setattr(counters, f.name, state[f.name])


def _metrics_state(metrics: StreamMetrics) -> dict:
    state = {name: getattr(metrics, name) for name in _METRIC_SCALARS}
    state["events_processed"] = dict(metrics.events_processed)
    state["queue_depth_samples"] = [[t, d] for t, d in metrics.queue_depth_samples]
    state["assignment_latencies"] = list(metrics.assignment_latencies)
    for name in ("promised_quality", "realized_quality", "coverage_cells"):
        state[name] = [[k, v] for k, v in getattr(metrics, name).items()]
    return state

def _restore_metrics(counters: OpCounters, state: dict) -> StreamMetrics:
    metrics = StreamMetrics(counters=counters)
    for name in _METRIC_SCALARS:
        setattr(metrics, name, state[name])
    metrics.events_processed = dict(state["events_processed"])
    metrics.queue_depth_samples = [(t, d) for t, d in state["queue_depth_samples"]]
    metrics.assignment_latencies = list(state["assignment_latencies"])
    for name in ("promised_quality", "realized_quality", "coverage_cells"):
        setattr(metrics, name, {k: v for k, v in state[name]})
    return metrics


# ----------------------------------------------------------------------
# Sessions
# ----------------------------------------------------------------------
def _offer_state(offer: SlotOffer | None) -> list | None:
    if offer is None:
        return None
    return [offer.worker_id, offer.cost, offer.reliability]


def _session_state(session: TaskSession, registry: WorkerRegistry) -> dict:
    """Capture one live session.

    The execution history pairs each record's slot with the assigned
    worker's (static) reliability — exactly the arguments the original
    ``ev.execute`` calls received, in order.
    """
    return {
        "task": session.task.to_dict(),
        "arrival_time": session.arrival_time,
        "budget_limit": session.budget.limit,
        "budget_spent": session.budget.spent,
        "history": [
            [r.slot, registry.worker(r.worker_id).reliability]
            for r in session.records
        ],
        "records": [r.to_dict() for r in session.records],
        "first_assign_time": session.first_assign_time,
        "mask_hi": session.costs.mask_hi,
        "cache": [
            [slot, _offer_state(offer)]
            for slot, offer in sorted(session.provider._cache.items())
        ],
        "dirty": sorted(session._dirty),
        "index": None if session._index is None else session._index.to_state(),
    }


def _restore_session(state: dict, registry: WorkerRegistry, server) -> TaskSession:
    scratch = OpCounters()
    session = TaskSession(
        Task.from_dict(state["task"]),
        registry,
        k=server.k,
        ts=server.ts,
        budget=state["budget_limit"],
        arrival_time=state["arrival_time"],
        index_mode=server.index_mode,
        rebuild_threshold=server.rebuild_threshold,
        backend=server.backend,
        counters=scratch,
    )
    for slot, reliability in state["history"]:
        session.ev.execute(slot, reliability)
        session.voronoi.insert_site(slot)
    session.budget._spent = state["budget_spent"]
    session.records = [AssignmentRecord.from_dict(r) for r in state["records"]]
    session.first_assign_time = state["first_assign_time"]
    session.costs.mask_hi = state["mask_hi"]
    session.provider._cache = {
        slot: None if offer is None else SlotOffer(offer[0], offer[1], offer[2])
        for slot, offer in state["cache"]
    }
    session._dirty = set(state["dirty"])
    if state["index"] is not None:
        session._index = TreeIndex.from_state(
            session.ev, session.costs, state["index"], counters=scratch
        )
    # Restoration work stays on the scratch counter; future work must
    # land on the server's shared record.
    session.counters = server.counters
    session.ev.counters = server.counters
    session.provider.counters = server.counters
    if session._index is not None:
        session._index.counters = server.counters
    return session


class _FinishedSession:
    """Skeleton of a retired session — recovery only ever reads its
    task and committed records (for ``assignment()`` / realization)."""

    __slots__ = ("task", "records")

    def __init__(self, task: Task, records: list[AssignmentRecord]):
        self.task = task
        self.records = records


# ----------------------------------------------------------------------
# The server
# ----------------------------------------------------------------------
def server_state(server) -> dict:
    """Capture a :class:`StreamingTCSCServer` between epochs."""
    registry = server.registry
    return {
        "clock": server.clock.now,
        "pool": None
        if server.pool is None
        else {"remaining": server.pool.remaining, "refreshed": server.pool.refreshed},
        "workers": [w.to_dict() for w in server._workers_seen.values()],
        "departed": sorted(registry._departed),
        "consumed": [
            [gslot, sorted(ids)]
            for gslot, ids in sorted(registry._consumed.items())
            if ids
        ],
        "pending": [encode_event(e) for e in server._pending],
        "active": [_session_state(s, registry) for s in server._active],
        "finished": [
            {"task": s.task.to_dict(), "records": [r.to_dict() for r in s.records]}
            for s in server._finished
        ],
        "counters": _counters_state(server.counters),
        "metrics": _metrics_state(server._metrics)
        if server._metrics is not None
        else None,
    }


def restore_server_state(server, state: dict) -> None:
    """Rehydrate a freshly constructed server to the captured instant.

    The server must have been built with the same configuration the
    snapshot's run used; afterwards ``server.run(...)`` continues the
    interrupted trace exactly.
    """
    server.clock = VirtualClock(state["clock"])
    if state["pool"] is not None:
        server.pool._remaining = state["pool"]["remaining"]
        server.pool.refreshed = state["pool"]["refreshed"]

    workers = [Worker.from_dict(w) for w in state["workers"]]
    registry = WorkerRegistry(WorkerPool([]), server.bbox)
    for worker in workers:
        registry.add_worker(worker)
    registry._departed = set(state["departed"])
    for gslot, ids in state["consumed"]:
        # Lazy index construction only filters departed workers, so
        # consumed ones must be re-removed from a materialized index.
        index = registry._index_for(gslot)
        for worker_id in ids:
            if worker_id in index:
                index.remove(worker_id)
        registry._consumed[gslot] = set(ids)
    server.registry = registry
    server._workers_seen = {w.worker_id: w for w in workers}

    server._pending = [decode_event(e) for e in state["pending"]]
    server._active = [_restore_session(s, registry, server) for s in state["active"]]
    server._finished = [
        _FinishedSession(
            Task.from_dict(f["task"]),
            [AssignmentRecord.from_dict(r) for r in f["records"]],
        )
        for f in state["finished"]
    ]
    _restore_counters(server.counters, state["counters"])
    if state["metrics"] is not None:
        server._metrics = _restore_metrics(server.counters, state["metrics"])
    server._ran = False
