"""Durable serving: write-ahead journal, snapshots, crash-consistent replay.

The streaming and sharded servers are in-memory; a crash mid-stream
loses every committed assignment, budget balance, and live session.
This package adds an *event-sourced* durability layer whose recovery
is **provably exact** rather than best-effort: because every solver in
the repo is deterministic in its input events (the determinism policy,
DESIGN.md §7), a recovered run reproduces the uninterrupted run's
``plan_signature()``, ``StreamMetrics``, and ``OpCounters``
byte-for-byte — and the tests and benchmarks hard-assert it.

Three pieces:

* :mod:`repro.journal.wal` — a checksummed append-only write-ahead
  log with typed records (events, slot commits, budget charges,
  finalizations, epoch markers), truncated-tail tolerance, and
  compaction; plus the :class:`~repro.journal.wal.Journal` directory
  manager that pairs the log with its snapshots.
* :mod:`repro.journal.snapshot` — an exact state codec for
  :class:`~repro.stream.online_server.StreamingTCSCServer`: worker
  registry, live sessions (quality evaluators re-executed bit-for-bit,
  tree indexes copied verbatim), budget pools, metrics, and counters.
* :mod:`repro.journal.server` — :class:`JournaledStreamingServer`
  (logs before applying, snapshots at epoch boundaries, recovers via
  latest-snapshot + log-suffix replay) and the fault-injection crash
  harness; :mod:`repro.journal.sharded` extends it to the sharded
  streaming deployment with one journal per shard.
"""

from repro.journal.layer import (
    CrashBudget,
    InjectedCrash,
    JournalLayer,
    RecoveryInfo,
    journal_layer,
    journaled_server,
    recover_server,
)
from repro.journal.server import JournaledStreamingServer
from repro.journal.sharded import (
    JournaledShardedStreamingServer,
    recover_sharded_server,
    resume_sharded,
    sharded_journaled_server,
)
from repro.journal.snapshot import restore_server_state, server_state
from repro.journal.wal import Journal, WriteAheadLog, decode_event, encode_event

__all__ = [
    "CrashBudget",
    "InjectedCrash",
    "Journal",
    "JournalLayer",
    "JournaledShardedStreamingServer",
    "JournaledStreamingServer",
    "RecoveryInfo",
    "WriteAheadLog",
    "decode_event",
    "encode_event",
    "journal_layer",
    "journaled_server",
    "recover_sharded_server",
    "recover_server",
    "restore_server_state",
    "resume_sharded",
    "server_state",
    "sharded_journaled_server",
]
