"""Durable sharded streaming: one journal per shard.

A :class:`JournaledShardedStreamingServer` is a
:class:`~repro.shard.streaming.ShardedStreamingServer` whose per-shard
servers are :class:`~repro.journal.server.JournaledStreamingServer`
instances, each owning ``<root>/shard-<i>``; the deployment-level
routing configuration lands in ``<root>/meta.json`` so recovery needs
only the journal root (plus the regenerable trace).

Because routing is a pure function of the trace and the partitioner
(DESIGN.md §6.3), recovery re-routes the full trace and resumes every
shard against its own journal: shards that finished before the crash
reload their final snapshot and merely re-realize, the crashed shard
replays its log suffix, and shards that never started recover to a
fresh state and consume their whole sub-trace.  The merged metrics,
op-count makespan, and combined plan are byte-identical to an
uninterrupted run — the journal bench suite asserts it for shard
counts 1, 2, and 4 at every event boundary.

Fault injection shares one :class:`~repro.journal.server.CrashBudget`
across the shard servers, so ``crash_after_events=K`` counts event
boundaries in the deployment's serial run order.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import JournalCorruptionError, SchedulingError
from repro.geo.bbox import BoundingBox
from repro.journal.server import CrashBudget, JournaledStreamingServer
from repro.shard.streaming import ShardedStreamingServer, ShardedStreamMetrics

__all__ = ["JournaledShardedStreamingServer"]


class JournaledShardedStreamingServer(ShardedStreamingServer):
    """Sharded streaming with per-shard write-ahead journals."""

    def __init__(
        self,
        bbox: BoundingBox,
        *,
        journal_root: str | Path,
        num_shards: int,
        cells_per_side: int | None = None,
        halo_margin: str | float = "auto",
        snapshot_every: int = 4,
        sync: bool = False,
        crash_after_events: int | CrashBudget | None = None,
        crash_phase: str = "apply",
        _resume: bool = False,
        **server_kwargs,
    ):
        # The per-shard factory (called from super().__init__) reads
        # the journal configuration, so it must land first.
        self.journal_root = Path(journal_root)
        self.journal_root.mkdir(parents=True, exist_ok=True)
        self.snapshot_every = snapshot_every
        self._sync = sync
        self._crash = CrashBudget.coerce(crash_after_events, crash_phase)
        self._resuming = _resume
        super().__init__(
            bbox,
            num_shards=num_shards,
            cells_per_side=cells_per_side,
            halo_margin=halo_margin,
            **server_kwargs,
        )
        if not _resume:
            self._write_meta(
                {
                    "bbox": [bbox.min_x, bbox.min_y, bbox.max_x, bbox.max_y],
                    "num_shards": num_shards,
                    "cells_per_side": cells_per_side,
                    # Resolved to a plain radius so recovery cannot
                    # re-derive it differently.
                    "halo_margin": self.halo_margin,
                    "snapshot_every": snapshot_every,
                    "server_kwargs": server_kwargs,
                }
            )

    def _build_servers(self, bbox, num_shards, server_kwargs):
        """One journaled server per shard — recovered from its own
        journal when resuming, freshly journaled otherwise."""
        if self._resuming:
            return [
                JournaledStreamingServer.recover(
                    self.journal_root / f"shard-{shard}",
                    sync=self._sync,
                    snapshot_every=self.snapshot_every,
                    crash_after_events=self._crash,
                )
                for shard in range(num_shards)
            ]
        return [
            JournaledStreamingServer(
                bbox,
                journal=self.journal_root / f"shard-{shard}",
                snapshot_every=self.snapshot_every,
                sync=self._sync,
                crash_after_events=self._crash,
                **server_kwargs,
            )
            for shard in range(num_shards)
        ]

    def _write_meta(self, meta: dict) -> None:
        path = self.journal_root / "meta.json"
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        journal_root: str | Path,
        *,
        sync: bool = False,
        snapshot_every: int | None = None,
        crash_after_events: int | CrashBudget | None = None,
        crash_phase: str = "apply",
    ) -> "JournaledShardedStreamingServer":
        """Rebuild the deployment from its journal root.

        ``snapshot_every=None`` keeps the interrupted run's cadence;
        ``crash_after_events`` arms fault injection *during the
        resumed run* (double-fault testing), counting boundaries
        across shards as usual.
        """
        root = Path(journal_root)
        meta_path = root / "meta.json"
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise JournalCorruptionError(
                f"{meta_path}: unreadable sharded-journal metadata: {exc}"
            ) from exc
        return cls(
            BoundingBox(*meta["bbox"]),
            journal_root=root,
            num_shards=meta["num_shards"],
            cells_per_side=meta["cells_per_side"],
            halo_margin=meta["halo_margin"],
            snapshot_every=meta["snapshot_every"]
            if snapshot_every is None
            else snapshot_every,
            sync=sync,
            crash_after_events=crash_after_events,
            crash_phase=crash_phase,
            _resume=True,
            **meta["server_kwargs"],
        )

    def resume(self, events) -> ShardedStreamMetrics:
        """Re-route the full trace and resume every shard.

        Routing is deterministic, so each recovered shard server skips
        the pops its journal already accounts for and continues live;
        the merged metrics match an uninterrupted run exactly.
        """
        if self._ran:
            raise SchedulingError(
                "JournaledShardedStreamingServer.resume is one-shot; "
                "recover a fresh instance per attempt"
            )
        self._ran = True
        return self._drain(
            events, lambda server, trace: server.resume_with_trace(trace)
        )

    @property
    def recovery(self):
        """Per-shard :class:`~repro.journal.server.RecoveryInfo`."""
        return [server.recovery for server in self.servers]
