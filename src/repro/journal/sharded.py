"""Durable sharded streaming: one journal layer per shard.

PR 4 paired durability with sharding through a dedicated subclass;
after the PR-5 refactor the pairing is pure composition: a
:class:`~repro.shard.streaming.ShardedStreamingServer` whose
``server_factory`` attaches a :class:`~repro.journal.layer.JournalLayer`
to each shard's core, each owning ``<root>/shard-<i>``, with the
deployment-level routing configuration in ``<root>/meta.json`` so
recovery needs only the journal root (plus the regenerable trace).

Because routing is a pure function of the trace and the partitioner
(DESIGN.md §6.3), recovery re-routes the full trace and resumes every
shard against its own journal: shards that finished before the crash
reload their final snapshot and merely re-realize, the crashed shard
replays its log suffix, and shards that never started recover to a
fresh state and consume their whole sub-trace.  The merged metrics,
op-count makespan, and combined plan are byte-identical to an
uninterrupted run — the journal bench suite asserts it for shard
counts 1, 2, and 4 at every event boundary.

Fault injection shares one :class:`~repro.journal.layer.CrashBudget`
across the shard layers, so ``crash_after_events=K`` counts event
boundaries in the deployment's serial run order.

Module functions (:func:`sharded_journaled_server`,
:func:`recover_sharded_server`, :func:`resume_sharded`) are what
:func:`repro.runtime.build_runtime` composes;
:class:`JournaledShardedStreamingServer` survives as a thin
deprecation shim over them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import JournalCorruptionError, SchedulingError
from repro.geo.bbox import BoundingBox
from repro.journal.layer import (
    CrashBudget,
    journal_layer,
    journaled_server,
    recover_server,
)
from repro.runtime.layers import warn_deprecated
from repro.shard.streaming import ShardedStreamingServer, ShardedStreamMetrics

__all__ = [
    "JournaledShardedStreamingServer",
    "read_sharded_meta",
    "recover_sharded_server",
    "resume_sharded",
    "sharded_journaled_server",
]


# ----------------------------------------------------------------------
# Deployment metadata (<root>/meta.json)
# ----------------------------------------------------------------------
def _write_sharded_meta(root: Path, meta: dict) -> None:
    path = root / "meta.json"
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def read_sharded_meta(journal_root: str | Path) -> dict:
    """The deployment's routing configuration (typed failure)."""
    meta_path = Path(journal_root) / "meta.json"
    try:
        return json.loads(meta_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise JournalCorruptionError(
            f"{meta_path}: unreadable sharded-journal metadata: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Per-shard composition
# ----------------------------------------------------------------------
def _shard_factory(
    root: Path,
    *,
    snapshot_every: int,
    sync: bool,
    crash_budget: CrashBudget | None,
    resuming: bool,
    telemetry=None,
):
    """A ``server_factory`` that journals every shard core.

    Fresh deployments build core + layer and write each shard's open
    header; resuming ones recover each core from its own journal
    (``snapshot_every`` then overrides the interrupted cadence).  A
    :class:`~repro.obs.layer.Telemetry` bundle composes per-shard
    observability onto fresh cores (never persisted — a recovered run
    attaches its own).
    """

    def factory(shard: int, bbox, server_kwargs: dict):
        path = root / f"shard-{shard}"
        if resuming:
            return recover_server(
                path,
                sync=sync,
                snapshot_every=snapshot_every,
                crash_after_events=crash_budget,
            )
        return journaled_server(
            bbox,
            journal=path,
            snapshot_every=snapshot_every,
            sync=sync,
            crash_after_events=crash_budget,
            wrap_layer=None if telemetry is None else telemetry.journal_wrap(shard),
            extra_layers=() if telemetry is None else telemetry.layers(shard),
            **server_kwargs,
        )

    return factory


def sharded_journaled_server(
    bbox: BoundingBox,
    *,
    journal_root: str | Path,
    num_shards: int,
    cells_per_side: int | None = None,
    halo_margin: str | float = "auto",
    snapshot_every: int = 4,
    sync: bool = False,
    crash_after_events: int | CrashBudget | None = None,
    crash_phase: str = "apply",
    telemetry=None,
    **server_kwargs,
) -> ShardedStreamingServer:
    """A fresh sharded deployment with one journal layer per shard.

    ``telemetry`` composes per-shard observability onto each core; it
    is deliberately absent from ``meta.json`` — observability is a
    per-run choice, not part of the durable configuration.
    """
    root = Path(journal_root)
    root.mkdir(parents=True, exist_ok=True)
    crash = CrashBudget.coerce(crash_after_events, crash_phase)
    server = ShardedStreamingServer(
        bbox,
        num_shards=num_shards,
        cells_per_side=cells_per_side,
        halo_margin=halo_margin,
        server_factory=_shard_factory(
            root,
            snapshot_every=snapshot_every,
            sync=sync,
            crash_budget=crash,
            resuming=False,
            telemetry=telemetry,
        ),
        **server_kwargs,
    )
    _write_sharded_meta(
        root,
        {
            "bbox": [bbox.min_x, bbox.min_y, bbox.max_x, bbox.max_y],
            "num_shards": num_shards,
            "cells_per_side": cells_per_side,
            # Resolved to a plain radius so recovery cannot re-derive
            # it differently.
            "halo_margin": server.halo_margin,
            "snapshot_every": snapshot_every,
            "server_kwargs": dict(server_kwargs),
        },
    )
    return server


def recover_sharded_server(
    journal_root: str | Path,
    *,
    sync: bool = False,
    snapshot_every: int | None = None,
    crash_after_events: int | CrashBudget | None = None,
    crash_phase: str = "apply",
) -> ShardedStreamingServer:
    """Rebuild the deployment from its journal root.

    ``snapshot_every=None`` keeps the interrupted run's cadence;
    ``crash_after_events`` arms fault injection *during the resumed
    run* (double-fault testing), counting boundaries across shards as
    usual.  Drive the result with :func:`resume_sharded`.
    """
    root = Path(journal_root)
    meta = read_sharded_meta(root)
    crash = CrashBudget.coerce(crash_after_events, crash_phase)
    cadence = meta["snapshot_every"] if snapshot_every is None else snapshot_every
    return ShardedStreamingServer(
        BoundingBox(*meta["bbox"]),
        num_shards=meta["num_shards"],
        cells_per_side=meta["cells_per_side"],
        halo_margin=meta["halo_margin"],
        server_factory=_shard_factory(
            root,
            snapshot_every=cadence,
            sync=sync,
            crash_budget=crash,
            resuming=True,
        ),
        **meta["server_kwargs"],
    )


def resume_sharded(
    server: ShardedStreamingServer, events
) -> ShardedStreamMetrics:
    """Re-route the full trace and resume every recovered shard.

    Routing is deterministic, so each shard's journal layer skips the
    pops its log already accounts for and continues live; the merged
    metrics match an uninterrupted run exactly.
    """
    if server._ran:
        raise SchedulingError(
            "a recovered sharded deployment resumes once; recover a "
            "fresh instance per attempt"
        )
    server._ran = True
    return server._drain(
        events, lambda shard, trace: journal_layer(shard).resume_with_trace(trace)
    )


# ----------------------------------------------------------------------
# The legacy spelling (thin deprecation shim)
# ----------------------------------------------------------------------
class JournaledShardedStreamingServer(ShardedStreamingServer):
    """Deprecated: sharded streaming with per-shard journal layers."""

    def __init__(
        self,
        bbox: BoundingBox,
        *,
        journal_root: str | Path,
        num_shards: int,
        cells_per_side: int | None = None,
        halo_margin: str | float = "auto",
        snapshot_every: int = 4,
        sync: bool = False,
        crash_after_events: int | CrashBudget | None = None,
        crash_phase: str = "apply",
        _resume: bool = False,
        **server_kwargs,
    ):
        warn_deprecated(
            "JournaledShardedStreamingServer",
            "build_runtime(RunSpec(mode='stream', shards=N, journal=...)) "
            "or repro.journal.sharded.sharded_journaled_server(...)",
        )
        self.journal_root = Path(journal_root)
        self.journal_root.mkdir(parents=True, exist_ok=True)
        self.snapshot_every = snapshot_every
        self._sync = sync
        self._crash = CrashBudget.coerce(crash_after_events, crash_phase)
        super().__init__(
            bbox,
            num_shards=num_shards,
            cells_per_side=cells_per_side,
            halo_margin=halo_margin,
            server_factory=_shard_factory(
                self.journal_root,
                snapshot_every=snapshot_every,
                sync=sync,
                crash_budget=self._crash,
                resuming=_resume,
            ),
            **server_kwargs,
        )
        if not _resume:
            _write_sharded_meta(
                self.journal_root,
                {
                    "bbox": [bbox.min_x, bbox.min_y, bbox.max_x, bbox.max_y],
                    "num_shards": num_shards,
                    "cells_per_side": cells_per_side,
                    "halo_margin": self.halo_margin,
                    "snapshot_every": snapshot_every,
                    "server_kwargs": dict(server_kwargs),
                },
            )

    @classmethod
    def recover(
        cls,
        journal_root: str | Path,
        *,
        sync: bool = False,
        snapshot_every: int | None = None,
        crash_after_events: int | CrashBudget | None = None,
        crash_phase: str = "apply",
    ) -> "JournaledShardedStreamingServer":
        """Rebuild the deployment from its journal root (see
        :func:`recover_sharded_server`)."""
        meta = read_sharded_meta(journal_root)
        return cls(
            BoundingBox(*meta["bbox"]),
            journal_root=journal_root,
            num_shards=meta["num_shards"],
            cells_per_side=meta["cells_per_side"],
            halo_margin=meta["halo_margin"],
            snapshot_every=meta["snapshot_every"]
            if snapshot_every is None
            else snapshot_every,
            sync=sync,
            crash_after_events=crash_after_events,
            crash_phase=crash_phase,
            _resume=True,
            **meta["server_kwargs"],
        )

    def resume(self, events) -> ShardedStreamMetrics:
        """Re-route the full trace and resume every shard."""
        return resume_sharded(self, events)

    @property
    def recovery(self):
        """Per-shard :class:`~repro.journal.layer.RecoveryInfo`."""
        return [journal_layer(server).recovery for server in self.servers]
