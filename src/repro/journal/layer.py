"""Durability as a composable layer: log-before-apply at the seam.

PR 4 implemented journaling as a :class:`StreamingTCSCServer`
*subclass*; this module re-expresses it as a
:class:`~repro.runtime.layers.ServingLayer` so durability composes
with any other capability through
:func:`repro.runtime.build_runtime` instead of requiring one class
per pairing.  The semantics are unchanged — every record type, the
log-before-apply ordering, replay verification, snapshot cadence, and
fault injection are byte-for-byte the PR-4 behaviour (the equivalence
matrix and the journal suite hard-assert it) — only the attachment
mechanism moved from inheritance to composition.

Construction helpers:

* :func:`journaled_server` — a fresh streaming core with a bound
  :class:`JournalLayer` (writes the journal's ``open`` header).
* :func:`recover_server` — rebuild core + layer from a journal
  directory (latest snapshot + armed replay cursor).
* :func:`journal_layer` — fetch the journal layer off a layered
  server (the sharded deployment and the CLI use it).

The legacy class spellings (:class:`~repro.journal.server.
JournaledStreamingServer` and friends) are thin deprecation shims
over these helpers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError, JournalReplayError, TCSCError
from repro.geo.bbox import BoundingBox
from repro.journal.snapshot import restore_server_state, server_state
from repro.journal.wal import Journal, decode_event, encode_event
from repro.runtime.layers import ServingLayer
from repro.stream.events import Event, EventQueue
from repro.stream.metrics import StreamMetrics
from repro.stream.online_server import StreamingTCSCServer

__all__ = [
    "CrashBudget",
    "InjectedCrash",
    "JournalLayer",
    "RecoveryInfo",
    "journal_layer",
    "journaled_server",
    "recover_server",
    "stream_server_config",
]


class InjectedCrash(TCSCError):
    """The fault-injection harness killed the run (not a real failure)."""


class CrashBudget:
    """Countdown of event boundaries until an injected crash.

    ``phase="apply"`` crashes after ``after`` events are logged *and*
    applied; ``"append"`` crashes right after the ``after``-th event's
    record hits the log, before it is applied.  One budget may be
    shared by several servers (the sharded harness), in which case the
    boundaries are counted across all of them in their serial run
    order.
    """

    __slots__ = ("after", "phase", "seen")

    def __init__(self, after: int, phase: str = "apply"):
        if after < 0:
            raise ConfigurationError(f"crash budget must be >= 0, got {after}")
        if phase not in ("apply", "append"):
            raise ConfigurationError(f"unknown crash phase {phase!r}")
        self.after = after
        self.phase = phase
        self.seen = 0

    @classmethod
    def coerce(
        cls, value: "int | CrashBudget | None", phase: str
    ) -> "CrashBudget | None":
        """Normalize the ``crash_after_events`` constructor argument."""
        if value is None or isinstance(value, CrashBudget):
            return value
        return cls(value, phase)


@dataclass(frozen=True, slots=True)
class RecoveryInfo:
    """What one recovery (:func:`recover_server`) did."""

    snapshot_loaded: bool
    #: Input events subsumed by the snapshot (not replayed).
    events_restored: int
    #: Input events re-consumed from the log suffix.
    events_replayed: int
    #: Total log records scanned (checksummed) during recovery.
    records_scanned: int
    #: Whether a torn tail was chopped off the log.
    wal_truncated: bool


def stream_server_config(
    bbox: BoundingBox, snapshot_every: int, server_kwargs: dict
) -> dict:
    """The journal ``open``-header config: everything recovery needs
    to rebuild the core server.  New base-server knobs need no
    bookkeeping here — unspecified kwargs default identically on the
    original and the recovered run."""
    return {
        "bbox": [bbox.min_x, bbox.min_y, bbox.max_x, bbox.max_y],
        "snapshot_every": snapshot_every,
        "server_kwargs": dict(server_kwargs),
    }


class JournalLayer(ServingLayer):
    """Write-ahead journaling attached at the serving seam.

    Every state transition of the bound core is wrapped in a typed
    record — input events before they are applied, slot commits before
    the worker is consumed, pool charges, finalizations, and epoch
    markers — and a full :mod:`~repro.journal.snapshot` is persisted
    every ``snapshot_every`` epochs (``0`` disables periodic
    snapshots; a final one is still written when the run completes).

    Recovery is *redo-based*: load the newest intact snapshot, then
    re-consume the log's event suffix through the ordinary run loop.
    While the replay cursor is non-empty the layer does not re-append
    records; each record it *would* write is verified against the
    journaled one, so any divergence (edited log, changed code or
    configuration) surfaces as a
    :class:`~repro.errors.JournalReplayError` instead of silently
    forking history.  Once the cursor drains, appending resumes
    seamlessly and the run continues into un-journaled territory.

    Fault injection: ``crash_after_events=K`` raises
    :class:`InjectedCrash` at the K-th event boundary —
    ``crash_phase="apply"`` crashes with K events fully applied,
    ``"append"`` with the K-th event journaled but never applied (the
    torn write recovery must tolerate).  A shared :class:`CrashBudget`
    lets the sharded deployment count boundaries across shards.
    """

    def __init__(
        self,
        journal: str | Path | Journal,
        *,
        snapshot_every: int = 4,
        sync: bool = False,
        crash_after_events: int | CrashBudget | None = None,
        crash_phase: str = "apply",
    ):
        if snapshot_every < 0:
            raise ConfigurationError(
                f"snapshot_every must be >= 0, got {snapshot_every}"
            )
        self.journal = (
            journal if isinstance(journal, Journal) else Journal(journal, sync=sync)
        )
        self.snapshot_every = snapshot_every
        self._crash = CrashBudget.coerce(crash_after_events, crash_phase)
        self._server: StreamingTCSCServer | None = None
        self._events_consumed = 0
        self._replay: deque[dict] = deque()
        self._replay_events: list[Event] = []
        self._wal_events: list[Event] = []
        self._pending_recovery: tuple[list[dict], bool] | None = None
        self.recovery: RecoveryInfo | None = None

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def bind(self, server) -> None:
        self._server = server

    def open(self, config: dict) -> None:
        """Write the journal's ``open`` header (fresh runs only)."""
        self.journal.create(config)

    # ------------------------------------------------------------------
    # Record emission: append, or verify while replaying
    # ------------------------------------------------------------------
    def _emit(self, record_type: str, **payload) -> None:
        if self._replay:
            expected = self._replay.popleft()
            actual = self.journal.make_record(record_type, **payload)
            if actual != expected:
                raise JournalReplayError(
                    f"replay diverged from the journal at seq "
                    f"{expected.get('seq')}: regenerated {actual!r} but the "
                    f"log holds {expected!r}"
                )
            return
        self.journal.append(record_type, **payload)

    # ------------------------------------------------------------------
    # Journaled transitions (the seam hooks)
    # ------------------------------------------------------------------
    def before_event(self, event: Event, metrics: StreamMetrics) -> None:
        crash = self._crash
        if crash is not None and crash.phase == "apply" and crash.seen >= crash.after:
            raise InjectedCrash(
                f"injected crash: {crash.seen} events applied (boundary "
                f"{crash.after})"
            )
        self._emit("event", event=encode_event(event))
        if crash is not None:
            crash.seen += 1
            if crash.phase == "append" and crash.seen >= crash.after:
                raise InjectedCrash(
                    f"injected crash: event {crash.seen} journaled but not applied"
                )

    def after_event(self, event: Event, metrics: StreamMetrics) -> None:
        self._events_consumed += 1

    def before_commit(self, session, worker_id, gslot, slot, cost) -> None:
        self._emit(
            "commit",
            task_id=session.task.task_id,
            slot=slot,
            worker_id=worker_id,
            gslot=gslot,
            cost=cost,
        )
        pool = self._server.pool
        if pool is not None:
            # The session already drew the charge; this is the audit
            # record replay cross-checks.
            self._emit("charge", amount=cost, remaining=pool.remaining)

    def before_finalize(self, session, metrics: StreamMetrics) -> None:
        self._emit(
            "finalize",
            task_id=session.task.task_id,
            quality=session.quality,
            spent=session.budget.spent,
        )

    def on_epoch_end(self, metrics: StreamMetrics, now: float) -> None:
        self._emit("epoch", epoch=metrics.epochs, now=now)
        if self._replay:
            # Pre-crash epochs: their snapshots are already on disk.
            return
        if self.snapshot_every and metrics.epochs % self.snapshot_every == 0:
            self._write_snapshot(final=False)

    def on_run_complete(self, metrics: StreamMetrics) -> None:
        if self._replay:
            raise JournalReplayError(
                f"replay finished with {len(self._replay)} journaled records "
                "never regenerated — the resumed run ended early"
            )
        self._write_snapshot(final=True)

    def _write_snapshot(self, *, final: bool) -> None:
        state = server_state(self._server)
        state["events_consumed"] = self._events_consumed
        state["final"] = final
        self.journal.write_snapshot(state)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    @classmethod
    def begin_recovery(
        cls,
        journal: str | Path | Journal,
        *,
        sync: bool = False,
        snapshot_every: int | None = None,
        crash_after_events: int | CrashBudget | None = None,
        crash_phase: str = "apply",
    ) -> tuple["JournalLayer", dict]:
        """Scan a journal and build the layer (config from the header).

        Returns ``(layer, config)``; the caller constructs the core
        server from ``config`` with the layer attached, then calls
        :meth:`finish_recovery`.  ``snapshot_every=None`` keeps the
        interrupted run's cadence.
        """
        journal = (
            journal if isinstance(journal, Journal) else Journal(journal, sync=sync)
        )
        records, truncated = journal.open_for_resume()
        config = records[0]["config"]
        layer = cls(
            journal,
            snapshot_every=config["snapshot_every"]
            if snapshot_every is None
            else snapshot_every,
            sync=sync,
            crash_after_events=crash_after_events,
            crash_phase=crash_phase,
        )
        layer._pending_recovery = (records, truncated)
        return layer, config

    def finish_recovery(self) -> RecoveryInfo:
        """Restore the bound server's snapshot and arm the replay cursor."""
        records, truncated = self._pending_recovery
        self._pending_recovery = None
        journal = self.journal
        snapshot = journal.latest_snapshot()
        if snapshot is not None:
            restore_server_state(self._server, snapshot["state"])
            self._events_consumed = snapshot["state"]["events_consumed"]
            cursor = [r for r in records[1:] if r["seq"] > snapshot["wal_seq"]]
        else:
            cursor = records[1:]
        # Regenerated records must reproduce the journaled sequence
        # numbers during replay verification.  With an empty cursor the
        # log's own tail may sit *below* the snapshot's wal_seq (a
        # compacted log holds just the open header): new appends must
        # still advance past everything the snapshot covers, or a later
        # recovery would filter them out of its replay cursor.
        if cursor:
            journal.next_seq = cursor[0]["seq"]
        else:
            covered = -1 if snapshot is None else snapshot["wal_seq"]
            journal.next_seq = max(records[-1]["seq"], covered) + 1
        self._replay = deque(cursor)
        self._replay_events = [
            decode_event(r["event"]) for r in cursor if r["type"] == "event"
        ]
        # Every event still in the log (a superset of the cursor's when
        # a snapshot exists but the log was not compacted): the trace
        # cross-check in resume_with_trace validates against these.
        self._wal_events = [
            decode_event(r["event"]) for r in records[1:] if r["type"] == "event"
        ]
        self.recovery = RecoveryInfo(
            snapshot_loaded=snapshot is not None,
            events_restored=self._events_consumed,
            events_replayed=len(self._replay_events),
            records_scanned=len(records),
            wal_truncated=truncated,
        )
        return self.recovery

    @property
    def replayed_event_count(self) -> int:
        """Input events the journal accounts for (snapshot + suffix):
        exactly how many pops of the original trace to skip on resume."""
        return self._events_consumed + len(self._replay_events)

    def resume(self, remaining_events) -> StreamMetrics:
        """Continue the recovered run on the bound core.

        ``remaining_events`` are the trace events *beyond*
        :attr:`replayed_event_count`; the journaled suffix is replayed
        first, then the run proceeds live.
        """
        return self._server.run(list(self._replay_events) + list(remaining_events))

    def resume_with_trace(self, events) -> StreamMetrics:
        """:meth:`resume`, deriving the remainder from the full trace.

        The first :attr:`replayed_event_count` queue pops of ``events``
        are already covered by the journal (the queue's deterministic
        total order makes "first N pops" well-defined); everything
        after them is the live remainder.  The skipped pops are
        cross-checked against the events the log still holds, so a
        trace regenerated from *different* workload parameters raises
        :class:`~repro.errors.JournalReplayError` instead of silently
        splicing two histories together.
        """
        queue = events if isinstance(events, EventQueue) else EventQueue(events)
        skipped: list[Event] = []
        for _ in range(self.replayed_event_count):
            event = queue.pop()
            if event is None:
                raise JournalReplayError(
                    f"the supplied trace holds fewer events than the journal "
                    f"accounts for ({self.replayed_event_count}) — resumed "
                    "with different workload parameters?"
                )
            skipped.append(event)
        # Compaction may have dropped the oldest events; verify the
        # overlap that survives (everything, in the common case).
        logged = self._wal_events
        overlap = min(len(skipped), len(logged))
        for trace_event, logged_event in zip(skipped[-overlap:], logged[-overlap:]):
            if encode_event(trace_event) != encode_event(logged_event):
                raise JournalReplayError(
                    f"the supplied trace diverges from the journaled events "
                    f"(first mismatch at t={trace_event.time:g}) — resumed "
                    "with different workload parameters?"
                )
        remaining = []
        while True:
            event = queue.pop()
            if event is None:
                break
            remaining.append(event)
        return self.resume(remaining)


# ----------------------------------------------------------------------
# Construction helpers (what the factory and the shims build on)
# ----------------------------------------------------------------------
def journal_layer(server) -> JournalLayer:
    """The journal layer attached to ``server`` (typed lookup).

    Sees through one wrapper level (``.inner``): telemetry dresses the
    journal layer in a :class:`~repro.obs.profile.ProfiledLayer` to
    attribute its hook cost, and the layer keeps working by name.
    """
    for layer in getattr(server, "layers", ()):
        inner = getattr(layer, "inner", layer)
        if isinstance(inner, JournalLayer):
            return inner
    raise ConfigurationError(
        f"{type(server).__name__} has no JournalLayer attached"
    )


def journaled_server(
    bbox: BoundingBox,
    *,
    journal: str | Path | Journal,
    snapshot_every: int = 4,
    sync: bool = False,
    crash_after_events: int | CrashBudget | None = None,
    crash_phase: str = "apply",
    server_cls=StreamingTCSCServer,
    wrap_layer=None,
    extra_layers=(),
    **server_kwargs,
) -> StreamingTCSCServer:
    """A fresh streaming core with a bound journal layer.

    ``wrap_layer`` dresses the journal layer before attachment (the
    telemetry runtime wraps it in a profiling layer); ``extra_layers``
    attach *after* it, preserving log-before-apply ordering.  Neither
    is persisted: the journal header records only ``server_kwargs``, so
    a recovered run composes its own observability.
    """
    layer = JournalLayer(
        journal,
        snapshot_every=snapshot_every,
        sync=sync,
        crash_after_events=crash_after_events,
        crash_phase=crash_phase,
    )
    attached = layer if wrap_layer is None else wrap_layer(layer)
    server = server_cls(bbox, layers=(attached, *extra_layers), **server_kwargs)
    layer.open(stream_server_config(bbox, snapshot_every, server_kwargs))
    return server


def recover_server(
    journal: str | Path | Journal,
    *,
    sync: bool = False,
    snapshot_every: int | None = None,
    crash_after_events: int | CrashBudget | None = None,
    crash_phase: str = "apply",
    server_cls=StreamingTCSCServer,
) -> StreamingTCSCServer:
    """Rebuild a journaled streaming core from its journal directory.

    The journal's ``open`` header supplies the configuration, so
    recovery needs nothing but the directory.  The returned server has
    its :class:`JournalLayer` armed; drive it with
    ``journal_layer(server).resume_with_trace(events)``.
    """
    layer, config = JournalLayer.begin_recovery(
        journal,
        sync=sync,
        snapshot_every=snapshot_every,
        crash_after_events=crash_after_events,
        crash_phase=crash_phase,
    )
    server = server_cls(
        BoundingBox(*config["bbox"]), layers=(layer,), **config["server_kwargs"]
    )
    layer.finish_recovery()
    return server
