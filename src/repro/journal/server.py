"""Legacy spelling of durable streaming: a shim over the journal layer.

PR 4 shipped durability as the :class:`JournaledStreamingServer`
subclass; PR 5 moved the implementation into
:class:`~repro.journal.layer.JournalLayer`, attached through the
generic serving seam (:mod:`repro.runtime.layers`).  This module keeps
the old class name working — byte-identically, as the regression tests
assert — as a *thin deprecation shim*: construction wires a journal
layer onto the plain streaming core and every journal-specific method
delegates to it.  New code should compose the same stack through
:func:`repro.runtime.build_runtime` (``RunSpec(mode="stream",
journal=...)``) or the helpers in :mod:`repro.journal.layer`.

``CrashBudget``, ``InjectedCrash``, and ``RecoveryInfo`` are
re-exported here for import-path compatibility.
"""

from __future__ import annotations

from pathlib import Path

from repro.geo.bbox import BoundingBox
from repro.journal.layer import (
    CrashBudget,
    InjectedCrash,
    JournalLayer,
    RecoveryInfo,
    journal_layer,
    stream_server_config,
)
from repro.journal.wal import Journal
from repro.runtime.layers import warn_deprecated
from repro.stream.metrics import StreamMetrics
from repro.stream.online_server import StreamingTCSCServer

__all__ = [
    "CrashBudget",
    "InjectedCrash",
    "JournaledStreamingServer",
    "RecoveryInfo",
]


class JournaledStreamingServer(StreamingTCSCServer):
    """Deprecated: a streaming core with a pre-attached journal layer.

    Parameters (on top of the base server's):
        journal: journal directory path, or a prepared
            :class:`~repro.journal.wal.Journal`.
        snapshot_every: epochs between snapshots (``0`` disables
            periodic snapshots; a final one is still written when the
            run completes).
        sync: fsync the log on every append.
        crash_after_events / crash_phase: fault injection — see
            :class:`~repro.journal.layer.CrashBudget`.
    """

    def __init__(
        self,
        bbox: BoundingBox,
        *,
        journal: str | Path | Journal,
        snapshot_every: int = 4,
        sync: bool = False,
        crash_after_events: int | CrashBudget | None = None,
        crash_phase: str = "apply",
        _resume: bool = False,
        _layer: JournalLayer | None = None,
        **server_kwargs,
    ):
        warn_deprecated(
            "JournaledStreamingServer",
            "build_runtime(RunSpec(mode='stream', journal=...)) or "
            "repro.journal.layer.journaled_server(...)",
        )
        if _layer is None:
            _layer = JournalLayer(
                journal,
                snapshot_every=snapshot_every,
                sync=sync,
                crash_after_events=crash_after_events,
                crash_phase=crash_phase,
            )
        super().__init__(bbox, layers=(_layer,), **server_kwargs)
        if not _resume:
            _layer.open(
                stream_server_config(bbox, _layer.snapshot_every, server_kwargs)
            )

    # ------------------------------------------------------------------
    # Delegation to the journal layer
    # ------------------------------------------------------------------
    @property
    def _journal_layer(self) -> JournalLayer:
        return journal_layer(self)

    @property
    def journal(self) -> Journal:
        return self._journal_layer.journal

    @property
    def snapshot_every(self) -> int:
        return self._journal_layer.snapshot_every

    @property
    def recovery(self) -> RecoveryInfo | None:
        return self._journal_layer.recovery

    @property
    def replayed_event_count(self) -> int:
        return self._journal_layer.replayed_event_count

    @property
    def _replay(self):
        return self._journal_layer._replay

    @property
    def _crash(self) -> CrashBudget | None:
        return self._journal_layer._crash

    @_crash.setter
    def _crash(self, budget: CrashBudget | None) -> None:
        self._journal_layer._crash = budget

    def resume(self, remaining_events) -> StreamMetrics:
        """Continue a recovered run past the journaled suffix."""
        return self._journal_layer.resume(remaining_events)

    def resume_with_trace(self, events) -> StreamMetrics:
        """Resume, deriving the live remainder from the full trace."""
        return self._journal_layer.resume_with_trace(events)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        journal: str | Path | Journal,
        *,
        sync: bool = False,
        snapshot_every: int | None = None,
        crash_after_events: int | CrashBudget | None = None,
        crash_phase: str = "apply",
    ) -> "JournaledStreamingServer":
        """Rebuild a server from its journal directory.

        Loads the newest intact snapshot (if any), arms the replay
        cursor with every log record past it, and returns a server
        ready to :meth:`resume`; ``snapshot_every=None`` keeps the
        interrupted run's cadence.
        """
        layer, config = JournalLayer.begin_recovery(
            journal,
            sync=sync,
            snapshot_every=snapshot_every,
            crash_after_events=crash_after_events,
            crash_phase=crash_phase,
        )
        server = cls(
            BoundingBox(*config["bbox"]),
            journal=layer.journal,
            sync=sync,
            _resume=True,
            _layer=layer,
            **config["server_kwargs"],
        )
        layer.finish_recovery()
        return server
