"""Deterministic elasticity suite: live migration exactness, measured.

``python -m repro bench-elastic`` (or ``python -m
repro.bench.elasticsuite``) drives the :mod:`repro.elastic` subsystem
through seed-pinned streaming scenarios and persists
``benchmarks/results/elastic_suite.json``;
:func:`repro.bench.collect.collect_elastic` merges every
``elastic*.json`` series into ``benchmarks/BENCH_elastic.json``.

Three measurements:

* **Migration exactness** (the acceptance invariant): a migration
  scripted at *every* settled epoch boundary — for executor counts
  2 and 4 — must leave ``plan_signature()``, every per-shard
  ``StreamMetrics``, and every per-core ``OpCounters`` byte-identical
  to the never-migrated run.  Each scripted run must actually fire
  its migration (a sweep that silently skips boundaries would pass
  vacuously).
* **Skewed-arrival rebalancing**: under the ``hotspot_drift`` preset
  the auto controller must beat the static placement's op-count
  makespan by the gated ratio, while staying plan-identical to it —
  rebalancing may only move work, never change it.
* **Elastic-off identity**: the factory's ``elastic="off"`` path must
  be byte-identical to the plain :class:`ShardedStreamingServer`
  stack — turning the subsystem off costs nothing.

Per the determinism policy, every gate is op-count/equality based;
wall-clock is recorded for humans only.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.bench.report import signature_hash as _signature_hash
from repro.elastic import (
    DEFAULT_PARTITIONS,
    ElasticController,
    ElasticStreamingServer,
)
from repro.runtime import RunSpec, WorkloadSpec, build_runtime
from repro.shard.streaming import ShardedStreamingServer
from repro.workloads.streaming import StreamScenarioConfig, build_stream_events

__all__ = [
    "EXECUTOR_COUNTS",
    "SWEEP_SCENARIO",
    "SWEEP_KWARGS",
    "SKEW_SCENARIO",
    "SKEW_KWARGS",
    "SKEW_RATIO_GATE",
    "run_suite",
    "run_and_write",
    "check_payload",
    "main",
]

_DEFAULT_RESULTS = Path(__file__).resolve().parents[3] / "benchmarks" / "results"

#: Executor counts swept at every epoch boundary (the acceptance grid).
EXECUTOR_COUNTS = (2, 4)

#: The exactness trace: small enough that a migration at *every*
#: settled boundary stays cheap, busy enough that the catch-up replay
#: actually carries committed state across.
SWEEP_SCENARIO = StreamScenarioConfig(
    horizon=16, task_rate=0.4, task_slots=8, initial_workers=14,
    worker_join_rate=0.8, mean_worker_lifetime=12.0, seed=9,
)
SWEEP_KWARGS = dict(
    k=2, epoch_length=3.0, budget_fraction=0.6,
    max_active_tasks=4, max_queue_depth=8,
)
#: Two logical shards per executor keeps the sweep's core count low.
SWEEP_PARTITIONS = 2

#: The skew arm: hotspot-drift arrivals concentrate load onto one
#: region late in the trace, exactly the shape static placement cannot
#: absorb.  Seed-pinned where the policy's win is robust (the auto
#: controller is deterministic, so this is a fixed, reproducible row —
#: mean gain across arbitrary seeds is smaller).
SKEW_SCENARIO = StreamScenarioConfig(
    horizon=36, task_rate=2.0, task_slots=12, initial_workers=20,
    worker_join_rate=1.5, mean_worker_lifetime=24.0, seed=7,
    hotspot_drift=1.0,
)
SKEW_KWARGS = dict(
    k=2, epoch_length=3.0, budget_fraction=0.6,
    max_active_tasks=4, max_queue_depth=16,
)
SKEW_CONTROLLER = dict(queue_high=4, queue_low=1, cooldown=1)

#: Auto-controller makespan over static-placement makespan must stay
#: at or below this under the skew arm (< 1 is a strict improvement;
#: the pinned scenario measures ~0.89-0.92).
SKEW_RATIO_GATE = 0.96


def _core_identity(server) -> tuple:
    """The byte-identity triple of one (sharded or elastic) run."""
    return (
        server.assignment().plan_signature(),
        [core.counters for core in server.servers],
    )


def _sweep_executors(num_executors: int) -> dict:
    """Script a migration at every settled boundary of the reference
    run; every scripted run must stay byte-identical to it."""
    trace = build_stream_events(SWEEP_SCENARIO)
    num_logical = num_executors * SWEEP_PARTITIONS

    def build(controller):
        return ElasticStreamingServer(
            trace.bbox,
            num_executors=num_executors,
            partitions_per_executor=SWEEP_PARTITIONS,
            controller=controller,
            **SWEEP_KWARGS,
        )

    start = time.perf_counter()
    ref = build(ElasticController.fixed([]))
    ref_metrics = ref.run(list(trace.events))
    ref_sig = ref.assignment().plan_signature()
    ref_per_shard = ref_metrics.per_shard
    ref_counters = [core.counters for core in ref.servers]
    boundaries = list(ref_metrics.boundary_times)

    identical = 0
    fired = 0
    records_replayed: list[int] = []
    for index, boundary in enumerate(boundaries):
        server = build(
            ElasticController.fixed([(boundary, index % num_logical, None)])
        )
        metrics = server.run(list(trace.events))
        fired += len(metrics.migrations)
        records_replayed.extend(
            record.records_replayed for record in metrics.migrations
        )
        if (
            server.assignment().plan_signature() == ref_sig
            and metrics.per_shard == ref_per_shard
            and [core.counters for core in server.servers] == ref_counters
        ):
            identical += 1
    wall_sweep = time.perf_counter() - start

    return {
        "num_executors": num_executors,
        "num_logical_shards": num_logical,
        "boundaries": len(boundaries),
        "identical": identical,
        "migrations_fired": fired,
        "mean_records_replayed": round(
            sum(records_replayed) / max(len(records_replayed), 1), 3
        ),
        "plan_length": len(ref_sig),
        "signature": _signature_hash(ref_sig),
        "wall_sweep_s": wall_sweep,
    }


def _skew_arm(num_executors: int) -> dict:
    """Auto rebalancing vs static placement on the hotspot-drift trace:
    gated makespan ratio at plan identity."""
    trace = build_stream_events(SKEW_SCENARIO)

    def run(controller):
        server = ElasticStreamingServer(
            trace.bbox,
            num_executors=num_executors,
            partitions_per_executor=DEFAULT_PARTITIONS,
            controller=controller,
            **SKEW_KWARGS,
        )
        return server, server.run(list(trace.events))

    start = time.perf_counter()
    static_server, static = run(ElasticController.fixed([]))
    auto_server, auto = run(ElasticController(**SKEW_CONTROLLER))
    wall = time.perf_counter() - start

    identical = (
        auto_server.assignment().plan_signature()
        == static_server.assignment().plan_signature()
        and auto.per_shard == static.per_shard
        and [c.counters for c in auto_server.servers]
        == [c.counters for c in static_server.servers]
    )
    return {
        "num_executors": num_executors,
        "static_makespan": static.makespan,
        "auto_makespan": auto.makespan,
        "makespan_ratio": round(auto.makespan / static.makespan, 4),
        "migrations": len(auto.migrations),
        "static_balance": round(static.balance, 4),
        "auto_balance": round(auto.balance, 4),
        "plan_identical": identical,
        "signature": _signature_hash(
            auto_server.assignment().plan_signature()
        ),
        "wall_s": wall,
    }


def _off_identity(backend: str) -> dict:
    """``elastic="off"`` through the factory must compose the plain
    sharded stack byte-identically to direct construction."""
    spec = RunSpec(
        mode="stream",
        workload=WorkloadSpec(
            horizon=SWEEP_SCENARIO.horizon,
            task_rate=SWEEP_SCENARIO.task_rate,
            task_slots=SWEEP_SCENARIO.task_slots,
            initial_workers=SWEEP_SCENARIO.initial_workers,
            join_rate=SWEEP_SCENARIO.worker_join_rate,
            mean_lifetime=SWEEP_SCENARIO.mean_worker_lifetime,
            seed=SWEEP_SCENARIO.seed,
        ),
        backend=backend,
        shards=2,
        elastic="off",
        **SWEEP_KWARGS,
    )
    runtime = build_runtime(spec)
    trace = runtime.scenario()
    outcome = runtime.run()

    direct = ShardedStreamingServer(
        trace.bbox, num_shards=2, backend=backend, **SWEEP_KWARGS
    )
    direct_metrics = direct.run(list(trace.events))
    identical = (
        outcome.plan_signature == direct.assignment().plan_signature()
        and outcome.metrics.per_shard == direct_metrics.per_shard
        and list(outcome.counters) == [c.counters for c in direct.servers]
        and type(outcome.server) is ShardedStreamingServer
    )
    return {
        "identical": identical,
        "server_class": type(outcome.server).__name__,
        "plan_length": len(outcome.plan_signature),
        "signature": _signature_hash(outcome.plan_signature),
    }


def run_suite(*, smoke: bool = False, backend: str = "python") -> dict:
    """Run the suite and return the machine-readable payload."""
    counts = EXECUTOR_COUNTS[:1] if smoke else EXECUTOR_COUNTS
    return {
        "suite": "elasticsuite",
        "mode": "smoke" if smoke else "full",
        "backend": backend,
        "executor_counts": list(counts),
        "skew_ratio_gate": SKEW_RATIO_GATE,
        "sweep": {str(count): _sweep_executors(count) for count in counts},
        "skew": {str(count): _skew_arm(count) for count in counts},
        "off_identity": _off_identity(backend),
    }


def check_payload(payload: dict) -> list[str]:
    """Deterministic gates; returns a list of failure strings.

    * **Exactness** — every boundary-scripted migration run must match
      the never-migrated run byte-for-byte, and every run must fire
      its migration (one per boundary).
    * **Skew gain** — the auto controller's makespan ratio must meet
      :data:`SKEW_RATIO_GATE` while staying plan-identical to the
      static arm.
    * **Off identity** — ``elastic="off"`` must be byte-identical to
      the direct sharded stack.

    Wall-clock is deliberately unchecked (determinism policy).
    """
    failures = []
    gate = payload["skew_ratio_gate"]
    for count, row in payload["sweep"].items():
        if row["identical"] != row["boundaries"]:
            failures.append(
                f"sweep executors={count}: "
                f"{row['boundaries'] - row['identical']} of "
                f"{row['boundaries']} migration boundaries were not "
                "byte-identical to the never-migrated run"
            )
        if row["migrations_fired"] != row["boundaries"]:
            failures.append(
                f"sweep executors={count}: only {row['migrations_fired']} "
                f"of {row['boundaries']} scripted migrations fired"
            )
    for count, row in payload["skew"].items():
        if not row["plan_identical"]:
            failures.append(
                f"skew executors={count}: auto rebalancing changed the "
                "plan (must only move work, never change it)"
            )
        if row["makespan_ratio"] > gate:
            failures.append(
                f"skew executors={count}: makespan ratio "
                f"{row['makespan_ratio']} exceeds the {gate} gate"
            )
        if row["migrations"] < 1:
            failures.append(
                f"skew executors={count}: the auto controller never "
                "migrated under hotspot drift"
            )
    if not payload["off_identity"]["identical"]:
        failures.append(
            "elastic='off' diverged from the direct sharded stack"
        )
    return failures


def _write_report_block(payload: dict, results_dir: Path) -> None:
    """Persist the human-readable elasticity block for REPORT.md."""
    from repro.bench import Reporter

    reporter = Reporter(
        "elastic1",
        "Elastic suite: migration exactness and skew rebalancing gain",
        results_dir=results_dir,
    )
    reporter.note(
        "a migration scripted at every settled boundary is byte-identical "
        "to the never-migrated run (plan, metrics, op counters); the auto "
        "controller's skew gain is an op-count makespan ratio, never "
        "wall-clock"
    )
    reporter.header(
        "arm", "executors", "boundaries", "identical",
        "fired", "ratio", "migrations",
    )
    for count, row in payload["sweep"].items():
        reporter.row(
            "sweep", count, row["boundaries"], row["identical"],
            row["migrations_fired"], "-", "-",
        )
    for count, row in payload["skew"].items():
        reporter.row(
            "skew", count, "-", "yes" if row["plan_identical"] else "NO",
            "-", row["makespan_ratio"], row["migrations"],
        )
    reporter.close()


def run_and_write(
    *,
    smoke: bool = False,
    results_dir: str | Path | None = None,
    backend: str = "python",
) -> int:
    """Run the suite, persist JSON, refresh BENCH_elastic.json.

    The single entry point behind ``python -m repro bench-elastic``
    and ``python -m repro.bench.elasticsuite``; returns a process exit
    code (non-zero when a gate fails).  Layout mirrors the journal/obs
    suites: the series lands in ``benchmarks/results/``, the merged
    ``BENCH_elastic.json`` next to them in ``benchmarks/``.
    """
    if results_dir is None:
        results_dir = _DEFAULT_RESULTS
        bench_dir = results_dir.parent
    else:
        results_dir = Path(results_dir)
        bench_dir = results_dir
    results_dir.mkdir(parents=True, exist_ok=True)

    payload = run_suite(smoke=smoke, backend=backend)
    out = results_dir / "elastic_suite.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    _write_report_block(payload, results_dir)

    from repro.bench.collect import collect_elastic

    merged = collect_elastic(results_dir)
    if merged is not None:
        bench_out = bench_dir / "BENCH_elastic.json"
        bench_out.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"wrote {bench_out}")

    for count, row in payload["sweep"].items():
        print(
            f"sweep executors={count}: {row['identical']}/{row['boundaries']} "
            f"identical, {row['migrations_fired']} migrations fired, "
            f"mean replay {row['mean_records_replayed']} records"
        )
    for count, row in payload["skew"].items():
        print(
            f"skew executors={count}: ratio={row['makespan_ratio']} "
            f"(gate {payload['skew_ratio_gate']}), "
            f"{row['migrations']} migrations, "
            f"plan_identical={row['plan_identical']}"
        )
    print(f"off identity: {payload['off_identity']['identical']}")

    failures = check_payload(payload)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Standalone CLI wrapper around :func:`run_and_write`."""
    import argparse

    from repro.core.evaluator import EVALUATOR_BACKENDS

    parser = argparse.ArgumentParser(prog="repro.bench.elasticsuite")
    parser.add_argument("--smoke", action="store_true",
                        help="executors=2 arms only (CI smoke mode)")
    parser.add_argument("--results-dir", default=None,
                        help="override benchmarks/results output directory")
    parser.add_argument("--backend", choices=list(EVALUATOR_BACKENDS),
                        default="python",
                        help="quality-kernel backend for every run")
    args = parser.parse_args(argv)
    return run_and_write(
        smoke=args.smoke, results_dir=args.results_dir, backend=args.backend
    )


if __name__ == "__main__":
    sys.exit(main())
