"""Deterministic durability suite: crash-consistent replay, measured.

``python -m repro bench-journal`` (or ``python -m
repro.bench.journalsuite``) drives the :mod:`repro.journal` subsystem
through seed-pinned streaming scenarios and persists
``benchmarks/results/journal_suite.json``;
:func:`repro.bench.collect.collect_journal` merges every
``journal*.json`` series into ``benchmarks/BENCH_journal.json``.

Three measurements per scenario:

* **Exactness** (the acceptance invariant): an uninterrupted journaled
  run must equal the plain run, and a crash injected at *every* event
  boundary — for the plain streaming server and the sharded one at
  shard counts 1/2/4 — must recover to byte-identical
  ``plan_signature()``, ``StreamMetrics``, and ``OpCounters``.
* **Journal write overhead**: records and bytes appended per event —
  deterministic quantities (canonical JSON framing), plus the zero
  op-count overhead claim (journaling never touches the solver
  counters, enforced by the metrics-equality gate).
* **Recovery cost**: input events re-consumed per recovery
  (snapshot + log-suffix replay), reported as mean/max over the
  boundary sweep; snapshots must make the mean strictly cheaper than
  full-trace replay.

Per the determinism policy, every gate is op-count/equality based;
wall-clock is recorded for humans only.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.bench.report import signature_hash as _signature_hash
from repro.journal.layer import InjectedCrash, journal_layer
from repro.runtime import (
    RunSpec,
    StreamRuntime,
    WorkloadSpec,
    build_runtime,
    recover_runtime,
)

__all__ = [
    "JournalScenario",
    "SHARD_COUNTS",
    "SCENARIOS",
    "SMOKE_SCENARIOS",
    "run_suite",
    "run_and_write",
    "check_payload",
    "main",
]

_DEFAULT_RESULTS = Path(__file__).resolve().parents[3] / "benchmarks" / "results"

#: Sharded deployments swept at every event boundary (the acceptance
#: grid; 1 doubles as the degenerate-sharding cross-check).
SHARD_COUNTS = (1, 2, 4)


@dataclass(frozen=True, slots=True)
class JournalScenario:
    """One seed-pinned streaming trace plus its server shape."""

    name: str
    horizon: int
    task_rate: float
    task_slots: int
    initial_workers: int
    join_rate: float
    mean_lifetime: float
    seed: int
    epoch_length: float
    budget_fraction: float
    snapshot_every: int


SCENARIOS = (
    JournalScenario(
        "durability_small",
        horizon=16, task_rate=0.3, task_slots=8, initial_workers=14,
        join_rate=0.8, mean_lifetime=12.0, seed=9,
        epoch_length=3.0, budget_fraction=0.6, snapshot_every=2,
    ),
    JournalScenario(
        "durability_medium",
        horizon=26, task_rate=0.25, task_slots=10, initial_workers=16,
        join_rate=0.7, mean_lifetime=14.0, seed=17,
        epoch_length=4.0, budget_fraction=0.5, snapshot_every=3,
    ),
)

#: CI smoke mode: the smallest scenario only.
SMOKE_SCENARIOS = (SCENARIOS[0],)


def _base_spec(scenario: JournalScenario, backend: str) -> RunSpec:
    """The scenario's streaming spec — every server in the sweep is a
    ``spec.replace(...)`` of this one, built by the runtime factory."""
    return RunSpec(
        mode="stream",
        workload=WorkloadSpec(
            horizon=scenario.horizon,
            task_rate=scenario.task_rate,
            task_slots=scenario.task_slots,
            initial_workers=scenario.initial_workers,
            join_rate=scenario.join_rate,
            mean_lifetime=scenario.mean_lifetime,
            seed=scenario.seed,
        ),
        backend=backend,
        k=2,
        epoch_length=scenario.epoch_length,
        budget_fraction=scenario.budget_fraction,
        max_active_tasks=4,
        max_queue_depth=8,
        snapshot_every=scenario.snapshot_every,
    )


def _sweep_plain(base: RunSpec, scenario, *, workdir: Path) -> dict:
    """Crash at every event boundary of the plain streaming runtime.

    ``scenario`` is the pre-built trace every runtime in the sweep
    reuses (the boundary loop would otherwise regenerate it per run).
    """
    events = list(scenario.events)
    total = len(events)
    start = time.perf_counter()
    ref = StreamRuntime(base, scenario=scenario).run()
    wall_clean = time.perf_counter() - start
    ref_metrics = ref.metrics
    ref_sig = ref.plan_signature

    start = time.perf_counter()
    journaled = StreamRuntime(
        base.replace(journal=str(workdir / "uninterrupted")),
        scenario=scenario,
    ).run()
    wall_journaled = time.perf_counter() - start
    journal = journal_layer(journaled.server).journal

    replayed: list[int] = []
    snapshot_recoveries = 0
    identical = 0
    start = time.perf_counter()
    for boundary in range(total):
        jdir = workdir / f"crash-{boundary}"
        crashed = StreamRuntime(
            base.replace(journal=str(jdir), crash_after_events=boundary),
            scenario=scenario,
        )
        try:
            crashed.run()
            raise AssertionError(f"crash at boundary {boundary} never fired")
        except InjectedCrash:
            pass
        recovered = recover_runtime(jdir)
        metrics = recovered.resume(list(events))
        if (
            metrics == ref_metrics
            and recovered.assignment().plan_signature() == ref_sig
        ):
            identical += 1
        replayed.append(recovered.recovery.events_replayed)
        snapshot_recoveries += recovered.recovery.snapshot_loaded
    wall_sweep = time.perf_counter() - start

    return {
        "total_events": total,
        "plan_length": len(ref_sig),
        "signature": _signature_hash(ref_sig),
        "journaled_matches_clean": journaled.metrics == ref_metrics
        and journaled.plan_signature == ref_sig,
        "overhead": {
            "records": journal.wal.records_appended,
            "bytes": journal.wal.bytes_written,
            "records_per_event": round(
                journal.wal.records_appended / max(total, 1), 3
            ),
            "snapshots": journal.snapshots_written,
            "snapshot_bytes": journal.snapshot_bytes,
        },
        "recovery": {
            "boundaries": total,
            "identical": identical,
            "snapshot_recoveries": snapshot_recoveries,
            "mean_events_replayed": round(sum(replayed) / max(total, 1), 3),
            "max_events_replayed": max(replayed, default=0),
        },
        "wall_clean_s": wall_clean,
        "wall_journaled_s": wall_journaled,
        "wall_sweep_s": wall_sweep,
    }


def _sweep_sharded(
    base: RunSpec, scenario, *, num_shards: int, workdir: Path
) -> dict:
    """Crash at every event boundary of the sharded deployment.

    Boundaries count journaled event consumptions across the shard
    servers in serial run order (halo fan-out duplicates worker
    events, so there are more boundaries than trace events); the sweep
    stops at the first budget the run survives.
    """
    events = list(scenario.events)
    sharded = base.replace(shards=num_shards)
    # force_sharded: the one-shard row measures the degenerate sharded
    # deployment (coordinator + per-shard journal), not the plain core.
    ref = StreamRuntime(sharded, force_sharded=True, scenario=scenario).run()
    ref_metrics = ref.metrics
    ref_sig = ref.plan_signature
    ref_counters = list(ref.counters)

    identical = 0
    replayed: list[int] = []
    boundary = 0
    start = time.perf_counter()
    while True:
        jdir = workdir / f"shard{num_shards}-crash-{boundary}"
        crashed = StreamRuntime(
            sharded.replace(journal=str(jdir), crash_after_events=boundary),
            force_sharded=True,
            scenario=scenario,
        )
        try:
            crashed.run()
            break  # the run outlived the budget: sweep complete
        except InjectedCrash:
            pass
        recovered = recover_runtime(jdir)
        metrics = recovered.resume(list(events))
        if (
            metrics.per_shard == ref_metrics.per_shard
            and metrics.makespan == ref_metrics.makespan
            and metrics.serial_cost == ref_metrics.serial_cost
            and recovered.assignment().plan_signature() == ref_sig
            and [s.counters for s in recovered.server.servers] == ref_counters
        ):
            identical += 1
        replayed.append(
            sum(info.events_replayed for info in recovered.recovery)
        )
        boundary += 1
    wall_sweep = time.perf_counter() - start

    return {
        "boundaries": boundary,
        "identical": identical,
        "plan_length": len(ref_sig),
        "signature": _signature_hash(ref_sig),
        "mean_events_replayed": round(sum(replayed) / max(boundary, 1), 3),
        "makespan": ref_metrics.makespan,
        "speedup": ref_metrics.speedup,
        "wall_sweep_s": wall_sweep,
    }


def _run_scenario(scenario: JournalScenario, *, backend: str) -> dict:
    base = _base_spec(scenario, backend)
    trace = build_runtime(base).scenario()
    with tempfile.TemporaryDirectory(prefix="journalsuite-") as tmp:
        workdir = Path(tmp)
        plain = _sweep_plain(base, trace, workdir=workdir)
        shards = {
            str(count): _sweep_sharded(
                base, trace, num_shards=count, workdir=workdir
            )
            for count in SHARD_COUNTS
        }
    return {
        "name": scenario.name,
        "seed": scenario.seed,
        "horizon": scenario.horizon,
        "task_slots": scenario.task_slots,
        "snapshot_every": scenario.snapshot_every,
        "plain": plain,
        "shards": shards,
    }


def run_suite(*, smoke: bool = False, backend: str = "python") -> dict:
    """Run the suite and return the machine-readable payload."""
    scenarios = SMOKE_SCENARIOS if smoke else SCENARIOS
    return {
        "suite": "journalsuite",
        "mode": "smoke" if smoke else "full",
        "backend": backend,
        "shard_counts": list(SHARD_COUNTS),
        "scenarios": [_run_scenario(s, backend=backend) for s in scenarios],
    }


def check_payload(payload: dict) -> list[str]:
    """Deterministic gates; returns a list of failure strings.

    * **Exact replay** — every crash boundary (plain and sharded) must
      recover byte-identically; the uninterrupted journaled run must
      match the plain run (which also proves zero op-count journaling
      overhead, since ``OpCounters`` ride inside the metrics).
    * **Degenerate sharding** — the one-shard sweep must reproduce the
      plain server's plan.
    * **Snapshots pay off** — with snapshots on disk, mean recovery
      replay must be strictly cheaper than consuming the whole trace.

    Wall-clock is deliberately unchecked (determinism policy).
    """
    failures = []
    for scenario in payload["scenarios"]:
        name = scenario["name"]
        plain = scenario["plain"]
        if not plain["journaled_matches_clean"]:
            failures.append(f"{name}: journaled run diverged from the plain run")
        recovery = plain["recovery"]
        if recovery["identical"] != recovery["boundaries"]:
            failures.append(
                f"{name}: {recovery['boundaries'] - recovery['identical']} of "
                f"{recovery['boundaries']} plain crash boundaries recovered "
                "non-identically"
            )
        if plain["overhead"]["snapshots"] > 0 and not (
            recovery["mean_events_replayed"] < plain["total_events"]
        ):
            failures.append(
                f"{name}: snapshots written but mean replay "
                f"({recovery['mean_events_replayed']}) is not cheaper than "
                f"the full trace ({plain['total_events']})"
            )
        for count, row in scenario["shards"].items():
            if row["identical"] != row["boundaries"]:
                failures.append(
                    f"{name}: shards={count}: "
                    f"{row['boundaries'] - row['identical']} of "
                    f"{row['boundaries']} boundaries recovered non-identically"
                )
        single = scenario["shards"].get("1")
        if single and single["signature"] != plain["signature"]:
            failures.append(
                f"{name}: one-shard sharded plan diverged from the plain plan"
            )
    return failures


def _write_report_block(payload: dict, results_dir: Path) -> None:
    """Persist the human-readable durability block for REPORT.md."""
    from repro.bench import Reporter

    reporter = Reporter(
        "journal1",
        "Journal suite: crash/recovery exactness and durability overhead",
        results_dir=results_dir,
    )
    reporter.note(
        "crash injected at every event boundary; recovered runs byte-identical "
        "(plan, metrics, op counters); replay cost in events, never wall-clock"
    )
    reporter.header(
        "scenario", "mode", "boundaries", "identical",
        "rec/event", "mean_replay", "snapshots",
    )
    for scenario in payload["scenarios"]:
        plain = scenario["plain"]
        reporter.row(
            scenario["name"], "plain",
            plain["recovery"]["boundaries"], plain["recovery"]["identical"],
            plain["overhead"]["records_per_event"],
            plain["recovery"]["mean_events_replayed"],
            plain["overhead"]["snapshots"],
        )
        for count, row in scenario["shards"].items():
            reporter.row(
                scenario["name"], f"shards={count}",
                row["boundaries"], row["identical"],
                "-", row["mean_events_replayed"], "-",
            )
    reporter.close()


def run_and_write(
    *,
    smoke: bool = False,
    results_dir: str | Path | None = None,
    backend: str = "python",
) -> int:
    """Run the suite, persist JSON, refresh BENCH_journal.json.

    The single entry point behind ``python -m repro bench-journal``
    and ``python -m repro.bench.journalsuite``; returns a process exit
    code (non-zero when an exactness gate fails).  Layout mirrors the
    perf/shard suites: the series lands in ``benchmarks/results/``,
    the merged ``BENCH_journal.json`` next to them in ``benchmarks/``.
    """
    if results_dir is None:
        results_dir = _DEFAULT_RESULTS
        bench_dir = results_dir.parent
    else:
        results_dir = Path(results_dir)
        bench_dir = results_dir
    results_dir.mkdir(parents=True, exist_ok=True)

    payload = run_suite(smoke=smoke, backend=backend)
    out = results_dir / "journal_suite.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    _write_report_block(payload, results_dir)

    from repro.bench.collect import collect_journal

    merged = collect_journal(results_dir)
    if merged is not None:
        bench_out = bench_dir / "BENCH_journal.json"
        bench_out.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"wrote {bench_out}")

    for scenario in payload["scenarios"]:
        plain = scenario["plain"]
        shard_ident = " ".join(
            f"s{count}={row['identical']}/{row['boundaries']}"
            for count, row in scenario["shards"].items()
        )
        print(
            f"{scenario['name']}: events={plain['total_events']} "
            f"plain={plain['recovery']['identical']}/"
            f"{plain['recovery']['boundaries']} identical, {shard_ident}; "
            f"{plain['overhead']['records_per_event']} records/event, "
            f"mean replay {plain['recovery']['mean_events_replayed']} events"
        )

    failures = check_payload(payload)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Standalone CLI wrapper around :func:`run_and_write`."""
    import argparse

    from repro.core.evaluator import EVALUATOR_BACKENDS

    parser = argparse.ArgumentParser(prog="repro.bench.journalsuite")
    parser.add_argument("--smoke", action="store_true",
                        help="smallest scenario only (CI smoke mode)")
    parser.add_argument("--results-dir", default=None,
                        help="override benchmarks/results output directory")
    parser.add_argument("--backend", choices=list(EVALUATOR_BACKENDS),
                        default="python",
                        help="quality-kernel backend for every run")
    args = parser.parse_args(argv)
    return run_and_write(
        smoke=args.smoke, results_dir=args.results_dir, backend=args.backend
    )


if __name__ == "__main__":
    sys.exit(main())
