"""Consolidate persisted benchmark series into one report.

``python -m repro.bench.collect`` reads every ``benchmarks/results/
*.txt`` block written by the figure benches, orders them by figure id,
and emits a single ``REPORT.md`` — the artifact to skim after a full
``pytest benchmarks/ --benchmark-only`` run.

Streaming benchmarks additionally persist machine-readable series as
``benchmarks/results/stream*.json``; :func:`collect_stream` merges
those into ``benchmarks/BENCH_stream.json`` (events/sec and
incremental-vs-rebuild speedups).  The perf suite
(:mod:`repro.bench.perfsuite`) persists ``perf*.json`` series, merged
by :func:`collect_perf` into ``benchmarks/BENCH_perf.json`` — the
solver hot-path trajectory (backend and lazy-search speedups).
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

__all__ = ["collect", "collect_perf", "collect_stream", "main"]

_DEFAULT_RESULTS = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def _sort_key(path: Path) -> tuple:
    """fig6a < fig6b < ... < fig11c < abl1 < ...; numeric-aware."""
    name = path.stem
    match = re.match(r"([a-z]+)(\d+)([a-z]?)", name)
    if not match:
        return (2, name, 0, "")
    prefix, number, letter = match.groups()
    family = 0 if prefix == "fig" else 1
    return (family, prefix, int(number), letter)


def collect(results_dir: Path | str = _DEFAULT_RESULTS) -> str:
    """Concatenate all result blocks into one markdown document."""
    results_dir = Path(results_dir)
    blocks = []
    for path in sorted(results_dir.glob("*.txt"), key=_sort_key):
        blocks.append("```\n" + path.read_text().rstrip() + "\n```")
    header = (
        "# Benchmark report\n\n"
        f"{len(blocks)} figure series collected from `{results_dir}`.\n"
        "Regenerate with `pytest benchmarks/ --benchmark-only`.\n"
    )
    return header + "\n\n" + "\n\n".join(blocks) + "\n"


def _collect_json_series(
    results_dir: Path | str, pattern: str, generated_by: str
) -> dict | None:
    """Merge every ``<pattern>`` JSON series under ``results_dir``.

    Returns ``None`` when no series exist yet; otherwise a dict of
    ``{series_name: payload}`` ready to dump as a ``BENCH_*.json``.
    """
    results_dir = Path(results_dir)
    series: dict[str, dict] = {}
    for path in sorted(results_dir.glob(pattern)):
        try:
            series[path.stem] = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"skipping unreadable {path}: {exc}", file=sys.stderr)
    if not series:
        return None
    return {"generated_by": generated_by, "series": series}


def collect_stream(results_dir: Path | str = _DEFAULT_RESULTS) -> dict | None:
    """Merge ``stream*.json`` series (the ``BENCH_stream.json`` record)."""
    return _collect_json_series(
        results_dir, "stream*.json", "python -m repro.bench.collect"
    )


def collect_perf(results_dir: Path | str = _DEFAULT_RESULTS) -> dict | None:
    """Merge ``perf*.json`` series (the ``BENCH_perf.json`` record)."""
    return _collect_json_series(
        results_dir, "perf*.json", "python -m repro bench-perf"
    )


def main(argv: list[str] | None = None) -> int:
    """CLI: write REPORT.md and BENCH_stream.json next to the results."""
    argv = sys.argv[1:] if argv is None else argv
    results_dir = Path(argv[0]) if argv else _DEFAULT_RESULTS
    if not results_dir.exists():
        print(f"no results at {results_dir}; run the benchmarks first", file=sys.stderr)
        return 1
    report = collect(results_dir)
    out = results_dir.parent / "REPORT.md"
    out.write_text(report)
    print(f"wrote {out} ({len(report.splitlines())} lines)")
    for name, merged in (
        ("BENCH_stream.json", collect_stream(results_dir)),
        ("BENCH_perf.json", collect_perf(results_dir)),
    ):
        if merged is not None:
            out_path = results_dir.parent / name
            out_path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
            print(f"wrote {out_path} ({len(merged['series'])} series)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
