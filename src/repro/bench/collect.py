"""Consolidate persisted benchmark series into one report.

``python -m repro.bench.collect`` reads every ``benchmarks/results/
*.txt`` block written by the figure benches, orders them by figure id,
and emits a single ``REPORT.md`` — the artifact to skim after a full
``pytest benchmarks/ --benchmark-only`` run.

Machine-readable series are merged per suite into ``BENCH_*.json``
records next to the results directory; the registry in
:data:`COLLECTORS` is the source of truth:

* ``stream*.json`` -> ``BENCH_stream.json`` (events/sec and
  incremental-vs-rebuild speedups, :mod:`repro.stream`);
* ``perf*.json`` -> ``BENCH_perf.json`` (solver hot-path backend and
  lazy-search speedups, :mod:`repro.bench.perfsuite`);
* ``shard*.json`` -> ``BENCH_shard.json`` (shard-count scaling at
  plan identity, :mod:`repro.bench.shardsuite`);
* ``par*.json`` -> ``BENCH_par.json`` (cross-executor byte-identity
  plus non-gating measured-vs-modeled speedup,
  :mod:`repro.bench.parsuite`);
* ``journal*.json`` -> ``BENCH_journal.json`` (crash-recovery
  exactness and durability overhead, :mod:`repro.bench.journalsuite`);
* ``matrix*.json`` -> ``BENCH_matrix.json`` (composed-vs-legacy
  runtime equivalence, :mod:`repro.bench.matrixsuite`);
* ``obs*.json`` -> ``BENCH_obs.json`` (telemetry-off identity, zero
  op-count overhead, trace determinism, :mod:`repro.bench.obssuite`);
* ``degrade*.json`` -> ``BENCH_degrade.json`` (approx-off identity,
  certificate soundness, overload useful work,
  :mod:`repro.bench.degradesuite`);
* ``elastic*.json`` -> ``BENCH_elastic.json`` (migrate-at-every-
  boundary exactness, skewed-arrival rebalancing gain, elastic-off
  identity, :mod:`repro.bench.elasticsuite`);
* ``regress*.json`` -> ``BENCH_regress.json`` (op-count fingerprints
  vs the committed ``benchmarks/baselines/`` ledger,
  :mod:`repro.bench.regresssuite`).

The report also carries a **regression-ledger status** section:
cells checked, drift detected, and how stale each committed baseline
is (by the git commit stamped into its ``meta``).

``BENCH_*.json`` files next to the results directory that no
registered collector produces are *warned about* rather than silently
skipped — a stale or hand-dropped artifact would otherwise rot
unnoticed while looking authoritative.  Each offending filename warns
once per process (suites re-enter :func:`main` after every run, and a
repeated warning for the same file reads as several distinct
problems); :func:`reset_unrecognized_warnings` re-arms them.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

__all__ = [
    "COLLECTORS",
    "collect",
    "collect_degrade",
    "collect_elastic",
    "collect_journal",
    "collect_matrix",
    "collect_obs",
    "collect_par",
    "collect_perf",
    "collect_regress",
    "collect_shard",
    "collect_stream",
    "reset_unrecognized_warnings",
    "unrecognized_artifacts",
    "main",
]

_DEFAULT_RESULTS = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def _sort_key(path: Path) -> tuple:
    """fig6a < fig6b < ... < fig11c < abl1 < ...; numeric-aware."""
    name = path.stem
    match = re.match(r"([a-z]+)(\d+)([a-z]?)", name)
    if not match:
        return (2, name, 0, "")
    prefix, number, letter = match.groups()
    family = 0 if prefix == "fig" else 1
    return (family, prefix, int(number), letter)


def _collect_json_series(
    results_dir: Path | str, pattern: str, generated_by: str
) -> dict | None:
    """Merge every ``<pattern>`` JSON series under ``results_dir``.

    Returns ``None`` when no series exist yet; otherwise a dict of
    ``{series_name: payload}`` ready to dump as a ``BENCH_*.json``.
    """
    results_dir = Path(results_dir)
    series: dict[str, dict] = {}
    for path in sorted(results_dir.glob(pattern)):
        try:
            series[path.stem] = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"skipping unreadable {path}: {exc}", file=sys.stderr)
    if not series:
        return None
    return {"generated_by": generated_by, "series": series}


def collect_stream(results_dir: Path | str = _DEFAULT_RESULTS) -> dict | None:
    """Merge ``stream*.json`` series (the ``BENCH_stream.json`` record)."""
    return _collect_json_series(
        results_dir, "stream*.json", "python -m repro.bench.collect"
    )


def collect_perf(results_dir: Path | str = _DEFAULT_RESULTS) -> dict | None:
    """Merge ``perf*.json`` series (the ``BENCH_perf.json`` record)."""
    return _collect_json_series(
        results_dir, "perf*.json", "python -m repro bench-perf"
    )


def collect_shard(results_dir: Path | str = _DEFAULT_RESULTS) -> dict | None:
    """Merge ``shard*.json`` series (the ``BENCH_shard.json`` record)."""
    return _collect_json_series(
        results_dir, "shard*.json", "python -m repro bench-shard"
    )


def collect_par(results_dir: Path | str = _DEFAULT_RESULTS) -> dict | None:
    """Merge ``par*.json`` series (the ``BENCH_par.json`` record)."""
    return _collect_json_series(
        results_dir, "par*.json", "python -m repro bench-par"
    )


def collect_journal(results_dir: Path | str = _DEFAULT_RESULTS) -> dict | None:
    """Merge ``journal*.json`` series (the ``BENCH_journal.json`` record)."""
    return _collect_json_series(
        results_dir, "journal*.json", "python -m repro bench-journal"
    )


def collect_matrix(results_dir: Path | str = _DEFAULT_RESULTS) -> dict | None:
    """Merge ``matrix*.json`` series (the ``BENCH_matrix.json`` record)."""
    return _collect_json_series(
        results_dir, "matrix*.json", "python -m repro matrix"
    )


def collect_obs(results_dir: Path | str = _DEFAULT_RESULTS) -> dict | None:
    """Merge ``obs*.json`` series (the ``BENCH_obs.json`` record)."""
    return _collect_json_series(
        results_dir, "obs*.json", "python -m repro bench-obs"
    )


def collect_degrade(results_dir: Path | str = _DEFAULT_RESULTS) -> dict | None:
    """Merge ``degrade*.json`` series (the ``BENCH_degrade.json`` record)."""
    return _collect_json_series(
        results_dir, "degrade*.json", "python -m repro bench-degrade"
    )


def collect_elastic(results_dir: Path | str = _DEFAULT_RESULTS) -> dict | None:
    """Merge ``elastic*.json`` series (the ``BENCH_elastic.json`` record)."""
    return _collect_json_series(
        results_dir, "elastic*.json", "python -m repro bench-elastic"
    )


def collect_regress(results_dir: Path | str = _DEFAULT_RESULTS) -> dict | None:
    """Merge ``regress*.json`` series (the ``BENCH_regress.json`` record)."""
    return _collect_json_series(
        results_dir, "regress*.json", "python -m repro bench-regress"
    )


#: Artifact name -> (series glob, collector).  Every ``BENCH_*.json``
#: the repo produces must be registered here; ``main`` regenerates
#: each one and warns about artifacts no collector owns.
COLLECTORS: dict[str, tuple[str, callable]] = {
    "BENCH_stream.json": ("stream*.json", collect_stream),
    "BENCH_perf.json": ("perf*.json", collect_perf),
    "BENCH_shard.json": ("shard*.json", collect_shard),
    "BENCH_par.json": ("par*.json", collect_par),
    "BENCH_journal.json": ("journal*.json", collect_journal),
    "BENCH_matrix.json": ("matrix*.json", collect_matrix),
    "BENCH_obs.json": ("obs*.json", collect_obs),
    "BENCH_degrade.json": ("degrade*.json", collect_degrade),
    "BENCH_elastic.json": ("elastic*.json", collect_elastic),
    "BENCH_regress.json": ("regress*.json", collect_regress),
}


def unrecognized_artifacts(bench_dir: Path | str) -> list[str]:
    """``BENCH_*.json`` files no registered collector produces."""
    bench_dir = Path(bench_dir)
    return sorted(
        path.name
        for path in bench_dir.glob("BENCH_*.json")
        if path.name not in COLLECTORS
    )


#: Unrecognized artifact names already warned about this process.
_warned_unrecognized: set[str] = set()


def reset_unrecognized_warnings() -> None:
    """Forget which artifacts warned (tests assert the once-semantics)."""
    _warned_unrecognized.clear()


def _artifact_section(bench_dir: Path) -> str:
    """Markdown block indexing the machine-readable ``BENCH_*.json``
    artifacts (series counts, provenance, unrecognized warnings)."""
    lines = ["## Machine-readable artifacts", ""]
    found = False
    for name in sorted(COLLECTORS):
        path = bench_dir / name
        if not path.exists():
            continue
        found = True
        try:
            payload = json.loads(path.read_text())
            detail = (
                f"{len(payload.get('series', {}))} series, "
                f"regenerate with `{payload.get('generated_by', '?')}`"
            )
        except (OSError, json.JSONDecodeError) as exc:
            detail = f"unreadable: {exc}"
        lines.append(f"* `{name}` — {detail}")
    if not found:
        lines.append("* (none yet — run the benchmark suites)")
    for name in unrecognized_artifacts(bench_dir):
        lines.append(
            f"* `{name}` — **unrecognized**: no registered collector "
            "produces this artifact"
        )
    return "\n".join(lines) + "\n"


def _par_section(results_dir: Path) -> str:
    """Markdown block on measured wall clock vs the modeled makespan.

    Clearly labeled as **non-gating**: CI asserts the identity columns
    of the par suite, never these numbers — they describe the host the
    suite happened to run on (``cpu_count`` is printed so single-core
    runners read as what they are).
    """
    lines = ["## Measured vs modeled parallelism (non-gating)", ""]
    payload_path = results_dir / "par_suite.json"
    if not payload_path.exists():
        lines.append(
            "* not run yet — `python -m repro bench-par` measures the "
            "process-pool executor against the modeled SimCluster makespan"
        )
        return "\n".join(lines) + "\n"
    try:
        payload = json.loads(payload_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        lines.append(f"* `{payload_path.name}` unreadable: {exc}")
        return "\n".join(lines) + "\n"
    host = payload.get("host", {})
    lines.append(
        f"* host: cpu_count={host.get('cpu_count', '?')} "
        f"platform={host.get('platform', '?')} — wall-clock numbers are "
        "**reported, never gated** (the identity columns are the CI gate)"
    )
    lines.append(
        f"* target: >= {payload.get('target_speedup', '?')}x measured at "
        "4+ shards on scale32, on hosts with the cores to show it"
    )
    lines.append("")
    lines.append(
        "| scenario | shards | executor | wall (s) | measured x | "
        "modeled x | identical |"
    )
    lines.append("| --- | --- | --- | --- | --- | --- | --- |")
    for scenario in payload.get("scenarios", []):
        for count in sorted(scenario["shards"], key=int):
            row = scenario["shards"][count]
            for kind in payload.get("executors", []):
                arm = row["executors"][kind]
                lines.append(
                    f"| {scenario['name']} | {count} | {kind} "
                    f"| {arm['wall_s']:.4f} "
                    f"| {arm['speedup_vs_serial']:.2f} "
                    f"| {row['modeled']['speedup']:.2f} "
                    f"| {'yes' if row['identical'] else 'NO'} |"
                )
    return "\n".join(lines) + "\n"


def _ledger_section(results_dir: Path) -> str:
    """Markdown block on the regression ledger: cells checked, drift
    detected, and each committed baseline's age (by git commit)."""
    lines = ["## Regression-ledger status", ""]
    payload_path = results_dir / "regress_suite.json"
    if not payload_path.exists():
        lines.append(
            "* not run yet — `python -m repro bench-regress` fingerprints "
            "the smoke cells against `benchmarks/baselines/`"
        )
        return "\n".join(lines) + "\n"
    try:
        payload = json.loads(payload_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        lines.append(f"* `{payload_path.name}` unreadable: {exc}")
        return "\n".join(lines) + "\n"
    cells = payload.get("cells", [])
    drifted = [c["cell"] for c in cells if c.get("baseline") == "drift"]
    missing = [c["cell"] for c in cells if c.get("baseline") == "missing"]
    lines.append(
        f"* {len(cells)} cells checked against "
        f"`{payload.get('baselines_dir', '?')}`"
    )
    lines.append(
        "* drift detected: " + (", ".join(drifted) if drifted else "none")
    )
    if missing:
        lines.append("* missing baselines: " + ", ".join(missing))
    gates = payload.get("diff_gates", {})
    if gates:
        lines.append(
            "* trace-diff gates: "
            f"same-spec identical={gates.get('same_spec_identical')}, "
            f"fault localized at seq={gates.get('fault_seq')} "
            f"span=`{gates.get('fault_span')}` "
            f"stable={gates.get('fault_stable')}"
        )
    lines.append("")
    lines.append("| cell | status | critical path (op cost) | baseline commit |")
    lines.append("| --- | --- | --- | --- |")
    for cell in cells:
        lines.append(
            f"| `{cell['cell']}` | {cell.get('baseline', '?')} "
            f"| {cell.get('critical_path_total', '?')} "
            f"| {cell.get('baseline_commit') or '-'} |"
        )
    return "\n".join(lines) + "\n"


def collect(results_dir: Path | str = _DEFAULT_RESULTS) -> str:
    """Concatenate all result blocks into one markdown document."""
    results_dir = Path(results_dir)
    blocks = []
    for path in sorted(results_dir.glob("*.txt"), key=_sort_key):
        blocks.append("```\n" + path.read_text().rstrip() + "\n```")
    header = (
        "# Benchmark report\n\n"
        f"{len(blocks)} figure series collected from `{results_dir}`.\n"
        "Regenerate with `pytest benchmarks/ --benchmark-only`.\n"
    )
    body = header + "\n\n" + "\n\n".join(blocks) + "\n"
    return (
        body
        + "\n"
        + _artifact_section(results_dir.parent)
        + "\n"
        + _par_section(results_dir)
        + "\n"
        + _ledger_section(results_dir)
    )


def main(argv: list[str] | None = None) -> int:
    """CLI: write REPORT.md and every registered BENCH_*.json."""
    argv = sys.argv[1:] if argv is None else argv
    results_dir = Path(argv[0]) if argv else _DEFAULT_RESULTS
    if not results_dir.exists():
        print(f"no results at {results_dir}; run the benchmarks first", file=sys.stderr)
        return 1
    bench_dir = results_dir.parent
    for name, (pattern, collector) in sorted(COLLECTORS.items()):
        merged = collector(results_dir)
        if merged is not None:
            out_path = bench_dir / name
            out_path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
            print(f"wrote {out_path} ({len(merged['series'])} series)")
        elif (bench_dir / name).exists():
            # The artifact exists but its source series are gone: it
            # can no longer be regenerated and is silently rotting.
            print(
                f"warning: {bench_dir / name} is stale — no {pattern} series "
                f"under {results_dir} to regenerate it from",
                file=sys.stderr,
            )
    for name in unrecognized_artifacts(bench_dir):
        if name in _warned_unrecognized:
            continue
        _warned_unrecognized.add(name)
        print(
            f"warning: {bench_dir / name} matches no registered collector "
            "(stale or hand-dropped benchmark artifact?)",
            file=sys.stderr,
        )
    report = collect(results_dir)
    out = bench_dir / "REPORT.md"
    out.write_text(report)
    print(f"wrote {out} ({len(report.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
