"""Benchmark support: reporters, shared workloads, and baselines.

The ``benchmarks/`` tree regenerates every table and figure of the
paper's evaluation (Section V plus Appendix C).  This package holds
the pieces the benchmark modules share: a row reporter that both
prints and persists each figure's series
(:mod:`repro.bench.report`), and the multi-task random baseline the
quality figures compare against (:mod:`repro.bench.baselines`).
"""

from repro.bench.baselines import random_multi_assignment
from repro.bench.report import Reporter

__all__ = ["Reporter", "random_multi_assignment"]
