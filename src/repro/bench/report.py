"""Figure reporter: prints paper-style series and persists them.

``pytest`` captures stdout, so every benchmark writes its series both
to the terminal and to ``benchmarks/results/<figure>.txt``; the
EXPERIMENTS.md index links those files as the reproduction record.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["Reporter"]


class Reporter:
    """Collects rows for one figure and writes them on close."""

    def __init__(self, figure: str, title: str, *, results_dir: str | os.PathLike | None = None):
        self.figure = figure
        self.title = title
        if results_dir is None:
            results_dir = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
        self.results_dir = Path(results_dir)
        self._lines: list[str] = [f"# {figure}: {title}"]

    def note(self, text: str) -> None:
        """A free-form annotation (scale-down notes, substitutions)."""
        self._lines.append(f"note: {text}")

    def header(self, *columns: str) -> None:
        """Column headers for the following rows."""
        self._lines.append(" | ".join(str(c) for c in columns))
        self._lines.append("-" * min(len(self._lines[-1]), 79))

    def row(self, *values) -> None:
        """One data row; floats are formatted to 6 significant digits."""
        formatted = [
            f"{v:.6g}" if isinstance(v, float) else str(v) for v in values
        ]
        self._lines.append(" | ".join(formatted))

    def chart(self, x_labels, series, *, log: bool = False, height: int = 10) -> None:
        """Append an ASCII line chart of the figure's series."""
        from repro.bench.ascii_plot import line_chart

        self._lines.append("")
        self._lines.append(line_chart(x_labels, series, log=log, height=height))

    def close(self) -> Path:
        """Print the figure block and persist it; returns the file path."""
        block = "\n".join(self._lines)
        print("\n" + block + "\n")
        self.results_dir.mkdir(parents=True, exist_ok=True)
        path = self.results_dir / f"{self.figure}.txt"
        path.write_text(block + "\n")
        return path


def signature_hash(signature) -> str:
    """Stable 16-hex digest of a plan signature (tuples of ints).

    Shared by the shard and journal suites so their ``signature``
    fields stay cross-comparable (the one-shard-equals-plain gate
    compares digests across payload sections).
    """
    import hashlib

    return hashlib.sha256(repr(signature).encode()).hexdigest()[:16]
