"""Multi-task random baseline (the ``Rand`` lines of Figs. 7 and 11).

Random assignment generalized to a task set: repeatedly pick a uniform
random unexecuted (task, slot) pair whose nearest remaining worker is
affordable, assign it, and consume the worker — exactly the paper's
"randomly assigning a subtask to its nearest worker" under the shared
budget.
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluator import TemporalQualityEvaluator
from repro.engine.costs import DynamicCostProvider
from repro.engine.registry import WorkerRegistry
from repro.model.assignment import Assignment, AssignmentRecord, Budget
from repro.model.task import TaskSet
from repro.util.rng import make_rng

__all__ = ["random_multi_assignment"]


def random_multi_assignment(
    tasks: TaskSet,
    registry: WorkerRegistry,
    *,
    k: int = 3,
    budget: float,
    seed: int | np.random.Generator | None = 0,
    return_assignment: bool = False,
) -> dict[int, float] | tuple[dict[int, float], Assignment]:
    """One random multi-task trial; returns task_id -> quality.

    With ``return_assignment=True`` the raw assignment is returned too,
    so callers can re-score the same plan under other metrics (the
    spatiotemporal figures do this).
    """
    rng = make_rng(seed)
    budget_tracker = Budget(budget)
    assignment = Assignment()
    evaluators = {
        task.task_id: TemporalQualityEvaluator(task.num_slots, k) for task in tasks
    }
    providers = {
        task.task_id: DynamicCostProvider(task, registry) for task in tasks
    }
    by_id = {task.task_id: task for task in tasks}
    pairs = [(task.task_id, slot) for task in tasks for slot in task.slots]
    order = rng.permutation(len(pairs))
    for idx in order:
        task_id, slot = pairs[idx]
        offer = providers[task_id].offer(slot)
        if offer is None or not budget_tracker.can_afford(offer.cost):
            continue
        evaluators[task_id].execute(slot, offer.reliability)
        budget_tracker.charge(offer.cost)
        global_slot = by_id[task_id].global_slot(slot)
        registry.consume(offer.worker_id, global_slot)
        assignment.add(AssignmentRecord(task_id, slot, offer.worker_id, offer.cost))
        for other_id, provider in providers.items():
            if other_id != task_id:
                provider.invalidate_worker(offer.worker_id, global_slot)
    qualities = {task_id: ev.quality for task_id, ev in evaluators.items()}
    if return_assignment:
        return qualities, assignment
    return qualities
