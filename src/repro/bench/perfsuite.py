"""Deterministic performance suite: the machine-readable perf trajectory.

``python -m repro bench-perf`` (or ``python -m repro.bench.perfsuite``)
runs seed-pinned micro and macro benchmarks of the solver hot path and
persists them as ``benchmarks/results/perf_suite.json``;
:mod:`repro.bench.collect` merges every ``perf*.json`` series into
``benchmarks/BENCH_perf.json``, the file the perf trajectory
accumulates in from PR to PR.

Two measurements per scenario, following the repo's determinism
policy:

* **operation counts** (``gain_evaluations`` / ``slot_evaluations`` /
  ``knn_queries``) — deterministic, the values CI gates on;
* **wall-clock seconds** — recorded for the human-readable speedup
  story, never asserted in CI.

Every macro scenario asserts *plan identity*: all benchmarked solver
variants (scalar/numpy backend x enumerated/lazy search x tree index)
must produce byte-identical assignments, so each speedup row is a
true apples-to-apples comparison of the same plan.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.instrumentation import OpCounters
from repro.engine.costs import SingleTaskCostTable
from repro.runtime import SolverVariant, build_single_task_solver
from repro.workloads.scenario import ScenarioConfig, build_scenario

__all__ = [
    "PerfScenario",
    "SCENARIOS",
    "SMOKE_SCENARIOS",
    "VARIANTS",
    "run_suite",
    "run_and_write",
    "check_payload",
    "main",
]

_DEFAULT_RESULTS = Path(__file__).resolve().parents[3] / "benchmarks" / "results"

#: The seed solver path every speedup is measured against.
BASELINE_VARIANT = "python-enumerate"
#: The optimized path this PR introduces.
OPTIMIZED_VARIANT = "numpy-lazy"

#: Lazy search must cut candidate heuristic evaluations to at most
#: this fraction of the enumerated argmax (deterministic CI gate).
LAZY_GAIN_EVAL_CEILING = 0.30


@dataclass(frozen=True, slots=True)
class PerfScenario:
    """One seed-pinned macro benchmark instance."""

    name: str
    m: int
    workers: int
    seed: int


#: Increasing-scale scenarios; the largest one (m >= 300, the paper's
#: default task length) carries the headline speedup number.
SCENARIOS = (
    PerfScenario("small", m=60, workers=300, seed=11),
    PerfScenario("medium", m=140, workers=600, seed=11),
    PerfScenario("large", m=300, workers=1000, seed=11),
)

#: CI smoke mode: just the smallest scenario (seconds, not minutes).
SMOKE_SCENARIOS = SCENARIOS[:1]


#: Solver variants benchmarked on every scenario, as the runtime's
#: shared :class:`~repro.runtime.SolverVariant` triples — the same
#: resolution the serving solvers use, so the suite cannot drift from
#: the production kwarg threading.  The seed hot path
#: (``python-enumerate``) uses scalar kernels with every candidate
#: re-scored per greedy round (the seed's faster ``strategy="local"``
#: configuration, so speedups are conservative).
VARIANTS = {
    "python-enumerate": SolverVariant(),
    "python-lazy": SolverVariant(search="lazy"),
    "numpy-enumerate": SolverVariant(backend="numpy"),
    "numpy-lazy": SolverVariant(backend="numpy", search="lazy"),
    "indexed-python": SolverVariant(use_index=True),
    "indexed-numpy": SolverVariant(backend="numpy", use_index=True),
}


def _run_scenario(scenario: PerfScenario) -> dict:
    built = build_scenario(
        ScenarioConfig(
            num_tasks=1,
            num_slots=scenario.m,
            num_workers=scenario.workers,
            seed=scenario.seed,
        )
    )
    task = built.single_task
    costs = SingleTaskCostTable(task, built.fresh_registry())
    variants: dict[str, dict] = {}
    signatures = {}
    for name, variant in VARIANTS.items():
        counters = OpCounters()
        solver = build_single_task_solver(
            variant, task, costs, budget=built.budget, counters=counters
        )
        start = time.perf_counter()
        result = solver.solve()
        elapsed = time.perf_counter() - start
        signatures[name] = result.assignment.plan_signature()
        variants[name] = {
            "wall_s": elapsed,
            "quality": result.quality,
            "gain_evaluations": counters.gain_evaluations,
            "slot_evaluations": counters.slot_evaluations,
            "knn_queries": counters.knn_queries,
            "candidates_total": counters.candidates_total,
            "candidates_pruned": counters.candidates_pruned,
            "iterations": counters.iterations,
        }
    reference = signatures[BASELINE_VARIANT]
    plan_identical = all(sig == reference for sig in signatures.values())
    # A divergence is reported through check_payload (the op-count
    # gate), not raised: the JSON must still be written so CI's
    # always()-uploaded artifact carries the diagnostic payload.
    base = variants[BASELINE_VARIANT]
    opt = variants[OPTIMIZED_VARIANT]
    return {
        "name": scenario.name,
        "m": scenario.m,
        "workers": scenario.workers,
        "seed": scenario.seed,
        "plan_identical": plan_identical,
        "divergent_variants": sorted(
            n for n, s in signatures.items() if s != reference
        ),
        "plan_length": len(reference),
        "variants": variants,
        "speedups": {
            "numpy_lazy_vs_python_enumerate_wall": base["wall_s"] / opt["wall_s"],
            "lazy_gain_evaluation_ratio": (
                opt["gain_evaluations"] / base["gain_evaluations"]
            ),
            "numpy_lazy_slot_evaluation_ratio": (
                opt["slot_evaluations"] / base["slot_evaluations"]
            ),
        },
    }


def _micro_phi(m: int = 300, k: int = 3, repeats: int = 200) -> dict:
    """Micro benchmark: one full-window vectorized gain vs the scalar loop."""
    from repro.core.evaluator import TemporalQualityEvaluator

    rows = {}
    for backend in ("python", "numpy"):
        ev = TemporalQualityEvaluator(m, k, backend=backend)
        for slot in range(20, m, 40):
            ev.execute(slot)
        candidate = 3
        start = time.perf_counter()
        for _ in range(repeats):
            ev.gain_full_rescan(candidate)
        elapsed = time.perf_counter() - start
        rows[backend] = {
            "wall_s": elapsed,
            "gain_per_s": repeats / elapsed if elapsed > 0 else float("inf"),
        }
    rows["speedup"] = rows["python"]["wall_s"] / rows["numpy"]["wall_s"]
    return {"m": m, "k": k, "repeats": repeats, "full_rescan_gain": rows}


def run_suite(*, smoke: bool = False) -> dict:
    """Run the suite and return the machine-readable payload."""
    scenarios = SMOKE_SCENARIOS if smoke else SCENARIOS
    payload = {
        "suite": "perfsuite",
        "mode": "smoke" if smoke else "full",
        "baseline_variant": BASELINE_VARIANT,
        "optimized_variant": OPTIMIZED_VARIANT,
        "micro": _micro_phi(m=120 if smoke else 300, repeats=50 if smoke else 200),
        "scenarios": [_run_scenario(s) for s in scenarios],
    }
    return payload


def check_payload(payload: dict) -> list[str]:
    """Deterministic (op-count) gates; returns a list of failures.

    Wall-clock numbers are deliberately not checked — per the repo's
    determinism policy, CI gates only on operation counts.
    """
    failures = []
    for scenario in payload["scenarios"]:
        name = scenario["name"]
        if not scenario["plan_identical"]:
            failures.append(
                f"{name}: solver variants diverged from the "
                f"{payload['baseline_variant']} plan"
            )
        ratio = scenario["speedups"]["lazy_gain_evaluation_ratio"]
        if ratio > LAZY_GAIN_EVAL_CEILING:
            failures.append(
                f"{name}: lazy gain-evaluation ratio {ratio:.3f} exceeds "
                f"{LAZY_GAIN_EVAL_CEILING}"
            )
        base = scenario["variants"][BASELINE_VARIANT]
        opt = scenario["variants"][OPTIMIZED_VARIANT]
        for counter in ("iterations",):
            if base[counter] != opt[counter]:
                failures.append(
                    f"{name}: {counter} mismatch "
                    f"({base[counter]} vs {opt[counter]})"
                )
    return failures


def _write_report_block(payload: dict, results_dir: Path) -> None:
    """Persist a human-readable summary block for REPORT.md."""
    from repro.bench import Reporter

    reporter = Reporter("perf1", "Perf suite: kernel backend x candidate search",
                        results_dir=results_dir)
    reporter.note(
        f"baseline={payload['baseline_variant']} "
        f"optimized={payload['optimized_variant']}; plans identical across all variants"
    )
    reporter.header("scenario", "m", "variant", "wall_s", "gain_evals", "slot_evals")
    for scenario in payload["scenarios"]:
        for name, row in scenario["variants"].items():
            reporter.row(
                scenario["name"], scenario["m"], name,
                row["wall_s"], row["gain_evaluations"], row["slot_evaluations"],
            )
    reporter.close()


def run_and_write(*, smoke: bool = False, results_dir: str | Path | None = None) -> int:
    """Run the suite, persist JSON, refresh BENCH_perf.json.

    The single entry point behind both ``python -m repro bench-perf``
    and ``python -m repro.bench.perfsuite``; returns a process exit
    code (non-zero when an op-count gate fails).

    With the default layout, series land in ``benchmarks/results/``
    and the merged ``BENCH_perf.json`` next to them in ``benchmarks/``;
    a custom ``results_dir`` keeps *everything* inside that directory
    (never its parent).
    """
    if results_dir is None:
        results_dir = _DEFAULT_RESULTS
        bench_dir = results_dir.parent
    else:
        results_dir = Path(results_dir)
        bench_dir = results_dir
    results_dir.mkdir(parents=True, exist_ok=True)

    payload = run_suite(smoke=smoke)
    out = results_dir / "perf_suite.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    _write_report_block(payload, results_dir)

    from repro.bench.collect import collect_perf

    merged = collect_perf(results_dir)
    if merged is not None:
        bench_out = bench_dir / "BENCH_perf.json"
        bench_out.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"wrote {bench_out}")

    for scenario in payload["scenarios"]:
        speed = scenario["speedups"]
        print(
            f"{scenario['name']}: m={scenario['m']} "
            f"numpy+lazy {speed['numpy_lazy_vs_python_enumerate_wall']:.1f}x "
            f"wall-clock vs seed, lazy gain-eval ratio "
            f"{speed['lazy_gain_evaluation_ratio']:.3f}"
        )

    failures = check_payload(payload)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Standalone CLI wrapper around :func:`run_and_write`."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro.bench.perfsuite")
    parser.add_argument("--smoke", action="store_true",
                        help="smallest scenario only (CI smoke mode)")
    parser.add_argument("--results-dir", default=None,
                        help="override benchmarks/results output directory")
    args = parser.parse_args(argv)
    return run_and_write(smoke=args.smoke, results_dir=args.results_dir)


if __name__ == "__main__":
    sys.exit(main())
