"""Runtime equivalence matrix: composed vs legacy, byte-identical.

``python -m repro matrix`` (or ``python -m repro.bench.matrixsuite``)
sweeps the capability grid

    {plain, stream} x shards {1, 2, 4} x journal {off, on}
                    x backend {python, numpy}

and, for every *composable* cell, runs the same seed-pinned workload
twice: once through the spec-driven factory
(:func:`repro.runtime.build_runtime`) and once through the
pre-refactor legacy-class path (``SequentialServingSolver`` /
``ShardedTCSCServer`` / ``StreamingTCSCServer`` /
``ShardedStreamingServer`` / the deprecated ``Journaled*`` shims).
The two runs must agree **byte-for-byte** on ``plan_signature()``,
``StreamMetrics``, and ``OpCounters`` — the refactor's acceptance
invariant.  Cells the spec layer rejects (journal without stream
mode) are recorded as typed rejections and the sweep asserts the
rejection actually fires.

Two bonus gates ride along:

* **zero-overhead journaling** — within one (mode, shards, backend)
  group, the journal-on cell must equal the journal-off cell exactly
  (the PR-4 invariant, now re-proven through the layer seam);
* **backend identity** — every cell's plan must match the
  ``backend="python"`` cell of its (mode, shards, journal) group (the
  PR-2 invariant, re-proven through the factory).

Per the repo's determinism policy every gate is equality/op-count
based; wall-clock is recorded for humans only.  The merged artifact
is ``benchmarks/BENCH_matrix.json`` via
:func:`repro.bench.collect.collect_matrix`.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
import warnings
from pathlib import Path

from repro.bench.report import signature_hash as _signature_hash
from repro.errors import SpecError
from repro.runtime import RunSpec, WorkloadSpec, build_runtime

__all__ = [
    "MATRIX_MODES",
    "SHARD_COUNTS",
    "BACKENDS",
    "run_suite",
    "run_and_write",
    "check_payload",
    "main",
]

_DEFAULT_RESULTS = Path(__file__).resolve().parents[3] / "benchmarks" / "results"

#: The acceptance grid (smoke mode trims shards and backends).
MATRIX_MODES = ("plain", "stream")
SHARD_COUNTS = (1, 2, 4)
BACKENDS = ("python", "numpy")

SMOKE_SHARD_COUNTS = (1, 2)
SMOKE_BACKENDS = ("python",)

#: Base specs per mode; the sweep rewrites mode/shards/journal/backend.
_FULL_BASES = {
    "plain": RunSpec(
        mode="plain",
        workload=WorkloadSpec(tasks=12, slots=16, workers=240, seed=13),
    ),
    "stream": RunSpec(
        mode="stream",
        workload=WorkloadSpec(
            horizon=16, task_rate=0.3, task_slots=8, initial_workers=14,
            join_rate=0.8, mean_lifetime=12.0, seed=9,
        ),
        k=2, epoch_length=3.0, budget_fraction=0.6,
        max_active_tasks=4, max_queue_depth=8, snapshot_every=2,
    ),
}

_SMOKE_BASES = {
    "plain": _FULL_BASES["plain"].replace(
        workload=WorkloadSpec(tasks=6, slots=12, workers=150, seed=13)
    ),
    "stream": _FULL_BASES["stream"].replace(
        workload=WorkloadSpec(
            horizon=10, task_rate=0.3, task_slots=8, initial_workers=12,
            join_rate=0.8, mean_lifetime=12.0, seed=9,
        )
    ),
}


# ----------------------------------------------------------------------
# Legacy-class counterparts (the pre-refactor construction paths)
# ----------------------------------------------------------------------
def _legacy_plain(spec: RunSpec):
    """The PR-3 classes, constructed by hand as PR-3 code did."""
    from repro.shard.server import SequentialServingSolver, ShardedTCSCServer
    from repro.workloads.scenario import ScenarioConfig, build_scenario
    from repro.workloads.spatial import Distribution

    w = spec.workload
    built = build_scenario(
        ScenarioConfig(
            num_tasks=w.tasks, num_slots=w.slots, num_workers=w.workers,
            distribution=Distribution(w.distribution), seed=w.seed,
            k=spec.k, budget_fraction=spec.budget_fraction,
        )
    )
    common = dict(
        k=spec.k, ts=spec.ts,
        engine="indexed" if spec.use_index else "greedy",
        search=spec.search, backend=spec.backend,
    )
    if spec.shards == 1:
        solver = SequentialServingSolver(built.pool, built.bbox, **common)
    else:
        solver = ShardedTCSCServer(
            built.pool, built.bbox, num_shards=spec.shards,
            halo=spec.halo, cells_per_side=spec.cells_per_side, **common,
        )
    report = solver.assign(built.tasks, budget_fraction=spec.budget_fraction)
    return {
        "plan": report.plan_signature(),
        "counters": report.counters,
        "metrics": None,
        "qualities": dict(report.qualities),
    }


def _legacy_stream(spec: RunSpec, workdir: Path):
    """The PR-1/3/4 classes, constructed by hand as their PRs did."""
    from repro.journal.sharded import JournaledShardedStreamingServer
    from repro.journal.server import JournaledStreamingServer
    from repro.shard.streaming import ShardedStreamingServer
    from repro.stream.online_server import StreamingTCSCServer
    from repro.workloads.spatial import Distribution
    from repro.workloads.streaming import StreamScenarioConfig, build_stream_events

    w = spec.workload
    built = build_stream_events(
        StreamScenarioConfig(
            horizon=w.horizon, task_rate=w.task_rate, burstiness=w.burstiness,
            task_slots=w.task_slots, initial_workers=w.initial_workers,
            worker_join_rate=w.join_rate, mean_worker_lifetime=w.mean_lifetime,
            early_leave_prob=w.early_leave_prob,
            distribution=Distribution(w.distribution), seed=w.seed,
        )
    )
    kwargs = dict(
        k=spec.k, ts=spec.ts, epoch_length=spec.epoch_length,
        index_mode=spec.index_mode, budget_fraction=spec.budget_fraction,
        max_active_tasks=spec.max_active_tasks,
        max_queue_depth=spec.max_queue_depth, pool_budget=spec.pool_budget,
        realization_seed=w.seed, backend=spec.backend,
    )
    journaled = spec.journal is not None
    with warnings.catch_warnings():
        # The deprecated spellings are the *point* of the legacy arm.
        warnings.simplefilter("ignore", DeprecationWarning)
        if spec.shards == 1:
            if journaled:
                server = JournaledStreamingServer(
                    built.bbox, journal=workdir / "legacy-journal",
                    snapshot_every=spec.snapshot_every, **kwargs,
                )
            else:
                server = StreamingTCSCServer(built.bbox, **kwargs)
        elif journaled:
            server = JournaledShardedStreamingServer(
                built.bbox, journal_root=workdir / "legacy-journal",
                num_shards=spec.shards, cells_per_side=spec.cells_per_side,
                halo_margin=spec.halo, snapshot_every=spec.snapshot_every,
                **kwargs,
            )
        else:
            server = ShardedStreamingServer(
                built.bbox, num_shards=spec.shards,
                cells_per_side=spec.cells_per_side, halo_margin=spec.halo,
                **kwargs,
            )
    metrics = server.run(list(built.events))
    counters = (
        tuple(s.counters for s in server.servers)
        if spec.shards > 1
        else server.counters
    )
    return {
        "plan": server.assignment().plan_signature(),
        "counters": counters,
        "metrics": metrics,
        "qualities": dict(metrics.promised_quality),
    }


def _digest(obj) -> str:
    """Deterministic fingerprint of counters/metrics state.

    ``repr`` of the dataclasses is stable under the determinism
    policy (shortest-repr floats, insertion-ordered dicts), so equal
    digests across cells mean byte-equal observable state.
    """
    import hashlib

    return hashlib.sha256(repr(obj).encode()).hexdigest()[:16]


def _cell_spec(base: RunSpec, mode, shards, journaled, backend, workdir: Path):
    """The composed-arm spec of one grid cell (may be invalid)."""
    journal = (
        str(workdir / f"composed-{mode}-s{shards}-{backend}")
        if journaled
        else None
    )
    return base.replace(
        mode=mode, shards=shards, backend=backend, journal=journal
    )


def _run_cell(base: RunSpec, mode, shards, journaled, backend, workdir) -> dict:
    cell = {
        "mode": mode,
        "shards": shards,
        "journal": journaled,
        "backend": backend,
    }
    try:
        spec = _cell_spec(base, mode, shards, journaled, backend, workdir)
        spec.validate()
    except SpecError as exc:
        # The typed rejection is itself part of the acceptance matrix:
        # the spec layer must refuse what the runtime cannot compose.
        cell.update(valid=False, error=type(exc).__name__, reason=str(exc))
        return cell
    start = time.perf_counter()
    outcome = build_runtime(spec).run()
    wall_composed = time.perf_counter() - start

    start = time.perf_counter()
    if mode == "plain":
        legacy = _legacy_plain(spec)
    else:
        legacy = _legacy_stream(spec, workdir)
    wall_legacy = time.perf_counter() - start

    composed_counters = (
        list(outcome.counters)
        if isinstance(outcome.counters, tuple)
        else outcome.counters
    )
    legacy_counters = (
        list(legacy["counters"])
        if isinstance(legacy["counters"], tuple)
        else legacy["counters"]
    )
    cell.update(
        valid=True,
        plan_identical=outcome.plan_signature == legacy["plan"],
        counters_identical=composed_counters == legacy_counters,
        metrics_identical=(
            None if mode == "plain" else outcome.metrics == legacy["metrics"]
        ),
        qualities_identical=outcome.qualities == legacy["qualities"],
        plan_length=len(outcome.plan_signature),
        signature=_signature_hash(outcome.plan_signature),
        # Fingerprints for the cross-cell gates (journal on == off):
        # the full observable state, not just the plan.
        counters_digest=_digest(composed_counters),
        metrics_digest=None if mode == "plain" else _digest(outcome.metrics),
        wall_composed_s=wall_composed,
        wall_legacy_s=wall_legacy,
    )
    return cell


def run_suite(*, smoke: bool = False) -> dict:
    """Run the grid and return the machine-readable payload."""
    bases = _SMOKE_BASES if smoke else _FULL_BASES
    shard_counts = SMOKE_SHARD_COUNTS if smoke else SHARD_COUNTS
    backends = SMOKE_BACKENDS if smoke else BACKENDS
    cells: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="matrixsuite-") as tmp:
        workdir = Path(tmp)
        for mode in MATRIX_MODES:
            for shards in shard_counts:
                for backend in backends:
                    for journaled in (False, True):
                        cells.append(
                            _run_cell(
                                bases[mode], mode, shards, journaled,
                                backend,
                                workdir / f"{mode}-s{shards}-{backend}-"
                                          f"{'j' if journaled else 'p'}",
                            )
                        )
    return {
        "suite": "matrixsuite",
        "mode": "smoke" if smoke else "full",
        "grid": {
            "modes": list(MATRIX_MODES),
            "shards": list(shard_counts),
            "journal": [False, True],
            "backends": list(backends),
        },
        "cells": cells,
    }


def _group_key(cell: dict) -> tuple:
    return (cell["mode"], cell["shards"], cell["backend"])


def check_payload(payload: dict) -> list[str]:
    """Deterministic gates; returns a list of failure strings.

    * **Composed == legacy** — every valid cell byte-identical in
      plan signature, op counters, stream metrics, and qualities.
    * **Typed rejection** — every invalid cell is a journal-without-
      stream pairing rejected with ``SpecError``; nothing else may be
      skipped (silent truncation would read as full coverage).
    * **Zero-overhead journaling** — journal-on equals journal-off
      within each (mode, shards, backend) group.
    * **Backend identity** — every cell's plan matches its group's
      ``python`` cell.

    Wall-clock is deliberately unchecked (determinism policy).
    """
    failures = []
    by_cell = {}
    for cell in payload["cells"]:
        name = (f"{cell['mode']}/shards={cell['shards']}/"
                f"journal={'on' if cell['journal'] else 'off'}/"
                f"{cell['backend']}")
        by_cell[(cell["mode"], cell["shards"], cell["journal"],
                 cell["backend"])] = cell
        if not cell["valid"]:
            if cell["mode"] == "stream" or not cell["journal"]:
                failures.append(
                    f"{name}: unexpected rejection ({cell.get('reason')})"
                )
            elif cell["error"] != "SpecError":
                failures.append(
                    f"{name}: rejected with {cell['error']}, expected the "
                    "typed SpecError"
                )
            continue
        if cell["mode"] == "plain" and cell["journal"]:
            failures.append(
                f"{name}: journal x plain must be rejected by validation, "
                "but the cell ran"
            )
        for gate in ("plan_identical", "counters_identical",
                     "qualities_identical"):
            if not cell[gate]:
                failures.append(f"{name}: composed vs legacy {gate} is False")
        if cell["metrics_identical"] is False:
            failures.append(f"{name}: composed vs legacy metrics diverged")
    # Zero-overhead journaling: journal-on == journal-off per group —
    # plan, op counters, and stream metrics (the full PR-4 invariant,
    # not just the plan hash).
    for (mode, shards, journaled, backend), cell in by_cell.items():
        if not journaled or not cell["valid"]:
            continue
        off = by_cell.get((mode, shards, False, backend))
        if not off or not off["valid"]:
            continue
        for field in ("signature", "counters_digest", "metrics_digest"):
            if cell[field] != off[field]:
                failures.append(
                    f"{mode}/shards={shards}/{backend}: journaled {field} "
                    "diverged from the unjournaled run"
                )
    # Backend identity: every backend's plan matches the python cell.
    for (mode, shards, journaled, backend), cell in by_cell.items():
        if backend == "python" or not cell["valid"]:
            continue
        ref = by_cell.get((mode, shards, journaled, "python"))
        if ref and ref["valid"] and cell["signature"] != ref["signature"]:
            failures.append(
                f"{mode}/shards={shards}/journal={journaled}: "
                f"{backend} plan diverged from the python plan"
            )
    return failures


def _write_report_block(payload: dict, results_dir: Path) -> None:
    """Persist the human-readable matrix block for REPORT.md."""
    from repro.bench import Reporter

    reporter = Reporter(
        "matrix1",
        "Runtime matrix: composed (spec-driven) vs legacy-class serving",
        results_dir=results_dir,
    )
    reporter.note(
        "every composable cell byte-identical to its legacy counterpart "
        "(plan, metrics, op counters); journal x plain rejected by typed "
        "SpecError; wall-clock recorded, never gated"
    )
    reporter.header(
        "mode", "shards", "journal", "backend", "status", "plan", "signature"
    )
    for cell in payload["cells"]:
        if not cell["valid"]:
            reporter.row(
                cell["mode"], cell["shards"],
                "on" if cell["journal"] else "off", cell["backend"],
                f"rejected:{cell['error']}", "-", "-",
            )
            continue
        identical = (
            cell["plan_identical"]
            and cell["counters_identical"]
            and cell["metrics_identical"] in (None, True)
        )
        reporter.row(
            cell["mode"], cell["shards"],
            "on" if cell["journal"] else "off", cell["backend"],
            "identical" if identical else "DIVERGED",
            cell["plan_length"], cell["signature"],
        )
    reporter.close()


def run_and_write(
    *, smoke: bool = False, results_dir: str | Path | None = None
) -> int:
    """Run the matrix, persist JSON, refresh BENCH_matrix.json.

    The single entry point behind ``python -m repro matrix`` and
    ``python -m repro.bench.matrixsuite``; returns a process exit code
    (non-zero when an equivalence gate fails).  Layout mirrors the
    other suites: the series lands in ``benchmarks/results/``, the
    merged ``BENCH_matrix.json`` next to them in ``benchmarks/``.
    """
    if results_dir is None:
        results_dir = _DEFAULT_RESULTS
        bench_dir = results_dir.parent
    else:
        results_dir = Path(results_dir)
        bench_dir = results_dir
    results_dir.mkdir(parents=True, exist_ok=True)

    payload = run_suite(smoke=smoke)
    out = results_dir / "matrix_suite.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    _write_report_block(payload, results_dir)

    from repro.bench.collect import collect_matrix

    merged = collect_matrix(results_dir)
    if merged is not None:
        bench_out = bench_dir / "BENCH_matrix.json"
        bench_out.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"wrote {bench_out}")

    valid = [c for c in payload["cells"] if c["valid"]]
    rejected = [c for c in payload["cells"] if not c["valid"]]
    identical = sum(
        1 for c in valid
        if c["plan_identical"] and c["counters_identical"]
        and c["metrics_identical"] in (None, True)
    )
    print(
        f"matrix: {identical}/{len(valid)} composable cells byte-identical "
        f"to the legacy path, {len(rejected)} uncomposable cells rejected "
        "with typed SpecError"
    )

    failures = check_payload(payload)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Standalone CLI wrapper around :func:`run_and_write`."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro.bench.matrixsuite")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced grid (CI smoke mode)")
    parser.add_argument("--results-dir", default=None,
                        help="override benchmarks/results output directory")
    args = parser.parse_args(argv)
    return run_and_write(smoke=args.smoke, results_dir=args.results_dir)


if __name__ == "__main__":
    sys.exit(main())
