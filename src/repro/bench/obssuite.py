"""Observability suite: telemetry must watch, never touch.

``python -m repro bench-obs`` (or ``python -m repro.bench.obssuite``)
sweeps the grid

    {plain, stream} x shards {1, 2} x journal {off, on}

and, for every *composable* cell, runs the same seed-pinned workload
three times: once bare (``telemetry=False``) and twice telemetered
(separate trace files and journal directories).  Three gates, all
equality/op-count based per the repo's determinism policy:

* **telemetry-off identity** — the telemetered run's
  ``plan_signature()``, ``OpCounters``, and ``StreamMetrics`` equal
  the bare run's byte-for-byte: spans snapshot/diff counters, they
  never increment them (zero op-count overhead).
* **trace determinism** — the two telemetered runs' traces are
  byte-identical after :func:`~repro.obs.trace.mask_timing` (all
  wall-clock lives under each record's ``timing`` key, and the
  ``open`` record normalizes filesystem paths), and the on-disk JSONL
  round-trips back to the in-memory records exactly.
* **trace completeness** — every record type the cell's composition
  implies is present (``solve`` everywhere, ``event``/``epoch``/
  ``phases`` in stream mode, ``snapshot`` when journaled).
* **causal analytics** — every record carries a ``causal`` span id
  (:func:`repro.obs.causal.causal_id` is stamped at emit time, not
  inferred later), and the span graph's critical path — total virtual
  cost and the step list — is bit-identical across the two
  telemetered runs.

Cells the spec layer rejects (journal x plain) are recorded as typed
rejections and the sweep asserts the rejection actually fires.
Wall-clock is recorded for humans, never gated.  The merged artifact
is ``benchmarks/BENCH_obs.json`` via
:func:`repro.bench.collect.collect_obs`.
"""

from __future__ import annotations

import hashlib
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.bench.report import signature_hash as _signature_hash
from repro.errors import SpecError
from repro.obs.causal import SpanGraph
from repro.obs.trace import masked_trace_bytes, read_trace
from repro.runtime import RunSpec, WorkloadSpec, build_runtime

__all__ = [
    "OBS_MODES",
    "SHARD_COUNTS",
    "run_suite",
    "run_and_write",
    "check_payload",
    "main",
]

_DEFAULT_RESULTS = Path(__file__).resolve().parents[3] / "benchmarks" / "results"

OBS_MODES = ("plain", "stream")
SHARD_COUNTS = (1, 2)

#: Workloads mirror the matrix suite's, so the identity gates here and
#: the equivalence gates there certify the same runs.
_FULL_BASES = {
    "plain": RunSpec(
        mode="plain",
        workload=WorkloadSpec(tasks=12, slots=16, workers=240, seed=13),
    ),
    "stream": RunSpec(
        mode="stream",
        workload=WorkloadSpec(
            horizon=16, task_rate=0.3, task_slots=8, initial_workers=14,
            join_rate=0.8, mean_lifetime=12.0, seed=9,
        ),
        k=2, epoch_length=3.0, budget_fraction=0.6,
        max_active_tasks=4, max_queue_depth=8, snapshot_every=2,
    ),
}

_SMOKE_BASES = {
    "plain": _FULL_BASES["plain"].replace(
        workload=WorkloadSpec(tasks=6, slots=12, workers=150, seed=13)
    ),
    "stream": _FULL_BASES["stream"].replace(
        workload=WorkloadSpec(
            horizon=10, task_rate=0.3, task_slots=8, initial_workers=12,
            join_rate=0.8, mean_lifetime=12.0, seed=9,
        )
    ),
}


def _digest(obj) -> str:
    """Deterministic fingerprint of counters/metrics/trace state
    (repr of the dataclasses is stable under the determinism policy)."""
    data = obj if isinstance(obj, bytes) else repr(obj).encode()
    return hashlib.sha256(data).hexdigest()[:16]


def _run_one(spec: RunSpec):
    """One run; returns (outcome, wall seconds)."""
    start = time.perf_counter()
    outcome = build_runtime(spec).run()
    return outcome, time.perf_counter() - start


def _expected_types(mode: str, journaled: bool) -> list[str]:
    expected = ["open", "solve", "phases", "trace-summary"]
    if mode == "stream":
        expected += ["event", "epoch", "finalize", "run-complete"]
        if journaled:
            expected.append("snapshot")
    return sorted(expected)


def _run_cell(base: RunSpec, mode, shards, journaled, workdir: Path) -> dict:
    cell = {"mode": mode, "shards": shards, "journal": journaled}
    tag = f"{mode}-s{shards}-{'j' if journaled else 'p'}"
    try:
        spec = base.replace(
            mode=mode,
            shards=shards,
            journal=str(workdir / f"{tag}-off") if journaled else None,
        ).validate()
    except SpecError as exc:
        cell.update(valid=False, error=type(exc).__name__, reason=str(exc))
        return cell

    off, wall_off = _run_one(spec)

    telemetered = []
    for arm in ("on", "on2"):
        arm_spec = spec.replace(
            telemetry=True,
            trace_out=str(workdir / f"{tag}-{arm}.jsonl"),
            journal=str(workdir / f"{tag}-{arm}") if journaled else None,
        )
        telemetered.append(_run_one(arm_spec))
    (on, wall_on), (on2, _) = telemetered

    masked = [
        masked_trace_bytes(run.telemetry.recorder.records) for run, _ in telemetered
    ]
    roundtrip_ok = all(
        read_trace(run.spec.trace_out) == run.telemetry.recorder.records
        for run, _ in telemetered
    )
    present = sorted(on.telemetry.recorder.counts())
    missing = sorted(set(_expected_types(mode, journaled)) - set(present))
    critical = [
        SpanGraph(run.telemetry.recorder.records).critical_path()
        for run, _ in telemetered
    ]

    cell.update(
        valid=True,
        # Gate 1: telemetry-off identity (the zero-overhead contract).
        plan_identical=off.plan_signature == on.plan_signature,
        counters_identical=repr(off.counters) == repr(on.counters),
        metrics_identical=(
            None if mode == "plain" else off.metrics == on.metrics
        ),
        # Gate 2: trace determinism + JSONL round-trip.
        masked_trace_identical=masked[0] == masked[1],
        record_counts_identical=(
            on.telemetry.recorder.counts() == on2.telemetry.recorder.counts()
        ),
        trace_roundtrip_ok=roundtrip_ok,
        # Gate 3: trace completeness.
        record_types=present,
        missing_record_types=missing,
        # Gate 4: causal analytics (PR-9) — every record is stamped
        # with its span id and the virtual-cost critical path is a
        # bit-for-bit reproducible function of the masked trace.
        causal_complete=all(
            "causal" in record for record in on.telemetry.recorder.records
        ),
        critical_path_identical=(
            (critical[0].total, critical[0].steps)
            == (critical[1].total, critical[1].steps)
        ),
        critical_path_total=critical[0].total,
        records=len(on.telemetry.recorder.records),
        masked_trace_digest=_digest(masked[0]),
        signature=_signature_hash(on.plan_signature),
        counters_digest=_digest(
            list(on.counters) if isinstance(on.counters, tuple) else on.counters
        ),
        metrics_digest=None if mode == "plain" else _digest(on.metrics),
        wall_off_s=wall_off,
        wall_on_s=wall_on,
    )
    return cell


def run_suite(*, smoke: bool = False) -> dict:
    """Run the grid and return the machine-readable payload."""
    bases = _SMOKE_BASES if smoke else _FULL_BASES
    cells: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="obssuite-") as tmp:
        workdir = Path(tmp)
        for mode in OBS_MODES:
            for shards in SHARD_COUNTS:
                for journaled in (False, True):
                    cells.append(
                        _run_cell(bases[mode], mode, shards, journaled, workdir)
                    )
    return {
        "suite": "obssuite",
        "mode": "smoke" if smoke else "full",
        "grid": {
            "modes": list(OBS_MODES),
            "shards": list(SHARD_COUNTS),
            "journal": [False, True],
        },
        "cells": cells,
    }


def check_payload(payload: dict) -> list[str]:
    """Deterministic gates; returns a list of failure strings."""
    failures = []
    for cell in payload["cells"]:
        name = (f"{cell['mode']}/shards={cell['shards']}/"
                f"journal={'on' if cell['journal'] else 'off'}")
        if not cell["valid"]:
            if cell["mode"] == "stream" or not cell["journal"]:
                failures.append(
                    f"{name}: unexpected rejection ({cell.get('reason')})"
                )
            elif cell["error"] != "SpecError":
                failures.append(
                    f"{name}: rejected with {cell['error']}, expected the "
                    "typed SpecError"
                )
            continue
        if cell["mode"] == "plain" and cell["journal"]:
            failures.append(
                f"{name}: journal x plain must be rejected by validation, "
                "but the cell ran"
            )
        for gate in ("plan_identical", "counters_identical",
                     "masked_trace_identical", "record_counts_identical",
                     "trace_roundtrip_ok", "causal_complete",
                     "critical_path_identical"):
            if not cell[gate]:
                failures.append(f"{name}: {gate} is False")
        if cell["metrics_identical"] is False:
            failures.append(f"{name}: telemetered metrics diverged from bare")
        if cell["missing_record_types"]:
            failures.append(
                f"{name}: trace is missing record type(s) "
                f"{cell['missing_record_types']}"
            )
    return failures


def _write_report_block(payload: dict, results_dir: Path) -> None:
    """Persist the human-readable observability block for REPORT.md."""
    from repro.bench import Reporter

    reporter = Reporter(
        "obs1",
        "Observability: telemetry-off identity and trace determinism",
        results_dir=results_dir,
    )
    reporter.note(
        "telemetered runs byte-identical to bare runs (plan, op counters, "
        "stream metrics); masked traces identical across repeat runs; "
        "wall-clock recorded, never gated"
    )
    reporter.header(
        "mode", "shards", "journal", "status", "records", "trace_digest",
        "signature",
    )
    for cell in payload["cells"]:
        if not cell["valid"]:
            reporter.row(
                cell["mode"], cell["shards"],
                "on" if cell["journal"] else "off",
                f"rejected:{cell['error']}", "-", "-", "-",
            )
            continue
        clean = (
            cell["plan_identical"] and cell["counters_identical"]
            and cell["metrics_identical"] in (None, True)
            and cell["masked_trace_identical"]
            and not cell["missing_record_types"]
        )
        reporter.row(
            cell["mode"], cell["shards"],
            "on" if cell["journal"] else "off",
            "identical" if clean else "DIVERGED",
            cell["records"], cell["masked_trace_digest"], cell["signature"],
        )
    reporter.close()


def run_and_write(
    *, smoke: bool = False, results_dir: str | Path | None = None
) -> int:
    """Run the suite, persist JSON, refresh BENCH_obs.json.

    The single entry point behind ``python -m repro bench-obs`` and
    ``python -m repro.bench.obssuite``; returns a process exit code
    (non-zero when a gate fails).  Layout mirrors the other suites.
    """
    if results_dir is None:
        results_dir = _DEFAULT_RESULTS
        bench_dir = results_dir.parent
    else:
        results_dir = Path(results_dir)
        bench_dir = results_dir
    results_dir.mkdir(parents=True, exist_ok=True)

    payload = run_suite(smoke=smoke)
    out = results_dir / "obs_suite.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    _write_report_block(payload, results_dir)

    from repro.bench.collect import collect_obs

    merged = collect_obs(results_dir)
    if merged is not None:
        bench_out = bench_dir / "BENCH_obs.json"
        bench_out.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"wrote {bench_out}")

    valid = [c for c in payload["cells"] if c["valid"]]
    rejected = [c for c in payload["cells"] if not c["valid"]]
    clean = sum(
        1 for c in valid
        if c["plan_identical"] and c["counters_identical"]
        and c["metrics_identical"] in (None, True)
        and c["masked_trace_identical"] and not c["missing_record_types"]
    )
    print(
        f"obs: {clean}/{len(valid)} composable cells identical-with-"
        f"telemetry and trace-deterministic, {len(rejected)} uncomposable "
        "cells rejected with typed SpecError"
    )

    failures = check_payload(payload)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Standalone CLI wrapper around :func:`run_and_write`."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro.bench.obssuite")
    parser.add_argument("--smoke", action="store_true",
                        help="smallest scenarios only (CI smoke mode)")
    parser.add_argument("--results-dir", default=None,
                        help="override benchmarks/results output directory")
    args = parser.parse_args(argv)
    return run_and_write(smoke=args.smoke, results_dir=args.results_dir)


if __name__ == "__main__":
    sys.exit(main())
