"""Continuous op-count regression ledger: ``python -m repro bench-regress``.

Every other suite gates *relative* invariants (composed == legacy,
telemetered == bare, recovered == uninterrupted); none pins the
**absolute** cost of a run, so a PR that inflates every arm equally
sails through.  This suite fingerprints a pinned set of smoke cells —
plan hash, full per-shard OpCounters, trace record tallies, and the
causal critical path in virtual-cost units
(:func:`repro.obs.regress.fingerprint_outcome`) — and compares them
against the committed ledger under ``benchmarks/baselines/``:

* default — report each cell's status against the ledger;
* ``--check`` — CI mode: exit non-zero on any drift *or missing
  baseline*, so cost changes land only together with a reviewed
  ledger update;
* ``--update`` — regenerate the baseline files from the current code
  (the PR diff then shows the cost change, cell by cell).

Before trusting any fingerprint, every cell runs **twice** and the two
fingerprints must match exactly — including the critical-path total,
bit for bit — otherwise the cell is non-deterministic and comparing it
to a ledger would be noise.  The suite also carries the trace-diff
acceptance gates: two runs of one spec must show **zero divergence**
under :func:`repro.obs.query.diff_traces`, and a pair differing only
by an injected op-budget fault must localize to an exact, stable first
divergent ``seq`` and its causal span.

All comparisons are op-count/equality based; wall-clock never appears
in a fingerprint.  The artifact is ``benchmarks/BENCH_regress.json``
via :func:`repro.bench.collect.collect_regress`.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.degrade.chaos import InjectionSpec
from repro.obs.query import diff_traces
from repro.obs.regress import (
    compare_fingerprints,
    default_baselines_dir,
    fingerprint_outcome,
    load_baseline,
    write_baseline,
)
from repro.runtime import RunSpec, WorkloadSpec, build_runtime
from repro.runtime.factory import StreamRuntime

__all__ = [
    "REGRESS_CELLS",
    "run_suite",
    "run_and_write",
    "check_payload",
    "main",
]

_DEFAULT_RESULTS = Path(__file__).resolve().parents[3] / "benchmarks" / "results"

#: Workloads mirror the obs suite's smoke cells, so the ledger pins
#: the same runs CI already exercises — small enough for every PR,
#: rich enough to cover plain/sharded/journaled/degraded/elastic arms.
_PLAIN = RunSpec(
    mode="plain",
    telemetry=True,
    workload=WorkloadSpec(tasks=6, slots=12, workers=150, seed=13),
)
_STREAM = RunSpec(
    mode="stream",
    telemetry=True,
    workload=WorkloadSpec(
        horizon=10, task_rate=0.3, task_slots=8, initial_workers=12,
        join_rate=0.8, mean_lifetime=12.0, seed=9,
    ),
    k=2, epoch_length=3.0, budget_fraction=0.6,
    max_active_tasks=4, max_queue_depth=8, snapshot_every=2,
)

#: The ledger cells: name -> spec template.  ``journal=True`` entries
#: get a fresh journal directory per run (filesystem paths are
#: environment, never fingerprint content).
REGRESS_CELLS: dict[str, dict] = {
    "plain-s1": {"spec": _PLAIN},
    "plain-s2": {"spec": _PLAIN.replace(shards=2)},
    "stream-s1": {"spec": _STREAM},
    "stream-s2": {"spec": _STREAM.replace(shards=2)},
    # The process-executor smoke cell: same workload as stream-s2 but
    # with phase solves in worker processes.  Its baseline must stay
    # byte-identical to stream-s2's (executor invariance is also
    # asserted directly by check_payload, independent of the ledger).
    "stream-s2-process": {
        "spec": _STREAM.replace(shards=2, executor="process", max_workers=2)
    },
    "stream-journal": {"spec": _STREAM, "journal": True},
    "stream-approx": {
        "spec": _STREAM.replace(approx="top_c", approx_top_c=2)
    },
    "stream-elastic": {
        "spec": _STREAM.replace(shards=2, elastic="fixed", migrate_at=1)
    },
}

#: The injected fault for the divergence-localization gate: an
#: op-budget slowdown (virtual-cost units, never wall-clock) on the
#: ``stream-s1`` workload.
_FAULT = InjectionSpec(kind="slowdown", at=3.0, op_budget=60.0)


def _run_cell_once(entry: dict, workdir: Path, arm: str):
    spec = entry["spec"]
    if entry.get("journal"):
        spec = spec.replace(journal=str(workdir / f"journal-{arm}"))
    return build_runtime(spec.validate()).run()


def _ledger_status(
    cell: str, fingerprint: dict, baselines_dir: Path, *, update: bool
) -> dict:
    """Compare (or rewrite) one cell's committed baseline."""
    if update:
        write_baseline(baselines_dir, cell, fingerprint)
        return {"baseline": "updated", "drifts": []}
    document = load_baseline(baselines_dir, cell)
    if document is None:
        return {"baseline": "missing", "drifts": []}
    drifts = compare_fingerprints(document["fingerprint"], fingerprint)
    return {
        "baseline": "drift" if drifts else "ok",
        "drifts": drifts,
        "baseline_commit": document.get("meta", {}).get("commit"),
        "baseline_version": document.get("meta", {}).get("version"),
    }


def _diff_gates() -> dict:
    """The trace-diff acceptance gates on the ``stream-s1`` workload.

    Same spec twice -> zero divergence; the same spec with an injected
    op-budget fault -> a localized first divergence whose ``seq`` and
    causal span are themselves deterministic (two injected runs
    diverge from the clean run at the same record).
    """
    spec = _STREAM.validate()
    clean_a = build_runtime(spec).run().telemetry.recorder.records
    clean_b = build_runtime(spec).run().telemetry.recorder.records
    same = diff_traces(clean_a, clean_b)

    faulted = [
        StreamRuntime(spec, chaos=(_FAULT,)).run().telemetry.recorder.records
        for _ in range(2)
    ]
    divergences = [diff_traces(clean_a, records) for records in faulted]
    localized = all(d is not None for d in divergences)
    return {
        "same_spec_identical": same is None,
        "fault_localized": localized,
        "fault_seq": divergences[0].seq if localized else None,
        "fault_span": divergences[0].span if localized else None,
        "fault_stable": (
            localized
            and divergences[0].seq == divergences[1].seq
            and divergences[0].span == divergences[1].span
        ),
    }


def run_suite(
    *, baselines_dir: str | Path | None = None, update: bool = False
) -> dict:
    """Fingerprint every cell, compare against the ledger, and run the
    divergence-localization gates; returns the payload."""
    baselines_dir = (
        default_baselines_dir() if baselines_dir is None else Path(baselines_dir)
    )
    # Committed artifacts must not leak machine-local absolute paths.
    try:
        shown_dir = str(baselines_dir.relative_to(_DEFAULT_RESULTS.parents[1]))
    except ValueError:
        shown_dir = str(baselines_dir)
    cells: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="regresssuite-") as tmp:
        workdir = Path(tmp)
        for cell, entry in REGRESS_CELLS.items():
            first = fingerprint_outcome(_run_cell_once(entry, workdir, f"{cell}-a"))
            second = fingerprint_outcome(_run_cell_once(entry, workdir, f"{cell}-b"))
            row = {
                "cell": cell,
                "reproducible": first == second,
                "fingerprint": first,
                "critical_path_total": first["critical_path"]["total"],
            }
            row.update(
                _ledger_status(cell, first, baselines_dir, update=update)
            )
            cells.append(row)
    return {
        "suite": "regresssuite",
        "mode": "update" if update else "check",
        "baselines_dir": shown_dir,
        "cells": cells,
        "diff_gates": _diff_gates(),
    }


def check_payload(payload: dict, *, check: bool = True) -> list[str]:
    """Deterministic gates; returns a list of failure strings.

    ``check=False`` (report/update modes) keeps the determinism and
    divergence gates but tolerates missing baselines and drift — those
    become failures only in CI ``--check`` mode.
    """
    failures: list[str] = []
    for cell in payload["cells"]:
        name = cell["cell"]
        if not cell["reproducible"]:
            failures.append(
                f"{name}: fingerprint not reproducible across two runs "
                "(non-deterministic cell — the ledger cannot pin it)"
            )
        if not check:
            continue
        if cell["baseline"] == "missing":
            failures.append(
                f"{name}: no committed baseline — run "
                "`python -m repro bench-regress --update` and commit "
                "benchmarks/baselines/"
            )
        elif cell["baseline"] == "drift":
            for drift in cell["drifts"]:
                failures.append(f"{name}: drift {drift}")
    by_cell = {cell["cell"]: cell for cell in payload["cells"]}
    serial = by_cell.get("stream-s2")
    process = by_cell.get("stream-s2-process")
    if (
        serial is not None
        and process is not None
        and serial["fingerprint"] != process["fingerprint"]
    ):
        failures.append(
            "stream-s2-process: fingerprint differs from stream-s2 — the "
            "executor changed the run's cost or plan (it may only change "
            "where the work runs)"
        )
    gates = payload["diff_gates"]
    if not gates["same_spec_identical"]:
        failures.append(
            "diff gate: two runs of the same spec produced divergent "
            "masked traces"
        )
    if not gates["fault_localized"]:
        failures.append(
            "diff gate: the injected op-budget fault produced no "
            "divergence (the fault is not observable in the trace)"
        )
    elif not gates["fault_stable"]:
        failures.append(
            "diff gate: the injected fault's first divergent seq/span "
            "is not deterministic across runs"
        )
    return failures


def _write_report_block(payload: dict, results_dir: Path) -> None:
    """Persist the human-readable ledger block for REPORT.md."""
    from repro.bench import Reporter

    reporter = Reporter(
        "regress1",
        "Regression ledger: op-count fingerprints vs committed baselines",
        results_dir=results_dir,
    )
    gates = payload["diff_gates"]
    reporter.note(
        "fingerprints = plan hash + per-shard OpCounters + trace tallies "
        "+ virtual-cost critical path; compared exactly against "
        "benchmarks/baselines/ (wall-clock never fingerprinted); "
        f"divergence gates: same-spec identical={gates['same_spec_identical']}, "
        f"fault localized at seq={gates['fault_seq']} "
        f"span={gates['fault_span']} stable={gates['fault_stable']}"
    )
    reporter.header(
        "cell", "status", "reproducible", "critical_path", "plan", "baseline@",
    )
    for cell in payload["cells"]:
        reporter.row(
            cell["cell"],
            cell["baseline"],
            "yes" if cell["reproducible"] else "NO",
            f"{cell['critical_path_total']:g}",
            cell["fingerprint"]["plan"],
            cell.get("baseline_commit") or "-",
        )
    reporter.close()


def run_and_write(
    *,
    check: bool = False,
    update: bool = False,
    results_dir: str | Path | None = None,
    baselines_dir: str | Path | None = None,
) -> int:
    """Run the ledger suite, persist JSON, refresh BENCH_regress.json.

    The single entry point behind ``python -m repro bench-regress``;
    returns a process exit code (non-zero when a gate fails — in
    ``--check`` mode that includes any drift or missing baseline).
    """
    if check and update:
        print("--check and --update are mutually exclusive", file=sys.stderr)
        return 2
    if results_dir is None:
        results_dir = _DEFAULT_RESULTS
        bench_dir = results_dir.parent
    else:
        results_dir = Path(results_dir)
        bench_dir = results_dir
    results_dir.mkdir(parents=True, exist_ok=True)

    payload = run_suite(baselines_dir=baselines_dir, update=update)
    out = results_dir / "regress_suite.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    _write_report_block(payload, results_dir)

    from repro.bench.collect import collect_regress

    merged = collect_regress(results_dir)
    if merged is not None:
        bench_out = bench_dir / "BENCH_regress.json"
        bench_out.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"wrote {bench_out}")

    statuses = {cell["cell"]: cell["baseline"] for cell in payload["cells"]}
    ok = sum(1 for status in statuses.values() if status in ("ok", "updated"))
    print(
        f"regress: {ok}/{len(statuses)} cells "
        f"{'updated' if update else 'clean against the ledger'} "
        f"({payload['baselines_dir']})"
    )
    for cell, status in statuses.items():
        if status not in ("ok", "updated"):
            print(f"  {cell}: {status}")

    failures = check_payload(payload, check=check)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Standalone CLI wrapper around :func:`run_and_write`."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro.bench.regresssuite")
    parser.add_argument("--check", action="store_true",
                        help="CI mode: exit 1 on drift or missing baselines")
    parser.add_argument("--update", action="store_true",
                        help="regenerate benchmarks/baselines/ from the "
                             "current code")
    parser.add_argument("--results-dir", default=None,
                        help="override benchmarks/results output directory")
    parser.add_argument("--baselines-dir", default=None,
                        help="override the benchmarks/baselines ledger "
                             "directory")
    args = parser.parse_args(argv)
    return run_and_write(
        check=args.check,
        update=args.update,
        results_dir=args.results_dir,
        baselines_dir=args.baselines_dir,
    )


if __name__ == "__main__":
    sys.exit(main())
