"""Graceful-degradation suite: identity, certificates, useful work.

``python -m repro bench-degrade`` (or ``python -m
repro.bench.degradesuite``) proves the three contracts of
:mod:`repro.degrade`:

* **approx-off identity** — with ``approx="off"`` the runtime is
  byte-identical (plan signature, op counters, stream metrics) to the
  pre-degradation legacy-class path, re-using the matrixsuite's legacy
  arms.  Degradation must be free when it is off.
* **certificate soundness** — for every approximate plan the measured
  quality ratio (approximate quality / exact quality on the same
  seed-pinned workload) is at least the certified ratio the solver
  reported.  A certificate that overstated quality would be worse
  than no certificate.
* **overload useful work** — under an injected overload (flash crowd
  + op-budget slowdown), the ``approx="auto"`` runtime completes
  strictly more tasks than the shed-only exact runtime, at bounded
  quality loss.  Degrading must beat dropping.

Typed-rejection cells ride along: the unsupported pairings
(approx x journal / shards / batch / use_index, ``auto`` without
telemetry) must raise :class:`~repro.errors.SpecError`.

Per the repo's determinism policy every gate is identity, certificate,
or op-count based; wall-clock is recorded for humans only.  The merged
artifact is ``benchmarks/BENCH_degrade.json`` via
:func:`repro.bench.collect.collect_degrade`.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.bench.report import signature_hash as _signature_hash
from repro.errors import SpecError
from repro.runtime import RunSpec, WorkloadSpec, build_runtime

__all__ = [
    "run_suite",
    "run_and_write",
    "check_payload",
    "main",
]

_DEFAULT_RESULTS = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
_EPS = 1e-9

#: Seed-pinned bases.  The stream base keeps competition low (ample
#: workers, shallow admission pressure) so the exact arm's per-task
#: quality is a fair yardstick for the approximate arm's certificate.
_PLAIN_BASE = RunSpec(
    mode="plain",
    workload=WorkloadSpec(tasks=8, slots=48, workers=240, seed=13),
    budget_fraction=0.3,
)
_STREAM_BASE = RunSpec(
    mode="stream",
    workload=WorkloadSpec(
        horizon=24, task_rate=0.4, task_slots=16, initial_workers=30,
        join_rate=1.0, mean_lifetime=20.0, seed=9,
    ),
    epoch_length=3.0, budget_fraction=0.6,
    max_active_tasks=6, max_queue_depth=12,
)
#: The overload scenario: a bursty trace hit by a flash crowd and an
#: op-budget slowdown (a saturated solver, in virtual op-cost units —
#: never wall-clock).  The shed-only arm's overload response is queue
#: overflow (drop on arrival); the auto arm runs the degradation
#: ladder over the *same* queue, so serving policy is the only
#: difference between the arms.
_OVERLOAD_BASE = RunSpec(
    mode="stream",
    workload=WorkloadSpec(
        horizon=30, task_rate=1.2, task_slots=12, initial_workers=50,
        join_rate=1.5, mean_lifetime=25.0, seed=7,
    ),
    epoch_length=2.0, budget_fraction=0.5,
    max_active_tasks=10, max_queue_depth=4,
)

_SMOKE_PLAIN = _PLAIN_BASE.replace(
    workload=WorkloadSpec(tasks=4, slots=32, workers=150, seed=13)
)
_SMOKE_STREAM = _STREAM_BASE.replace(
    workload=WorkloadSpec(
        horizon=16, task_rate=0.4, task_slots=12, initial_workers=24,
        join_rate=1.0, mean_lifetime=20.0, seed=9,
    )
)
# The overload arm is one seed-pinned pair of runs either way; smoke
# mode keeps it unchanged rather than re-tuning a smaller scenario's
# useful-work margin.
_SMOKE_OVERLOAD = _OVERLOAD_BASE

#: Spec pairings the degradation subsystem must refuse (typed).
_REJECTION_ROWS = (
    {"approx": "top_c"},                                   # knob missing
    {"approx": "top_c", "approx_top_c": 0},                # knob nonsense
    {"approx": "floor", "approx_floor": 1.5},              # knob nonsense
    {"approx_top_c": 3},                                   # knob w/o mode
    {"approx": "auto", "approx_top_c": 3, "approx_floor": 0.3},  # no telemetry
    {"approx": "top_c", "approx_top_c": 3, "use_index": True},
    {"approx": "top_c", "approx_top_c": 3, "shards": 2},
    {"approx": "top_c", "approx_top_c": 3, "journal": "/tmp/never-used"},
    {"approx": "top_c", "approx_top_c": 3, "mode": "batch"},
    {"degrade_queue_high": 2, "degrade_queue_low": 4},     # inverted hysteresis
)


def _digest(obj) -> str:
    """Stable fingerprint of counters/metrics repr state."""
    import hashlib

    return hashlib.sha256(repr(obj).encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# Arm 1: approx-off identity (vs the matrixsuite legacy classes)
# ----------------------------------------------------------------------
def _identity_cells(plain_base: RunSpec, stream_base: RunSpec) -> list[dict]:
    from repro.bench.matrixsuite import _legacy_plain, _legacy_stream

    cells = []
    for mode, base in (("plain", plain_base), ("stream", stream_base)):
        spec = base.validate()
        assert spec.approx == "off"
        start = time.perf_counter()
        outcome = build_runtime(spec).run()
        wall = time.perf_counter() - start
        legacy = (
            _legacy_plain(spec) if mode == "plain"
            else _legacy_stream(spec, Path("/nonexistent-unused"))
        )
        cells.append({
            "arm": "identity",
            "mode": mode,
            "plan_identical": outcome.plan_signature == legacy["plan"],
            "counters_identical": (
                _digest(outcome.counters) == _digest(legacy["counters"])
            ),
            "metrics_identical": (
                None if mode == "plain"
                else outcome.metrics == legacy["metrics"]
            ),
            "no_certificates": outcome.certificates is None,
            "signature": _signature_hash(outcome.plan_signature),
            "wall_s": wall,
        })
    return cells


# ----------------------------------------------------------------------
# Arm 2: certificate soundness (measured ratio >= certified ratio)
# ----------------------------------------------------------------------
def _certificate_cell(base: RunSpec, label: str, **approx_fields) -> dict:
    exact = build_runtime(base.validate()).run()
    spec = base.replace(**approx_fields).validate()
    start = time.perf_counter()
    outcome = build_runtime(spec).run()
    wall = time.perf_counter() - start
    violations = []
    compared = 0
    for task_id, certificate in sorted((outcome.certificates or {}).items()):
        if not 0.0 <= certificate <= 1.0:
            violations.append(
                f"task {task_id}: certificate {certificate:.6f} outside [0, 1]"
            )
            continue
        exact_q = exact.qualities.get(task_id)
        if exact_q is None or exact_q <= 0.0:
            continue  # the exact arm never planned this task
        compared += 1
        measured = outcome.qualities.get(task_id, 0.0) / exact_q
        if measured + _EPS < certificate:
            violations.append(
                f"task {task_id}: measured ratio {measured:.6f} < "
                f"certified {certificate:.6f}"
            )
    certificates = list((outcome.certificates or {}).values())
    return {
        "arm": "certificate",
        "label": label,
        "mode": base.mode,
        "approx": approx_fields.get("approx"),
        "tasks_certified": len(certificates),
        "tasks_compared": compared,
        "min_certificate": min(certificates, default=None),
        "mean_certificate": (
            sum(certificates) / len(certificates) if certificates else None
        ),
        "quality_exact": sum(exact.qualities.values()),
        "quality_approx": sum(outcome.qualities.values()),
        "violations": violations,
        "sound": not violations,
        "wall_s": wall,
    }


# ----------------------------------------------------------------------
# Arm 3: overload useful work (degrading beats shedding)
# ----------------------------------------------------------------------
def _overload_injections():
    from repro.degrade.chaos import InjectionSpec

    return (
        InjectionSpec(kind="flash_crowd", at=8.0, tasks=16),
        InjectionSpec(kind="slowdown", op_budget=60),
    )


def _run_overloaded(spec: RunSpec) -> dict:
    from repro.degrade.chaos import apply_injections
    from repro.runtime.factory import StreamRuntime

    injections = _overload_injections()
    trace = apply_injections(StreamRuntime(spec).scenario(), injections)
    runtime = StreamRuntime(spec, scenario=trace, chaos=injections)
    start = time.perf_counter()
    outcome = runtime.run()
    wall = time.perf_counter() - start
    metrics = outcome.metrics
    completed_q = [q for q in metrics.promised_quality.values() if q > 0.0]
    controller = getattr(runtime.server, "degradation", None)
    return {
        "completed": metrics.tasks_completed,
        "starved": metrics.tasks_starved,
        "rejected": metrics.tasks_rejected,
        "shed": metrics.tasks_shed,
        "useful": metrics.tasks_completed - metrics.tasks_starved,
        "mean_quality": (
            sum(completed_q) / len(completed_q) if completed_q else 0.0
        ),
        "min_certificate": (
            min(outcome.certificates.values(), default=None)
            if outcome.certificates else None
        ),
        "transitions": (
            0 if controller is None else len(controller.transitions)
        ),
        "wall_s": wall,
    }


def _overload_cells(base: RunSpec) -> list[dict]:
    exact = _run_overloaded(base.validate())
    degraded = _run_overloaded(
        base.replace(
            approx="auto", approx_top_c=3, approx_floor=0.1,
            telemetry=True, degrade_queue_high=3, degrade_queue_low=1,
        ).validate()
    )
    floor = 0.3
    return [
        {"arm": "overload", "variant": "exact-shed", **exact},
        {
            "arm": "overload", "variant": "auto-degrade", **degraded,
            # The headline gates, evaluated against the shed-only arm.
            "more_useful_work": degraded["useful"] > exact["useful"],
            "quality_floor": floor,
            "bounded_quality_loss": (
                degraded["mean_quality"] + _EPS
                >= floor * exact["mean_quality"]
            ),
        },
    ]


# ----------------------------------------------------------------------
# Arm 4: typed rejections
# ----------------------------------------------------------------------
def _rejection_cells() -> list[dict]:
    cells = []
    for fields in _REJECTION_ROWS:
        cell = {"arm": "rejection", "fields": dict(fields)}
        try:
            RunSpec(mode="stream").replace(**fields).validate()
        except SpecError as exc:
            cell.update(rejected=True, error=type(exc).__name__,
                        reason=str(exc))
        except Exception as exc:  # noqa: BLE001 — the wrong type is the bug
            cell.update(rejected=False, error=type(exc).__name__,
                        reason=str(exc))
        else:
            cell.update(rejected=False, error=None, reason=None)
        cells.append(cell)
    return cells


def run_suite(*, smoke: bool = False) -> dict:
    """Run every arm and return the machine-readable payload."""
    plain = _SMOKE_PLAIN if smoke else _PLAIN_BASE
    stream = _SMOKE_STREAM if smoke else _STREAM_BASE
    overload = _SMOKE_OVERLOAD if smoke else _OVERLOAD_BASE

    cells = _identity_cells(plain, stream)
    cells.append(_certificate_cell(
        plain, "plain/top_c=4", approx="top_c", approx_top_c=4
    ))
    cells.append(_certificate_cell(
        plain, "plain/floor=0.5", approx="floor", approx_floor=0.5
    ))
    if not smoke:
        cells.append(_certificate_cell(
            plain, "plain/top_c=2", approx="top_c", approx_top_c=2
        ))
    cells.append(_certificate_cell(
        stream, "stream/top_c=4", approx="top_c", approx_top_c=4
    ))
    cells.append(_certificate_cell(
        stream, "stream/floor=0.3", approx="floor", approx_floor=0.3
    ))
    cells.extend(_overload_cells(overload))
    cells.extend(_rejection_cells())
    return {
        "suite": "degradesuite",
        "mode": "smoke" if smoke else "full",
        "cells": cells,
    }


def check_payload(payload: dict) -> list[str]:
    """Deterministic gates; returns a list of failure strings.

    * **Identity** — both approx-off cells byte-identical to the
      legacy path, with no certificates attached.
    * **Certificate soundness** — no certificate cell reports a
      violation, and every approximate cell certified at least one
      task (an empty certificate map would read as vacuous success).
    * **Overload** — the auto-degrade arm did strictly more useful
      work than the shed-only arm, at bounded quality loss, and its
      ladder actually moved (>= 1 transition).
    * **Typed rejection** — every rejection row raised ``SpecError``.

    Wall-clock is deliberately unchecked (determinism policy).
    """
    failures = []
    for cell in payload["cells"]:
        arm = cell["arm"]
        if arm == "identity":
            name = f"identity/{cell['mode']}"
            for gate in ("plan_identical", "counters_identical"):
                if not cell[gate]:
                    failures.append(f"{name}: {gate} is False")
            if cell["metrics_identical"] is False:
                failures.append(f"{name}: stream metrics diverged")
            if not cell["no_certificates"]:
                failures.append(
                    f"{name}: approx=off attached certificates to the outcome"
                )
        elif arm == "certificate":
            name = f"certificate/{cell['label']}"
            if not cell["sound"]:
                for violation in cell["violations"]:
                    failures.append(f"{name}: {violation}")
            if cell["tasks_certified"] == 0:
                failures.append(f"{name}: no plans were certified (vacuous)")
        elif arm == "overload" and cell["variant"] == "auto-degrade":
            if not cell["more_useful_work"]:
                failures.append(
                    "overload: auto-degrade useful work "
                    f"({cell['useful']}) did not beat the shed-only arm"
                )
            if not cell["bounded_quality_loss"]:
                failures.append(
                    "overload: auto-degrade mean quality "
                    f"({cell['mean_quality']:.4f}) fell below the "
                    f"{cell['quality_floor']} quality floor"
                )
            if cell["transitions"] == 0:
                failures.append(
                    "overload: the degradation ladder never moved under "
                    "injected overload"
                )
        elif arm == "rejection":
            if not cell["rejected"] or cell["error"] != "SpecError":
                failures.append(
                    f"rejection {cell['fields']}: expected a typed "
                    f"SpecError, got {cell['error']} ({cell['reason']})"
                )
    return failures


def _write_report_block(payload: dict, results_dir: Path) -> None:
    """Persist the human-readable degradation block for REPORT.md."""
    from repro.bench import Reporter

    reporter = Reporter(
        "degrade1",
        "Graceful degradation: identity, certificates, overload useful work",
        results_dir=results_dir,
    )
    reporter.note(
        "approx=off byte-identical to the legacy path; measured quality "
        "ratio >= certified ratio for every approximate plan; under "
        "injected overload the auto-degrade ladder completes strictly "
        "more work than shedding at bounded quality loss"
    )
    reporter.header("arm", "cell", "status", "detail")
    for cell in payload["cells"]:
        arm = cell["arm"]
        if arm == "identity":
            ok = (cell["plan_identical"] and cell["counters_identical"]
                  and cell["metrics_identical"] in (None, True)
                  and cell["no_certificates"])
            reporter.row(arm, cell["mode"],
                         "identical" if ok else "DIVERGED",
                         cell["signature"])
        elif arm == "certificate":
            detail = (
                f"n={cell['tasks_certified']} "
                f"min={cell['min_certificate']:.3f}"
                if cell["tasks_certified"] else "n=0"
            )
            reporter.row(arm, cell["label"],
                         "sound" if cell["sound"] else "VIOLATED", detail)
        elif arm == "overload":
            reporter.row(
                arm, cell["variant"],
                f"useful={cell['useful']}",
                f"completed={cell['completed']} shed={cell['shed']} "
                f"meanq={cell['mean_quality']:.3f}",
            )
        else:
            reporter.row(
                arm, ",".join(sorted(cell["fields"])),
                "rejected" if cell["rejected"] else "ACCEPTED",
                cell["error"] or "-",
            )
    reporter.close()


def run_and_write(
    *, smoke: bool = False, results_dir: str | Path | None = None
) -> int:
    """Run the suite, persist JSON, refresh BENCH_degrade.json.

    The single entry point behind ``python -m repro bench-degrade``
    and ``python -m repro.bench.degradesuite``; returns a process exit
    code (non-zero when a gate fails).  Layout mirrors the other
    suites: the series lands in ``benchmarks/results/``, the merged
    ``BENCH_degrade.json`` next to them in ``benchmarks/``.
    """
    if results_dir is None:
        results_dir = _DEFAULT_RESULTS
        bench_dir = results_dir.parent
    else:
        results_dir = Path(results_dir)
        bench_dir = results_dir
    results_dir.mkdir(parents=True, exist_ok=True)

    payload = run_suite(smoke=smoke)
    out = results_dir / "degrade_suite.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    _write_report_block(payload, results_dir)

    from repro.bench.collect import collect_degrade

    merged = collect_degrade(results_dir)
    if merged is not None:
        bench_out = bench_dir / "BENCH_degrade.json"
        bench_out.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"wrote {bench_out}")

    certified = sum(
        c.get("tasks_certified", 0)
        for c in payload["cells"] if c["arm"] == "certificate"
    )
    rejected = sum(
        1 for c in payload["cells"]
        if c["arm"] == "rejection" and c["rejected"]
    )
    print(
        f"degrade: {certified} plans certified across "
        f"{sum(1 for c in payload['cells'] if c['arm'] == 'certificate')} "
        f"approximate cells, {rejected} unsupported pairings rejected "
        "with typed SpecError"
    )

    failures = check_payload(payload)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Standalone CLI wrapper around :func:`run_and_write`."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro.bench.degradesuite")
    parser.add_argument("--smoke", action="store_true",
                        help="smallest scenarios only (CI smoke mode)")
    parser.add_argument("--results-dir", default=None,
                        help="override benchmarks/results output directory")
    args = parser.parse_args(argv)
    return run_and_write(smoke=args.smoke, results_dir=args.results_dir)


if __name__ == "__main__":
    sys.exit(main())
