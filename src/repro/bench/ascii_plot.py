"""Dependency-free ASCII charts for benchmark series.

The offline environment ships no plotting stack, so the figure series
persisted by :class:`~repro.bench.report.Reporter` can be rendered as
terminal line charts: one character column per x value, ``o`` markers
per series, log-scale support for the paper's log-axis timing figures.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ConfigurationError

__all__ = ["line_chart", "bar_chart"]


def _scale(values: list[float], height: int, log: bool) -> list[int]:
    """Map values to integer rows 0..height-1 (0 = bottom)."""
    transformed = []
    for v in values:
        if log:
            if v <= 0:
                raise ConfigurationError("log-scale charts need positive values")
            transformed.append(math.log10(v))
        else:
            transformed.append(float(v))
    lo, hi = min(transformed), max(transformed)
    if hi == lo:
        return [height // 2] * len(values)
    return [
        min(height - 1, int(round((v - lo) / (hi - lo) * (height - 1))))
        for v in transformed
    ]


def line_chart(
    x_labels: Sequence,
    series: dict[str, Sequence[float]],
    *,
    height: int = 12,
    log: bool = False,
    title: str = "",
) -> str:
    """Render one or more series as a character chart.

    Each series gets a marker (``o``, ``x``, ``*``, ``+``); points in
    the same cell show the later marker.  Returns the multi-line chart
    string with a legend and x labels.
    """
    if not series:
        raise ConfigurationError("no series to plot")
    n = None
    for name, values in series.items():
        if n is None:
            n = len(values)
        elif len(values) != n:
            raise ConfigurationError(f"series {name!r} length mismatch")
    if n != len(x_labels):
        raise ConfigurationError("x_labels length must match the series")
    if n == 0:
        raise ConfigurationError("empty series")

    markers = "ox*+#@"
    all_values = [v for values in series.values() for v in values]
    # Shared y scaling across series so they are comparable.
    combined_rows: dict[str, list[int]] = {}
    lo_hi_values = list(all_values)
    for idx, (name, values) in enumerate(series.items()):
        merged = lo_hi_values + list(values)
        rows = _scale(merged, height, log)[len(lo_hi_values):]
        combined_rows[name] = rows

    width_per_point = max(3, max(len(str(x)) for x in x_labels) + 1)
    grid = [[" "] * (n * width_per_point) for _ in range(height)]
    for idx, (name, rows) in enumerate(combined_rows.items()):
        marker = markers[idx % len(markers)]
        for i, row in enumerate(rows):
            grid[height - 1 - row][i * width_per_point] = marker

    lines = []
    if title:
        lines.append(title)
    y_hi = max(all_values)
    y_lo = min(all_values)
    lines.append(f"y: {y_lo:.3g} .. {y_hi:.3g}" + (" (log scale)" if log else ""))
    lines.extend("|" + "".join(row) for row in grid)
    axis = "+" + "-" * (n * width_per_point)
    lines.append(axis)
    labels_line = " " + "".join(str(x).ljust(width_per_point) for x in x_labels)
    lines.append(labels_line)
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def bar_chart(
    labels: Sequence,
    values: Sequence[float],
    *,
    width: int = 40,
    title: str = "",
) -> str:
    """Horizontal bars, one row per label."""
    if len(labels) != len(values):
        raise ConfigurationError("labels and values must have equal length")
    if not labels:
        raise ConfigurationError("nothing to plot")
    peak = max(values)
    if peak <= 0:
        raise ConfigurationError("bar charts need a positive maximum")
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(value / peak * width))) if value > 0 else ""
        lines.append(f"{str(label).rjust(label_width)} | {bar} {value:.4g}")
    return "\n".join(lines)
