"""Parallel-executor suite: measured wall clock next to the modeled makespan.

``python -m repro bench-par`` (or ``python -m repro.bench.parsuite``)
runs the same seed-pinned scenarios under every
:data:`~repro.par.executor.EXECUTOR_KINDS` at shard counts
{1, 2, 4, 8} and persists them as
``benchmarks/results/par_suite.json``;
:func:`repro.bench.collect.collect_par` merges every ``par*.json``
series into ``benchmarks/BENCH_par.json``.

Two scenario arms:

* **scale32** (plain) — the shard suite's largest batch, solved
  through :class:`~repro.shard.server.ShardedTCSCServer` with its
  phase-1 per-shard solves dispatched by the executor;
* **hotspot_drift** (stream) — skewed arrivals drained through
  :class:`~repro.shard.streaming.ShardedStreamingServer`, per-shard
  cores built inside the workers from exact JSON snapshots.

**What is gated vs what is reported** (the repo's determinism policy,
DESIGN §7/§14): the suite hard-gates *only* byte-identity — plan
signature, stream metrics, and OpCounters must match across every
executor at every shard count, and the plan must not depend on the
shard count at all.  Measured wall clock and the measured-vs-modeled
speedup table are **reported, never gated**: wall clock depends on the
host (this container may have a single core; the modeled
:class:`~repro.parallel.simcluster.SimCluster` makespan is the
machine-independent claim, and the measured column is its validation
on hosts that do have the cores).  ``host.cpu_count`` is recorded so a
reader can interpret the wall-clock column.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from dataclasses import asdict
from pathlib import Path

from repro.bench.report import signature_hash as _signature_hash
from repro.par.executor import EXECUTOR_KINDS, Executor
from repro.runtime import RunSpec, WorkloadSpec, build_serving_solver
from repro.runtime.factory import StreamRuntime
from repro.workloads.scenario import ScenarioConfig, build_scenario

__all__ = [
    "EXECUTORS",
    "SHARD_COUNTS",
    "SMOKE_SHARD_COUNTS",
    "TARGET_SPEEDUP",
    "run_suite",
    "run_and_write",
    "check_payload",
    "main",
]

_DEFAULT_RESULTS = Path(__file__).resolve().parents[3] / "benchmarks" / "results"

#: Every executor kind, serial first (the identity reference).
EXECUTORS = EXECUTOR_KINDS

#: Shard counts swept in full mode (the acceptance grid) / smoke mode.
SHARD_COUNTS = (1, 2, 4, 8)
SMOKE_SHARD_COUNTS = (1, 2)

#: The measured wall-clock speedup the process executor aims for at
#: 4+ shards on a host with the cores to show it.  Reported, never
#: gated: a single-core runner cannot exhibit it and must still pass.
TARGET_SPEEDUP = 1.5

#: The plain arm: the shard suite's scale32 batch (full) / a small
#: batch (smoke).  Same shapes and seeds, so the numbers line up with
#: ``BENCH_shard.json``.
_PLAIN_FULL = {"name": "scale32", "tasks": 32, "m": 24, "workers": 600, "seed": 5}
_PLAIN_SMOKE = {"name": "scale8", "tasks": 8, "m": 16, "workers": 200, "seed": 13}

#: The stream arm: hotspot-drift arrivals (the elastic suite's skew
#: shape) — late arrivals pile onto one region, the worst case for a
#: static partition and therefore the most honest wall-clock test.
_STREAM_FULL = RunSpec(
    mode="stream",
    workload=WorkloadSpec(
        horizon=36, task_rate=1.2, task_slots=12, initial_workers=40,
        join_rate=1.5, mean_lifetime=24.0, hotspot_drift=1.0, seed=7,
    ),
    k=2, epoch_length=3.0, budget_fraction=0.6,
    max_active_tasks=6, max_queue_depth=16,
)
_STREAM_SMOKE = _STREAM_FULL.replace(
    workload=WorkloadSpec(
        horizon=12, task_rate=0.6, task_slots=8, initial_workers=16,
        join_rate=1.0, mean_lifetime=12.0, hotspot_drift=1.0, seed=7,
    ),
    max_active_tasks=4, max_queue_depth=8,
)


def _digest(obj) -> str:
    """Short deterministic digest of a JSON-able structure."""
    canonical = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _plain_identity(report) -> dict:
    """The byte-identity evidence of one plain serving round."""
    return {
        "plan": _signature_hash(report.plan_signature()),
        "counters": _digest(report.counters.to_dict()),
        "metrics": _digest({
            "per_task_cost": sorted(report.per_task_cost.items()),
            "qualities": sorted(report.qualities.items()),
            "total_cost": report.total_cost,
            "conflicts": report.conflicts,
            "reconciled": list(report.reconciled_task_ids),
            "revalidated": list(report.revalidated_task_ids),
            "messages": report.messages,
            "makespan": report.makespan,
        }),
    }


def _stream_identity(outcome) -> dict:
    """The byte-identity evidence of one sharded streaming run."""
    counters = outcome.counters
    if not isinstance(counters, tuple):
        counters = (counters,)
    metrics = outcome.metrics
    return {
        "plan": _signature_hash(outcome.plan_signature),
        "counters": _digest([c.to_dict() for c in counters]),
        "metrics": _digest({
            "per_shard": [asdict(m) for m in metrics.per_shard],
            "tasks_routed": list(metrics.tasks_routed),
            "dropped_events": metrics.dropped_events,
            "worker_routes": sorted(
                (wid, list(shards)) for wid, shards in metrics.worker_routes.items()
            ),
            "makespan": metrics.makespan,
            "serial_cost": metrics.serial_cost,
        }),
    }


def _executor_for(kind: str, pools: dict) -> Executor | None:
    """The injected executor for one arm: one persistent process pool
    shared across the whole sweep (pay the fork cost once), ``None``
    otherwise (serial resolves to the legacy path; thread pools are
    per-call anyway)."""
    if kind != "process":
        return None
    if "process" not in pools:
        pool = Executor("process", persistent=True)
        # Warm the pool outside any timed region: the first submission
        # forks the workers, and that cost belongs to pool creation,
        # not to the first cell's wall-clock figure.
        pool.map_units(len, ["warmup"])
        pools["process"] = pool
    return pools["process"]


def _run_plain_scenario(params: dict, shard_counts, pools: dict) -> dict:
    built = build_scenario(
        ScenarioConfig(
            num_tasks=params["tasks"],
            num_slots=params["m"],
            num_workers=params["workers"],
            seed=params["seed"],
        )
    )
    shard_rows: dict[str, dict] = {}
    for num_shards in shard_counts:
        executors: dict[str, dict] = {}
        modeled = None
        for kind in EXECUTORS:
            spec = RunSpec(
                mode="plain", shards=num_shards, executor=kind
            ).validate()
            server = build_serving_solver(
                spec, built.pool, built.bbox,
                force_sharded=True, executor=_executor_for(kind, pools),
            )
            start = time.perf_counter()
            report = server.assign(built.tasks)
            wall = time.perf_counter() - start
            executors[kind] = {"wall_s": wall, **_plain_identity(report)}
            if modeled is None:
                modeled = {
                    "makespan": report.makespan,
                    "serial_cost": report.serial_cost,
                    "speedup": report.speedup,
                }
        shard_rows[str(num_shards)] = _finish_row(executors, modeled)
    return {"kind": "plain", **params, "shards": shard_rows}


def _run_stream_scenario(base: RunSpec, shard_counts, pools: dict) -> dict:
    shard_rows: dict[str, dict] = {}
    for num_shards in shard_counts:
        executors: dict[str, dict] = {}
        modeled = None
        for kind in EXECUTORS:
            spec = base.replace(shards=num_shards, executor=kind).validate()
            # force_sharded keeps the serial reference on the same
            # coordinator/router composition (ShardedStreamMetrics)
            # the executor arms produce, even at one shard.
            runtime = StreamRuntime(
                spec, force_sharded=True, executor=_executor_for(kind, pools)
            )
            runtime.scenario()  # build the trace outside the timed region
            start = time.perf_counter()
            outcome = runtime.run()
            wall = time.perf_counter() - start
            executors[kind] = {"wall_s": wall, **_stream_identity(outcome)}
            if modeled is None:
                metrics = outcome.metrics
                modeled = {
                    "makespan": metrics.makespan,
                    "serial_cost": metrics.serial_cost,
                    "speedup": metrics.speedup,
                }
        shard_rows[str(num_shards)] = _finish_row(executors, modeled)
    workload = base.workload
    return {
        "kind": "stream",
        "name": "hotspot_drift",
        "horizon": workload.horizon,
        "task_rate": workload.task_rate,
        "hotspot_drift": workload.hotspot_drift,
        "seed": workload.seed,
        "shards": shard_rows,
    }


def _finish_row(executors: dict, modeled: dict) -> dict:
    """Stamp per-executor measured speedups and the identity verdict."""
    serial_wall = executors["serial"]["wall_s"]
    for row in executors.values():
        row["speedup_vs_serial"] = (
            serial_wall / row["wall_s"] if row["wall_s"] > 0 else 1.0
        )
    reference = {
        key: executors["serial"][key] for key in ("plan", "counters", "metrics")
    }
    identical = all(
        all(row[key] == reference[key] for key in reference)
        for row in executors.values()
    )
    return {"executors": executors, "modeled": modeled, "identical": identical}


def run_suite(*, smoke: bool = False) -> dict:
    """Run the suite and return the machine-readable payload."""
    shard_counts = SMOKE_SHARD_COUNTS if smoke else SHARD_COUNTS
    plain = _PLAIN_SMOKE if smoke else _PLAIN_FULL
    stream = _STREAM_SMOKE if smoke else _STREAM_FULL
    pools: dict[str, Executor] = {}
    try:
        scenarios = [
            _run_plain_scenario(plain, shard_counts, pools),
            _run_stream_scenario(stream, shard_counts, pools),
        ]
    finally:
        for pool in pools.values():
            pool.close()
    return {
        "suite": "parsuite",
        "mode": "smoke" if smoke else "full",
        "executors": list(EXECUTORS),
        "shard_counts": list(shard_counts),
        "wall_clock_gated": False,
        "target_speedup": TARGET_SPEEDUP,
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "platform": sys.platform,
        },
        "scenarios": scenarios,
    }


def check_payload(payload: dict) -> list[str]:
    """Deterministic gates; returns a list of failure strings.

    * **Cross-executor identity** — at every shard count, every
      executor must reproduce the serial arm's plan signature, metrics,
      and OpCounters digests exactly.
    * **Shard-count plan invariance (plain arm only)** — the plain
      plan digest must also be one value across the whole shard sweep
      (the shard suite's invariant, re-checked here because the
      executor arms bypass the in-process phase-1 loop).  Sharded
      *streaming* plans legitimately vary with the shard count
      (admission control and budget pools are per shard), so the
      stream arm is gated per shard count only.

    Wall clock and measured speedup are deliberately unchecked: they
    describe the host, not the algorithm (DESIGN §14).
    """
    failures: list[str] = []
    for scenario in payload["scenarios"]:
        name = scenario["name"]
        plan_digests = set()
        for count, row in scenario["shards"].items():
            reference = row["executors"]["serial"]
            if scenario["kind"] == "plain":
                plan_digests.add(reference["plan"])
            for kind, arm in row["executors"].items():
                for key in ("plan", "counters", "metrics"):
                    if arm[key] != reference[key]:
                        failures.append(
                            f"{name}: shards={count} executor={kind} "
                            f"{key} diverged from the serial arm "
                            f"({arm[key]} != {reference[key]})"
                        )
        if len(plan_digests) > 1:
            failures.append(
                f"{name}: plan depends on the shard count "
                f"({sorted(plan_digests)})"
            )
    return failures


def _write_report_block(payload: dict, results_dir: Path) -> None:
    """Persist the human-readable executor block for REPORT.md."""
    from repro.bench import Reporter

    host = payload["host"]
    reporter = Reporter(
        "par1",
        "Parallel-executor suite: serial/thread/process at shard counts "
        f"{'/'.join(str(c) for c in payload['shard_counts'])}",
        results_dir=results_dir,
    )
    reporter.note(
        "plans/metrics/OpCounters byte-identical across executors at every "
        "shard count (the gate); wall-clock columns are NON-GATING host "
        f"measurements (cpu_count={host['cpu_count']}) — the modeled "
        "speedup is the machine-independent SimCluster makespan claim"
    )
    reporter.header(
        "scenario", "shards", "executor", "wall_s",
        "measured_x", "modeled_x", "identical",
    )
    for scenario in payload["scenarios"]:
        for count, row in scenario["shards"].items():
            for kind in payload["executors"]:
                arm = row["executors"][kind]
                reporter.row(
                    scenario["name"], count, kind,
                    round(arm["wall_s"], 4),
                    round(arm["speedup_vs_serial"], 2),
                    round(row["modeled"]["speedup"], 2),
                    "yes" if row["identical"] else "NO",
                )
    reporter.close()


def run_and_write(
    *, smoke: bool = False, results_dir: str | Path | None = None
) -> int:
    """Run the suite, persist JSON, refresh BENCH_par.json.

    The single entry point behind ``python -m repro bench-par`` and
    ``python -m repro.bench.parsuite``; returns a process exit code
    (non-zero only when an *identity* gate fails — never because of a
    wall-clock number).
    """
    if results_dir is None:
        results_dir = _DEFAULT_RESULTS
        bench_dir = results_dir.parent
    else:
        results_dir = Path(results_dir)
        bench_dir = results_dir
    results_dir.mkdir(parents=True, exist_ok=True)

    payload = run_suite(smoke=smoke)
    out = results_dir / "par_suite.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    _write_report_block(payload, results_dir)

    from repro.bench.collect import collect_par

    merged = collect_par(results_dir)
    if merged is not None:
        bench_out = bench_dir / "BENCH_par.json"
        bench_out.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"wrote {bench_out}")

    cpu_count = payload["host"]["cpu_count"]
    top = str(payload["shard_counts"][-1])
    for scenario in payload["scenarios"]:
        row = scenario["shards"][top]
        process = row["executors"]["process"]
        print(
            f"{scenario['name']}: shards={top} process executor "
            f"{process['speedup_vs_serial']:.2f}x measured / "
            f"{row['modeled']['speedup']:.2f}x modeled "
            f"(wall {process['wall_s']:.3f}s vs serial "
            f"{row['executors']['serial']['wall_s']:.3f}s), "
            f"identical={row['identical']}"
        )
    if cpu_count < 2:
        print(
            f"note: host has {cpu_count} CPU — measured speedup cannot "
            f"reach the {TARGET_SPEEDUP}x target here; the wall-clock "
            "columns are reported, never gated"
        )

    failures = check_payload(payload)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Standalone CLI wrapper around :func:`run_and_write`."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro.bench.parsuite")
    parser.add_argument("--smoke", action="store_true",
                        help="smallest scenarios only (CI smoke mode)")
    parser.add_argument("--results-dir", default=None,
                        help="override benchmarks/results output directory")
    args = parser.parse_args(argv)
    return run_and_write(smoke=args.smoke, results_dir=args.results_dir)


if __name__ == "__main__":
    sys.exit(main())
