"""Deterministic shard-scaling suite: the horizontal-scaling trajectory.

``python -m repro bench-shard`` (or ``python -m repro.bench.shardsuite``)
runs seed-pinned serving rounds through
:class:`~repro.shard.server.ShardedTCSCServer` at shard counts
{1, 2, 4, 8} and persists them as
``benchmarks/results/shard_suite.json``;
:func:`repro.bench.collect.collect_shard` merges every ``shard*.json``
series into ``benchmarks/BENCH_shard.json``.

Two scenario families:

* the **perfsuite scenarios** (single-task, the paper's task shapes) —
  these carry the subsystem's hardest invariant: for every scenario
  and every shard count the sharded plan must be byte-identical to
  the unsharded solve;
* **scaleN scenarios** (multi-task batches) — these carry the scaling
  story: shard-count speedup reported as deterministic op-count
  makespan reduction through
  :meth:`~repro.parallel.simcluster.SimCluster.run_partitions`, with
  cross-shard conflicts, offer revalidations, and serial re-solves
  broken out.

Per the repo's determinism policy, CI gates on plan identity and
op-count invariants only; wall-clock is recorded for humans.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.bench.perfsuite import SCENARIOS as PERF_SCENARIOS
from repro.bench.report import signature_hash as _signature_hash
from repro.runtime import RunSpec, build_serving_solver
from repro.workloads.scenario import ScenarioConfig, build_scenario

__all__ = [
    "ShardScenario",
    "SHARD_COUNTS",
    "SCENARIOS",
    "SMOKE_SCENARIOS",
    "run_suite",
    "run_and_write",
    "check_payload",
    "main",
]

_DEFAULT_RESULTS = Path(__file__).resolve().parents[3] / "benchmarks" / "results"

#: Shard counts every scenario is swept over (the acceptance grid).
SHARD_COUNTS = (1, 2, 4, 8)


@dataclass(frozen=True, slots=True)
class ShardScenario:
    """One seed-pinned serving-round instance."""

    name: str
    tasks: int
    m: int
    workers: int
    seed: int


#: The perfsuite scenarios, re-expressed as single-task serving rounds
#: (same names, shapes, and seeds — the plan-identity acceptance set),
#: plus multi-task batches for the scaling story.
SCENARIOS = tuple(
    ShardScenario(p.name, 1, p.m, p.workers, p.seed) for p in PERF_SCENARIOS
) + (
    ShardScenario("scale16", tasks=16, m=24, workers=300, seed=13),
    ShardScenario("scale32", tasks=32, m=24, workers=600, seed=5),
)

#: CI smoke mode: the smallest perfsuite scenario plus a small batch.
SMOKE_SCENARIOS = (
    SCENARIOS[0],
    ShardScenario("scale8", tasks=8, m=16, workers=200, seed=13),
)


def _run_scenario(scenario: ShardScenario, *, backend: str = "python") -> dict:
    built = build_scenario(
        ScenarioConfig(
            num_tasks=scenario.tasks,
            num_slots=scenario.m,
            num_workers=scenario.workers,
            seed=scenario.seed,
        )
    )
    # Both arms resolve through the runtime's shared spec -> solver
    # path: shards=1 is the sequential reference, shard rows force the
    # coordinator (the degenerate one-shard row measures exactly it).
    spec = RunSpec(mode="plain", backend=backend)
    start = time.perf_counter()
    reference = build_serving_solver(spec, built.pool, built.bbox).assign(
        built.tasks
    )
    reference_wall = time.perf_counter() - start
    reference_sig = reference.plan_signature()

    shard_rows: dict[str, dict] = {}
    for num_shards in SHARD_COUNTS:
        server = build_serving_solver(
            spec.replace(shards=num_shards), built.pool, built.bbox,
            force_sharded=True,
        )
        start = time.perf_counter()
        report = server.assign(built.tasks)
        wall = time.perf_counter() - start
        stats = report.shard_map.stats()
        shard_rows[str(num_shards)] = {
            "plan_identical": report.plan_signature() == reference_sig,
            "plan_length": len(report.assignment),
            "conflicts": report.conflicts,
            "revalidated": len(report.revalidated_task_ids),
            "reconciled": len(report.reconciled_task_ids),
            "messages": report.messages,
            "makespan": report.makespan,
            "serial_cost": report.serial_cost,
            "speedup": report.speedup,
            "utilization": report.utilization,
            "wall_s": wall,
            "tasks_per_shard": stats["tasks_per_shard"],
            "halo_workers_per_shard": stats["halo_workers_per_shard"],
            "replicated_workers": stats["replicated_workers"],
        }

    return {
        "name": scenario.name,
        "tasks": scenario.tasks,
        "m": scenario.m,
        "workers": scenario.workers,
        "seed": scenario.seed,
        "reference": {
            "plan_length": len(reference.assignment),
            "serial_cost": reference.serial_cost,
            "signature": _signature_hash(reference_sig),
            "wall_s": reference_wall,
        },
        "shards": shard_rows,
    }


def run_suite(*, smoke: bool = False, backend: str = "python") -> dict:
    """Run the suite and return the machine-readable payload."""
    scenarios = SMOKE_SCENARIOS if smoke else SCENARIOS
    return {
        "suite": "shardsuite",
        "mode": "smoke" if smoke else "full",
        "backend": backend,
        "shard_counts": list(SHARD_COUNTS),
        "scenarios": [_run_scenario(s, backend=backend) for s in scenarios],
    }


def check_payload(payload: dict) -> list[str]:
    """Deterministic gates; returns a list of failure strings.

    * **Plan identity** — every scenario, every shard count must
      reproduce the unsharded plan byte-for-byte.
    * **Serial-cost invariance** — the sum of per-task op costs is the
      sequential reference cost; it must not depend on the shard
      count (every accepted or re-solved task runs at its reference
      cost).
    * **Degenerate sharding** — one shard must mean zero conflicts and
      zero re-solves.

    Wall-clock is deliberately unchecked (determinism policy).
    """
    failures = []
    for scenario in payload["scenarios"]:
        name = scenario["name"]
        reference_cost = scenario["reference"]["serial_cost"]
        for count, row in scenario["shards"].items():
            if not row["plan_identical"]:
                failures.append(
                    f"{name}: shards={count} diverged from the unsharded plan"
                )
            if abs(row["serial_cost"] - reference_cost) > 1e-6:
                failures.append(
                    f"{name}: shards={count} serial cost {row['serial_cost']:.3f} "
                    f"!= reference {reference_cost:.3f}"
                )
        single = scenario["shards"].get("1")
        if single and (single["conflicts"] or single["reconciled"]):
            failures.append(
                f"{name}: shards=1 reported conflicts/re-solves "
                f"({single['conflicts']}/{single['reconciled']})"
            )
    return failures


def _write_report_block(payload: dict, results_dir: Path) -> None:
    """Persist the human-readable shard-scaling block for REPORT.md."""
    from repro.bench import Reporter

    reporter = Reporter(
        "shard1",
        "Shard suite: halo-partitioned serving at shard counts 1/2/4/8",
        results_dir=results_dir,
    )
    reporter.note(
        "plan byte-identical to the unsharded solve at every shard count; "
        "makespan/speedup are deterministic op-count units (SimCluster)"
    )
    reporter.header(
        "scenario", "tasks", "shards", "makespan", "speedup",
        "conflicts", "revalidated", "reconciled",
    )
    for scenario in payload["scenarios"]:
        for count, row in scenario["shards"].items():
            reporter.row(
                scenario["name"], scenario["tasks"], count,
                round(row["makespan"], 1), round(row["speedup"], 3),
                row["conflicts"], row["revalidated"], row["reconciled"],
            )
    reporter.close()


def run_and_write(
    *,
    smoke: bool = False,
    results_dir: str | Path | None = None,
    backend: str = "python",
) -> int:
    """Run the suite, persist JSON, refresh BENCH_shard.json.

    The single entry point behind ``python -m repro bench-shard`` and
    ``python -m repro.bench.shardsuite``; returns a process exit code
    (non-zero when a determinism gate fails).  Layout mirrors the perf
    suite: series land in ``benchmarks/results/``, the merged
    ``BENCH_shard.json`` next to them in ``benchmarks/`` (a custom
    ``results_dir`` keeps everything inside that directory).
    """
    if results_dir is None:
        results_dir = _DEFAULT_RESULTS
        bench_dir = results_dir.parent
    else:
        results_dir = Path(results_dir)
        bench_dir = results_dir
    results_dir.mkdir(parents=True, exist_ok=True)

    payload = run_suite(smoke=smoke, backend=backend)
    out = results_dir / "shard_suite.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    _write_report_block(payload, results_dir)

    from repro.bench.collect import collect_shard

    merged = collect_shard(results_dir)
    if merged is not None:
        bench_out = bench_dir / "BENCH_shard.json"
        bench_out.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"wrote {bench_out}")

    for scenario in payload["scenarios"]:
        best = scenario["shards"][str(SHARD_COUNTS[-1])]
        print(
            f"{scenario['name']}: tasks={scenario['tasks']} m={scenario['m']} "
            f"shards={SHARD_COUNTS[-1]} speedup {best['speedup']:.2f}x op-makespan "
            f"(conflicts={best['conflicts']} reconciled={best['reconciled']}), "
            f"plans identical={best['plan_identical']}"
        )

    failures = check_payload(payload)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Standalone CLI wrapper around :func:`run_and_write`."""
    import argparse

    from repro.core.evaluator import EVALUATOR_BACKENDS

    parser = argparse.ArgumentParser(prog="repro.bench.shardsuite")
    parser.add_argument("--smoke", action="store_true",
                        help="smallest scenarios only (CI smoke mode)")
    parser.add_argument("--results-dir", default=None,
                        help="override benchmarks/results output directory")
    parser.add_argument("--backend", choices=list(EVALUATOR_BACKENDS),
                        default="python",
                        help="quality-kernel backend for every solve")
    args = parser.parse_args(argv)
    return run_and_write(
        smoke=args.smoke, results_dir=args.results_dir, backend=args.backend
    )


if __name__ == "__main__":
    sys.exit(main())
