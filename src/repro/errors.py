"""Exception hierarchy for the TCSC library.

Every error raised by :mod:`repro` derives from :class:`TCSCError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from infeasible problem
instances.
"""

from __future__ import annotations


class TCSCError(Exception):
    """Base class for all errors raised by the TCSC library."""


class ConfigurationError(TCSCError, ValueError):
    """A parameter is out of its documented range (e.g. ``k < 1``)."""


class SpecError(ConfigurationError):
    """A :class:`~repro.runtime.RunSpec` is internally inconsistent.

    Raised for unknown field names or values and for capability
    combinations the runtime cannot compose yet (e.g. journaling a
    non-streaming run, sharding a batch run).  Distinct from plain
    :class:`ConfigurationError` so spec-driven callers (the ``--spec``
    CLI path, the matrix runner) can show the offending *spec* rather
    than a mid-construction server parameter.
    """


class InfeasibleAssignmentError(TCSCError):
    """No feasible assignment exists (e.g. no worker covers any slot)."""


class BudgetExhaustedError(TCSCError):
    """An operation requires budget that has already been spent."""


class WorkerUnavailableError(TCSCError):
    """A requested worker is not available at the requested time slot."""


class SchedulingError(TCSCError):
    """The parallel scheduler reached an inconsistent state."""


class JournalError(TCSCError):
    """Base class for durability-layer (``repro.journal``) failures."""


class JournalCorruptionError(JournalError):
    """A journal file is damaged beyond its tolerated truncated tail.

    Raised for a checksum/JSON failure *before* the final record of a
    write-ahead log (a torn tail is tolerated and dropped), for
    non-monotone record sequence numbers (gaps are legal — compaction
    creates them), for a missing log or ``open`` header, and for
    unreadable sharded-journal metadata.  Torn *snapshots* do not
    raise: recovery silently falls back to the next older one and
    replays a longer suffix.
    """


class JournalReplayError(JournalError):
    """Crash recovery diverged from the journaled history.

    Replay is exact by construction (the determinism policy), so a
    replayed run that regenerates a record different from the one in
    the log means the journal, the code, or the configuration changed
    between the crash and the recovery.
    """
