"""Exception hierarchy for the TCSC library.

Every error raised by :mod:`repro` derives from :class:`TCSCError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from infeasible problem
instances.
"""

from __future__ import annotations


class TCSCError(Exception):
    """Base class for all errors raised by the TCSC library."""


class ConfigurationError(TCSCError, ValueError):
    """A parameter is out of its documented range (e.g. ``k < 1``)."""


class InfeasibleAssignmentError(TCSCError):
    """No feasible assignment exists (e.g. no worker covers any slot)."""


class BudgetExhaustedError(TCSCError):
    """An operation requires budget that has already been spent."""


class WorkerUnavailableError(TCSCError):
    """A requested worker is not available at the requested time slot."""


class SchedulingError(TCSCError):
    """The parallel scheduler reached an inconsistent state."""
