"""Streaming throughput benchmark: incremental vs rebuild-every-epoch.

Not a paper figure — the paper has no online mode.  This drives the
same churnful event trace through both index-maintenance policies of
:class:`~repro.stream.online_server.StreamingTCSCServer` and records
events/sec plus the index work counters.  Beyond the human-readable
``stream1.txt`` block, the series lands in ``stream1.json`` so
``python -m repro.bench.collect`` can fold it into the machine-readable
``BENCH_stream.json`` perf trajectory.
"""

from __future__ import annotations

import json
import time

from repro.bench import Reporter
from repro.runtime import RunSpec, WorkloadSpec, build_runtime


def test_stream1_incremental_vs_rebuild(run_once):
    reporter = Reporter(
        "stream1", "Streaming TCSC: incremental vs rebuild-every-epoch indexes"
    )
    reporter.header(
        "mode", "time_s", "events_per_sec", "index_full_builds", "tree_node_updates"
    )

    def work():
        base = RunSpec(
            mode="stream",
            workload=WorkloadSpec(
                horizon=90,
                task_rate=0.2,
                task_slots=24,
                initial_workers=35,
                join_rate=1.0,
                mean_lifetime=20.0,
                early_leave_prob=0.4,
                seed=11,
            ),
            epoch_length=4.0,
        )
        scenario = build_runtime(base).scenario()
        rows = []
        plans = []
        for mode in ("incremental", "rebuild"):
            runtime = build_runtime(base.replace(index_mode=mode))
            start = time.perf_counter()
            outcome = runtime.run()
            elapsed = time.perf_counter() - start
            metrics = outcome.metrics
            rows.append(
                (
                    mode,
                    elapsed,
                    metrics.total_events / elapsed,
                    metrics.counters.index_full_builds,
                    metrics.counters.tree_node_updates,
                )
            )
            plans.append(outcome.plan_signature)
        assert plans[0] == plans[1], "policies must produce identical plans"
        assert len(plans[0]) > 0
        return scenario, rows

    scenario, rows = run_once(work)
    for row in rows:
        reporter.row(*row)
    by_mode = {row[0]: row for row in rows}
    inc, reb = by_mode["incremental"], by_mode["rebuild"]
    # The structural win must hold regardless of timer noise.
    assert inc[3] < reb[3], "incremental must build fewer indexes"
    assert inc[4] < reb[4], "incremental must touch fewer tree nodes"
    speedup = reb[1] / inc[1] if inc[1] > 0 else float("inf")
    reporter.note(
        f"identical plans; wall-clock speedup {speedup:.2f}x, "
        f"index builds {inc[3]} vs {reb[3]}"
    )

    payload = {
        "trace": {
            "events": len(scenario.events),
            "tasks": scenario.task_count,
            "workers": scenario.worker_count,
            "horizon": scenario.config.horizon,
        },
        "incremental": {
            "time_s": inc[1],
            "events_per_sec": inc[2],
            "index_full_builds": inc[3],
            "tree_node_updates": inc[4],
        },
        "rebuild": {
            "time_s": reb[1],
            "events_per_sec": reb[2],
            "index_full_builds": reb[3],
            "tree_node_updates": reb[4],
        },
        "incremental_vs_rebuild_speedup": speedup,
    }
    reporter.results_dir.mkdir(parents=True, exist_ok=True)
    (reporter.results_dir / "stream1.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    reporter.close()
