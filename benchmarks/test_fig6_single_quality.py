"""Figure 6 — quality of single-task assignment.

(a) average quality vs task-location distribution, comparing RandMin,
    RandMax, Opt, and Approx;
(b) quality vs budget, comparing Opt, Approx, and RandAvg.

OPT is exhaustive, so the instances are small (m = 12; the paper also
uses reduced instances wherever OPT appears).  The claims that must
hold: Approx tracks Opt closely, both dominate the random band, and
the Approx-vs-Rand gap narrows as the budget grows.
"""

from __future__ import annotations

from repro.bench import Reporter
from repro.core.baselines import OptimalSolver, RandomAssignmentSolver
from repro.core.greedy import IndexedSingleTaskGreedy
from repro.engine.costs import SingleTaskCostTable
from repro.workloads.scenario import ScenarioConfig, build_scenario
from repro.workloads.spatial import Distribution

M = 12
WORKERS = 150
TRIALS = 20
DISTRIBUTIONS = [Distribution.UNIFORM, Distribution.GAUSSIAN, Distribution.ZIPFIAN]


def _instance(distribution, seed=5):
    scenario = build_scenario(
        ScenarioConfig(
            num_tasks=1,
            num_slots=M,
            num_workers=WORKERS,
            distribution=distribution,
            seed=seed,
        )
    )
    costs = SingleTaskCostTable(scenario.single_task, scenario.fresh_registry())
    return scenario, costs


def _solve_all(scenario, costs, budget):
    task = scenario.single_task
    approx = IndexedSingleTaskGreedy(task, costs, budget=budget).solve().quality
    opt = OptimalSolver(task, costs, budget=budget).solve().quality
    rand = RandomAssignmentSolver(task, costs, budget=budget, seed=7).run_trials(TRIALS)
    return approx, opt, rand


def test_fig6a_quality_vs_distribution(run_once):
    reporter = Reporter("fig6a", "Single-task quality vs task distribution")
    reporter.note(f"m={M}, workers={WORKERS}, budget=25% of full-task cost (OPT-feasible scale)")
    reporter.header("distribution", "RandMin", "RandMax", "Opt", "Approx")

    def work():
        rows = []
        for distribution in DISTRIBUTIONS:
            scenario, costs = _instance(distribution)
            budget = 0.25 * costs.total_cost
            approx, opt, rand = _solve_all(scenario, costs, budget)
            rows.append((distribution.value, rand.min, rand.max, opt, approx))
        return rows

    for row in run_once(work):
        reporter.row(*row)
        distribution, rand_min, rand_max, opt, approx = row
        assert approx >= 0.9 * opt, f"{distribution}: Approx strayed from Opt"
        assert approx >= rand_min
    reporter.close()


def test_fig6b_quality_vs_budget(run_once):
    reporter = Reporter("fig6b", "Single-task quality vs budget")
    reporter.note("budget fractions {0.15, 0.3, 0.5} of the full-task cost stand in for b=3/5/7")
    reporter.header("budget_fraction", "Opt", "Approx", "RandAvg")

    def work():
        scenario, costs = _instance(Distribution.UNIFORM)
        rows = []
        for fraction in (0.15, 0.30, 0.50):
            budget = fraction * costs.total_cost
            approx, opt, rand = _solve_all(scenario, costs, budget)
            rows.append((fraction, opt, approx, rand.avg, rand.min))
        return rows

    rows = run_once(work)
    gaps = []
    for fraction, opt, approx, rand_avg, rand_min in rows:
        reporter.row(fraction, opt, approx, rand_avg)
        assert approx >= 0.9 * opt
        gaps.append(approx - rand_avg)
    # The Approx-vs-Rand gap is largest at the smallest budget.
    assert gaps[0] >= gaps[-1] - 1e-6
    reporter.close()
