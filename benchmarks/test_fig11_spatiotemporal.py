"""Figure 11 — quality with spatiotemporal interpolation (Appendix C).

(a) quality vs distribution: RandMin / RandMax / Approx / SApprox / Opt;
(b) quality vs budget: RandAvg / Approx / SApprox / Opt;
(c) quality vs the temporal weight wt (Gaussian tasks): the combined
    objective's flat-top curve peaks around the paper's default wt=0.7.

All assignments are *scored* under the combined metric (wt=0.7,
ws=0.3); Approx optimizes the temporal-only objective and SApprox the
combined one — exactly how the paper overlays them on one axis.

Two scales are used: a tiny instance wherever the exhaustive Opt
appears (|T| x m <= 15 pairs), and a denser instance (|T|=10, m=8) for
the SApprox-vs-Approx comparison — spatial interpolation only pays off
when tasks have spatial neighbours, and both greedies are noisy enough
at the Opt scale that single instances can go either way (the paper
averages 20 runs; every cell here averages seeded instances too).
"""

from __future__ import annotations

from repro.bench import Reporter, random_multi_assignment
from repro.core.spatiotemporal import (
    SpatioTemporalGreedy,
    score_assignment,
    spatiotemporal_opt,
)
from repro.workloads.scenario import ScenarioConfig, build_scenario
from repro.workloads.spatial import Distribution

WT, WS = 0.7, 0.3
SEEDS = tuple(range(1, 7))
DISTRIBUTIONS = [Distribution.UNIFORM, Distribution.GAUSSIAN, Distribution.ZIPFIAN]

TINY = dict(num_tasks=3, num_slots=5, num_workers=60)     # Opt-feasible
DENSE = dict(num_tasks=10, num_slots=8, num_workers=100)  # spatial coupling


def _scenario(distribution, seed, shape):
    return build_scenario(
        ScenarioConfig(distribution=distribution, seed=seed, **shape)
    )


def _combined_score(scenario, assignment):
    return sum(
        score_assignment(scenario.tasks, scenario.bbox, assignment, wt=WT, ws=WS).values()
    )


def _greedy(scenario, budget, wt, ws):
    result = SpatioTemporalGreedy(
        scenario.tasks, scenario.fresh_registry(), scenario.bbox,
        budget=budget, wt=wt, ws=ws,
    ).solve()
    return _combined_score(scenario, result.assignment)


def _random_scores(scenario, budget, trials=6):
    scores = []
    for seed in range(trials):
        _, assignment = random_multi_assignment(
            scenario.tasks, scenario.fresh_registry(), budget=budget, seed=seed,
            return_assignment=True,
        )
        scores.append(_combined_score(scenario, assignment))
    return scores


def _mean(values):
    return sum(values) / len(values)


def test_fig11a_quality_vs_distribution(run_once):
    reporter = Reporter("fig11a", "STCC quality vs distribution")
    reporter.note(
        "Opt columns from the tiny (Opt-feasible) scale; the SApprox>Approx "
        f"margin is asserted on the dense scale; each cell averages {len(SEEDS)} seeds"
    )
    reporter.header("distribution", "RandMin", "RandMax", "Approx", "SApprox", "Opt")

    def work():
        rows = []
        dense_gaps = []
        for distribution in DISTRIBUTIONS:
            sap, app, opt, rand_lo, rand_hi = [], [], [], [], []
            for seed in SEEDS:
                tiny = _scenario(distribution, seed, TINY)
                budget = tiny.budget * TINY["num_tasks"]
                sap.append(_greedy(tiny, budget, WT, WS))
                app.append(_greedy(tiny, budget, 1.0, 0.0))
                opt_quality, _ = spatiotemporal_opt(
                    tiny.tasks, tiny.fresh_registry(), tiny.bbox,
                    budget=budget, wt=WT, ws=WS,
                    max_pairs=TINY["num_tasks"] * TINY["num_slots"],
                )
                opt.append(opt_quality)
                scores = _random_scores(tiny, budget)
                rand_lo.append(min(scores))
                rand_hi.append(max(scores))

                dense = _scenario(distribution, seed, DENSE)
                dense_budget = dense.budget * DENSE["num_tasks"]
                dense_gaps.append(
                    _greedy(dense, dense_budget, WT, WS)
                    - _greedy(dense, dense_budget, 1.0, 0.0)
                )
            rows.append(
                (distribution.value, _mean(rand_lo), _mean(rand_hi),
                 _mean(app), _mean(sap), _mean(opt))
            )
        return rows, _mean(dense_gaps)

    rows, dense_gap = run_once(work)
    for distribution, lo, hi, approx, sapprox, opt in rows:
        reporter.row(distribution, lo, hi, approx, sapprox, opt)
        assert sapprox <= opt + 1e-9
        assert sapprox >= 0.85 * opt, "SApprox tracks Opt"
        assert sapprox > lo and approx > lo
    reporter.note(f"dense-scale SApprox-Approx average margin: {dense_gap:.4f}")
    assert dense_gap > 0.0, "SApprox beats Approx on average at dense scale"
    reporter.close()


def test_fig11b_quality_vs_budget(run_once):
    reporter = Reporter("fig11b", "STCC quality vs budget")
    reporter.header("budget_fraction", "RandAvg", "Approx", "SApprox", "Opt")

    def work():
        rows = []
        for fraction in (0.15, 0.3, 0.5):
            sap, app, opt, rand = [], [], [], []
            for seed in SEEDS:
                tiny = _scenario(Distribution.UNIFORM, seed, TINY)
                full = tiny.budget * TINY["num_tasks"] / 0.25
                budget = fraction * full
                sap.append(_greedy(tiny, budget, WT, WS))
                app.append(_greedy(tiny, budget, 1.0, 0.0))
                opt_quality, _ = spatiotemporal_opt(
                    tiny.tasks, tiny.fresh_registry(), tiny.bbox,
                    budget=budget, wt=WT, ws=WS,
                    max_pairs=TINY["num_tasks"] * TINY["num_slots"],
                )
                opt.append(opt_quality)
                rand.append(_mean(_random_scores(tiny, budget)))
            rows.append((fraction, _mean(rand), _mean(app), _mean(sap), _mean(opt)))
        return rows

    rows = run_once(work)
    for fraction, rand_avg, approx, sapprox, opt in rows:
        reporter.row(fraction, rand_avg, approx, sapprox, opt)
        assert sapprox <= opt + 1e-9
        assert sapprox >= rand_avg
    sapprox_series = [r[3] for r in rows]
    assert sapprox_series == sorted(sapprox_series), "quality grows with budget"
    reporter.close()


def test_fig11c_quality_vs_temporal_weight(run_once):
    reporter = Reporter("fig11c", "STCC quality vs temporal ratio wt (Gaussian)")
    reporter.note("dense scale; optimize with each wt, score under the reference wt=0.7 metric")
    reporter.header("wt", "quality_under_reference_metric")

    def work():
        rows = []
        for wt10 in range(0, 11):
            wt = wt10 / 10.0
            scores = []
            for seed in SEEDS:
                dense = _scenario(Distribution.GAUSSIAN, seed, DENSE)
                budget = dense.budget * DENSE["num_tasks"]
                scores.append(_greedy(dense, budget, wt, 1.0 - wt))
            rows.append((wt, _mean(scores)))
        return rows

    rows = run_once(work)
    for wt, quality in rows:
        reporter.row(wt, quality)
    best_quality = max(q for _, q in rows)
    reference = next(q for wt, q in rows if abs(wt - 0.7) < 1e-9)
    extremes = [q for wt, q in rows if wt in (0.0, 1.0)]
    # Flat-top curve: the reference weighting sits within a hair of the
    # peak and clearly above the pure-spatial extreme.
    assert reference >= 0.97 * best_quality
    assert reference > min(extremes)
    reporter.chart([wt for wt, _ in rows], {"quality": [q for _, q in rows]})
    reporter.close()
